"""Protocol-leg tracing over the simulated clock.

A :class:`Tracer` produces nested :class:`Span` records keyed to the
attestation protocol of paper Fig. 3. The span taxonomy names each hop
of the message flow:

- ``protocol.q1.customer_controller`` — the customer's request to the
  Cloud Controller and the verification of the Q1-quoted report;
- ``protocol.q2.controller_as`` — the controller's brokered call to the
  Attestation Server (nonce N2, quote Q2);
- ``protocol.q3.as_server`` — the Attestation Server's measurement
  round against the cloud server (nonce N3, quote Q3);
- ``as.appraisal`` / ``as.interpretation`` / ``as.certification`` —
  the server-side phases of one attestation round;
- ``controller.launch`` and ``controller.launch.<stage>`` — the
  five-stage VM launch pipeline of §7.1.1;
- ``controller.response.<action>`` — remediation (Fig. 11);
- ``channel.handshake`` — secure-channel establishment.

Spans nest through the tracer's active-span stack, and *also* carry an
explicit parent taken from the protocol message when one is attached:
each request embeds :func:`Tracer.context` under the reserved
``"_trace"`` message key, and the receiving entity opens its span with
``remote_parent=body.get(KEY_TRACE)``. In this single-process
simulation both mechanisms agree; the explicit propagation is what
keeps the trace connected if entities ever run with separate tracers.

On top of span nesting the tracer keeps a **round stack**: when an
attestation round is minted (flight recorder), its ``round_id`` is
pushed via :meth:`Tracer.round_scope` for the duration of the round's
synchronous call graph, and every span opened inside the scope — and
every observatory event published inside it — is tagged with the id.
Batch legs serve several rounds at once, so a scope holds a *tuple* of
ids and shared legs are tagged ``round_ids`` instead of ``round_id``.
Round context also rides inside :meth:`context` (``"rounds"``), so the
tagging survives entities with separate tracers the same way parent
attribution does.

Span ids are sequence numbers and times come from the injected clock
(the discrete-event engine), so traces are reproducible per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

#: Reserved message-body key carrying span context between entities.
KEY_TRACE = "_trace"

#: Reserved message-body key carrying the originating round id, so a
#: receiver can adopt the sender's flight-recorder round (KEY_TRACE's
#: sibling: KEY_TRACE joins spans, KEY_ROUND joins rounds).
KEY_ROUND = "_round"

# span taxonomy: the Fig. 3 protocol legs
SPAN_Q1 = "protocol.q1.customer_controller"
SPAN_Q2 = "protocol.q2.controller_as"
SPAN_Q3 = "protocol.q3.as_server"
SPAN_APPRAISAL = "as.appraisal"
SPAN_INTERPRETATION = "as.interpretation"
SPAN_CERTIFICATION = "as.certification"
SPAN_ATTEST_ROUND = "as.attest_round"
SPAN_MEASURE = "server.measure"
SPAN_LAUNCH = "controller.launch"
SPAN_LAUNCH_STAGE_PREFIX = "controller.launch."
SPAN_CONTROLLER_ATTEST = "controller.attest"
SPAN_RESPONSE_PREFIX = "controller.response."
SPAN_HANDSHAKE = "channel.handshake"

#: The legs a quickstart-style attested run must cover (CLI + tests).
PROTOCOL_LEG_SPANS = (
    SPAN_Q1, SPAN_Q2, SPAN_Q3, SPAN_APPRAISAL, SPAN_INTERPRETATION,
)


@dataclass
class Span:
    """One timed operation, possibly nested under a parent."""

    span_id: int
    name: str
    start_ms: float
    parent_id: Optional[int] = None
    end_ms: Optional[float] = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        """Span duration in simulated ms (0 while still open)."""
        return 0.0 if self.end_ms is None else self.end_ms - self.start_ms

    def to_dict(self) -> dict:
        """JSON-encodable form (exporters)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }


class _ActiveSpan:
    """Context manager binding one span to the tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.attrs["error"] = exc_type.__name__
        self._tracer._finish(self.span)


class _NullSpan:
    """Shared no-op context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _RoundScope:
    """Context manager pushing one tuple of round ids onto the tracer."""

    __slots__ = ("_tracer", "_rounds")

    def __init__(self, tracer: "Tracer", rounds: tuple):
        self._tracer = tracer
        self._rounds = rounds

    def __enter__(self) -> tuple:
        self._tracer._round_stack.append(self._rounds)
        return self._rounds

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._round_stack.pop()


class _RoundIsolation:
    """Stashes the round stack while the engine runs unrelated work.

    Backoff waits (``engine.run_until``) fire whatever callbacks are
    due — policy ticks, pipeline drains — *inside* the waiting round's
    Python stack. Without isolation those unrelated spans and events
    would inherit the waiter's round id.
    """

    __slots__ = ("_tracer", "_stash")

    def __init__(self, tracer: "Tracer"):
        self._tracer = tracer
        self._stash: list = []

    def __enter__(self) -> None:
        self._stash = self._tracer._round_stack
        self._tracer._round_stack = []
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._round_stack = self._stash


class Tracer:
    """Creates, nests, and collects spans.

    ``clock`` is any zero-argument callable returning the current time
    in ms — in practice ``lambda: engine.now``. A disabled tracer's
    :meth:`span` returns a shared no-op context manager, so hot paths
    pay one attribute check and nothing else.
    """

    def __init__(self, clock: Callable[[], float], enabled: bool = True):
        self._clock = clock
        self.enabled = enabled
        self._next_id = 1
        self._stack: list[Span] = []
        #: active round scopes (flight recorder); each entry is a tuple
        #: of round ids — singleton for a plain round, several for a
        #: batch leg serving many rounds at once
        self._round_stack: list[tuple] = []
        #: finished spans, in completion order
        self.finished: list[Span] = []
        #: called with each span as it finishes (the observatory's
        #: trace-store and SLO rules subscribe here)
        self._listeners: list[Callable[[Span], None]] = []

    def add_listener(self, listener: Callable[[Span], None]) -> None:
        """Subscribe to finished spans (called in completion order)."""
        self._listeners.append(listener)

    def span(
        self, name: str, remote_parent: Optional[dict] = None, **attrs: object
    ):
        """Open a nested span as a context manager.

        ``remote_parent`` is a context dict previously produced by
        :meth:`context` and carried inside a protocol message; when
        given it overrides the local stack for parent attribution.
        """
        if not self.enabled:
            return _NULL_SPAN
        if remote_parent is not None:
            parent_id = remote_parent.get("span")
        elif self._stack:
            parent_id = self._stack[-1].span_id
        else:
            parent_id = None
        span_attrs = dict(attrs)
        if self._round_stack:
            rounds = self._round_stack[-1]
        elif remote_parent is not None:
            rounds = tuple(remote_parent.get("rounds") or ())
        else:
            rounds = ()
        if rounds and "round_id" not in span_attrs and "round_ids" not in span_attrs:
            if len(rounds) == 1:
                span_attrs["round_id"] = rounds[0]
            else:
                span_attrs["round_ids"] = list(rounds)
        span = Span(
            span_id=self._next_id,
            name=name,
            start_ms=self._clock(),
            parent_id=parent_id,
            attrs=span_attrs,
        )
        self._next_id += 1
        self._stack.append(span)
        return _ActiveSpan(self, span)

    def round_scope(self, *round_ids: Optional[str]):
        """Tag everything inside the scope with the given round ids.

        ``None`` entries are dropped (a disabled hub mints ``None``), and
        an effectively-empty scope returns the shared no-op manager, so
        un-tracked paths pay a tuple build and nothing else.
        """
        rounds = tuple(rid for rid in round_ids if rid)
        if not self.enabled or not rounds:
            return _NULL_SPAN
        return _RoundScope(self, rounds)

    def isolate_rounds(self):
        """Suspend all round scopes while unrelated engine work runs."""
        if not self.enabled:
            return _NULL_SPAN
        return _RoundIsolation(self)

    def current_rounds(self) -> tuple:
        """Round ids of the innermost active scope (empty when none)."""
        return self._round_stack[-1] if self._round_stack else ()

    def _finish(self, span: Span) -> None:
        span.end_ms = self._clock()
        # unwind to the finished span: an exception may have skipped
        # inner __exit__ calls, and those orphans must not leak
        while self._stack:
            popped = self._stack.pop()
            if popped is span:
                break
        self.finished.append(span)
        for listener in self._listeners:
            listener(span)

    def context(self) -> Optional[dict]:
        """Span context to embed into an outgoing protocol message."""
        if not self.enabled or not self._stack:
            return None
        ctx: dict = {"span": self._stack[-1].span_id}
        if self._round_stack:
            ctx["rounds"] = list(self._round_stack[-1])
        return ctx

    def spans_named(self, name: str) -> list[Span]:
        """Finished spans with the given taxonomy name."""
        return [span for span in self.finished if span.name == name]

    def children_of(self, span: Span) -> list[Span]:
        """Finished spans directly nested under ``span``."""
        return [s for s in self.finished if s.parent_id == span.span_id]

    def summary(self) -> dict[str, dict]:
        """Per-name aggregate: count, total/mean/p50/p95/max duration.

        This is the per-leg latency breakdown the console exporter and
        the bench tables render.
        """
        by_name: dict[str, list[float]] = {}
        for span in self.finished:
            by_name.setdefault(span.name, []).append(span.duration_ms)
        result: dict[str, dict] = {}
        for name in sorted(by_name):
            durations = sorted(by_name[name])
            count = len(durations)
            result[name] = {
                "count": count,
                "total_ms": sum(durations),
                "mean_ms": sum(durations) / count,
                "p50_ms": durations[min(count // 2, count - 1)],
                "p95_ms": durations[min(int(0.95 * count), count - 1)],
                "max_ms": durations[-1],
            }
        return result
