"""The Telemetry hub: one object wiring metrics + tracing into a cloud.

Every entity takes an optional ``telemetry`` parameter defaulting to
:data:`NULL_TELEMETRY`, a shared disabled hub whose instruments are
no-ops — so an un-instrumented deployment pays one attribute check per
hook and allocates nothing. :class:`~repro.cloud.cloudmonatt.
CloudMonatt` creates one enabled hub per cloud (``telemetry_enabled=
True``) and threads it through the controller, attestation servers,
cloud servers, customers, and the Xen scheduler.

The hub reads time exclusively from the discrete-event engine, so
enabling telemetry never changes simulated results and same-seed runs
export byte-identical snapshots.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracer import Tracer


class _NullInstrument:
    """Accepts any instrument write and discards it."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class Telemetry:
    """Metrics registry + tracer sharing one clock.

    ``clock`` defaults to frozen time for the disabled singleton; an
    enabled hub must be given the engine's clock so span timings and
    sampled gauges live on the simulated timeline.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
        seed: Optional[int] = None,
        round_tracking: bool = True,
    ):
        self.enabled = enabled
        self.clock = clock or (lambda: 0.0)
        self.seed = seed
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.clock, enabled=enabled)
        self._engine = None
        #: flight recorder: whether :meth:`mint_round_id` issues ids.
        #: With tracking off nothing is ever pushed onto the tracer's
        #: round stack, so spans and events stay untagged.
        self.round_tracking = enabled and round_tracking
        self._next_round_id = 1
        #: consumer layer (alerting, scoreboard, trace store); attached
        #: via :meth:`attach_observatory`, ``None`` on bare hubs
        self.observatory = None
        #: control-plane shard this hub serves (``""`` = unsharded);
        #: set via :meth:`set_shard`, stamped onto every observed event
        self.shard = ""
        #: shard-executor delta capture (:mod:`repro.shard.parallel`):
        #: a forked worker installs a list here so every event this hub
        #: observes is also appended — interleaved with finished spans —
        #: for the coordinator to replay into its mirror deployment.
        #: ``None`` (the default, and always in-process) costs one
        #: attribute check per event.
        self.delta_sink = None

    def set_shard(self, name: str) -> None:
        """Label this hub with its control-plane shard.

        Every subsequently observed event carries ``shard=name`` (unless
        the producer set its own), so flight records and alert payloads
        from a sharded deployment stay attributable after the per-shard
        traces are merged. Unsharded deployments never call this and
        keep their exact historical event bytes.
        """
        self.shard = str(name)

    # ------------------------------------------------------------------
    # instrument access (null instruments when disabled)
    # ------------------------------------------------------------------

    def counter(self, name: str) -> "Counter | _NullInstrument":
        """The named counter, or a discard sink when disabled."""
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self.metrics.counter(name)

    def gauge(self, name: str) -> "Gauge | _NullInstrument":
        """The named gauge, or a discard sink when disabled."""
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self.metrics.gauge(name)

    def histogram(
        self, name: str, buckets=DEFAULT_LATENCY_BUCKETS_MS
    ) -> "Histogram | _NullInstrument":
        """The named histogram, or a discard sink when disabled."""
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self.metrics.histogram(name, buckets)

    def span(self, name: str, remote_parent: Optional[dict] = None, **attrs):
        """Open a span (see :meth:`Tracer.span`)."""
        return self.tracer.span(name, remote_parent=remote_parent, **attrs)

    def context(self) -> Optional[dict]:
        """Current span context for protocol-message propagation."""
        return self.tracer.context()

    # ------------------------------------------------------------------
    # flight recorder: round correlation
    # ------------------------------------------------------------------

    def mint_round_id(self) -> Optional[str]:
        """Issue the next attestation round id, or ``None`` if untracked.

        Ids are plain per-hub sequence numbers — no DRBG draw, no wall
        clock — so minting never perturbs the seeded entropy streams and
        same-seed runs mint byte-identical ids in byte-identical order.
        """
        if not self.round_tracking:
            return None
        rid = f"r{self._next_round_id:06d}"
        self._next_round_id += 1
        return rid

    def round_scope(self, *round_ids: Optional[str]):
        """Tag spans/events inside the scope (see :meth:`Tracer.round_scope`)."""
        return self.tracer.round_scope(*round_ids)

    def isolate_rounds(self):
        """Suspend round tagging while unrelated engine work runs."""
        return self.tracer.isolate_rounds()

    def round_tags(self) -> dict:
        """Round-correlation fields for audit/provenance payloads.

        Empty outside any round scope, so untracked runs keep their
        exact historical payload bytes.
        """
        rounds = self.tracer.current_rounds()
        if not rounds:
            return {}
        if len(rounds) == 1:
            return {"round_id": rounds[0]}
        return {"round_ids": list(rounds)}

    # ------------------------------------------------------------------
    # observatory (consumer layer)
    # ------------------------------------------------------------------

    def attach_observatory(self, observatory) -> None:
        """Bind the consumer layer: events route to it, spans feed it."""
        self.observatory = observatory
        self.tracer.add_listener(observatory.ingest_span)

    def observe_event(self, kind: str, **fields: object) -> None:
        """Publish one producer event to the observatory, if attached.

        This is the producers' single consumer-facing hook: a plain
        ``None`` check when nothing consumes the stream, so publishing
        never perturbs an un-observed run.
        """
        observatory = self.observatory
        if observatory is None:
            return
        if self.shard and "shard" not in fields:
            fields["shard"] = self.shard
        rounds = self.tracer.current_rounds()
        if rounds and "round_id" not in fields and "round_ids" not in fields:
            if len(rounds) == 1:
                fields["round_id"] = rounds[0]
            else:
                fields["round_ids"] = list(rounds)
        now = self.clock()
        if self.delta_sink is not None:
            self.delta_sink.append(("event", kind, now, dict(fields)))
        observatory.record(kind, now, fields)

    # ------------------------------------------------------------------
    # engine sampling
    # ------------------------------------------------------------------

    def attach_engine(self, engine) -> None:
        """Bind the engine whose queue stats :meth:`sample_engine` reads."""
        self._engine = engine

    def sample_engine(self) -> None:
        """Record the event queue's depth and throughput gauges."""
        if not self.enabled or self._engine is None:
            return
        gauge = self.metrics.gauge
        gauge("sim.pending_events").set(self._engine.pending_count)
        gauge("sim.events_fired").set(self._engine.events_fired)
        gauge("sim.now_ms").set(self._engine.now)

    def snapshot(self) -> dict:
        """Deterministic metric snapshot (engine gauges refreshed)."""
        self.sample_engine()
        return self.metrics.snapshot()

    def snapshot_json(self) -> str:
        """Canonical JSON snapshot — byte-identical across same-seed runs."""
        self.sample_engine()
        return self.metrics.snapshot_json()


#: Shared disabled hub: the default for every instrumented entity.
NULL_TELEMETRY = Telemetry(enabled=False)
