"""Sim-time-aware observability: metrics, protocol tracing, exporters.

The subsystem that lets the reproduction *answer* its own headline
questions — "where did this attestation round spend its time?" (Fig. 9's
launch breakdown, Fig. 11's response ordering) — instead of having every
benchmark recompute timings ad hoc.

Three layers:

- :mod:`repro.telemetry.metrics` — labeled counters, gauges and
  fixed-bucket/exact-quantile histograms, clocked by the discrete-event
  engine so snapshots are reproducible per seed;
- :mod:`repro.telemetry.tracer` — nested spans keyed to the Fig. 3
  protocol legs (Q1/Q2/Q3, appraisal, interpretation, certification),
  with span context propagated inside protocol messages;
- :mod:`repro.telemetry.exporters` — JSONL event log, console summary
  table; the ``repro telemetry`` CLI subcommand drives them.

Entities accept ``telemetry=`` and default to :data:`NULL_TELEMETRY`,
whose instruments are no-ops — instrumentation costs <2% on the launch
hot path (see ``benchmarks/bench_telemetry_overhead.py``) and exactly
zero simulated time.
"""

from repro.telemetry.hub import NULL_TELEMETRY, Telemetry
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    nearest_rank,
)
from repro.telemetry.tracer import (
    KEY_ROUND,
    KEY_TRACE,
    PROTOCOL_LEG_SPANS,
    SPAN_APPRAISAL,
    SPAN_ATTEST_ROUND,
    SPAN_CERTIFICATION,
    SPAN_CONTROLLER_ATTEST,
    SPAN_HANDSHAKE,
    SPAN_INTERPRETATION,
    SPAN_LAUNCH,
    SPAN_LAUNCH_STAGE_PREFIX,
    SPAN_MEASURE,
    SPAN_Q1,
    SPAN_Q2,
    SPAN_Q3,
    SPAN_RESPONSE_PREFIX,
    Span,
    Tracer,
)
from repro.telemetry.exporters import (
    SUMMARY_HEADERS,
    TraceFormatError,
    alerts_from_records,
    console_summary,
    events_from_records,
    export_jsonl_lines,
    flight_records_from_records,
    metrics_from_records,
    read_jsonl,
    scoreboard_from_records,
    slo_report_from_records,
    spans_from_records,
    summary_rows,
    to_prometheus_text,
    write_jsonl,
    write_prometheus,
)
from repro.telemetry.observatory import (
    DEFAULT_SLO_TARGETS,
    Alert,
    AlertEngine,
    FlightRecord,
    HealthScoreboard,
    Observatory,
    TraceStore,
    build_flight_records,
    flight_records_from_trace,
    render_flight_record,
    render_round_summary,
    render_scoreboard,
)

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "nearest_rank",
    "Tracer",
    "Span",
    "KEY_ROUND",
    "KEY_TRACE",
    "PROTOCOL_LEG_SPANS",
    "SPAN_Q1",
    "SPAN_Q2",
    "SPAN_Q3",
    "SPAN_APPRAISAL",
    "SPAN_ATTEST_ROUND",
    "SPAN_CERTIFICATION",
    "SPAN_CONTROLLER_ATTEST",
    "SPAN_HANDSHAKE",
    "SPAN_INTERPRETATION",
    "SPAN_LAUNCH",
    "SPAN_LAUNCH_STAGE_PREFIX",
    "SPAN_MEASURE",
    "SPAN_RESPONSE_PREFIX",
    "console_summary",
    "export_jsonl_lines",
    "metrics_from_records",
    "read_jsonl",
    "spans_from_records",
    "summary_rows",
    "write_jsonl",
    "SUMMARY_HEADERS",
    "TraceFormatError",
    "alerts_from_records",
    "events_from_records",
    "flight_records_from_records",
    "scoreboard_from_records",
    "slo_report_from_records",
    "to_prometheus_text",
    "write_prometheus",
    "Alert",
    "AlertEngine",
    "DEFAULT_SLO_TARGETS",
    "FlightRecord",
    "HealthScoreboard",
    "Observatory",
    "TraceStore",
    "build_flight_records",
    "flight_records_from_trace",
    "render_flight_record",
    "render_round_summary",
    "render_scoreboard",
]
