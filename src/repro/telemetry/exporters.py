"""Telemetry exporters: JSONL event log, console summary, Prometheus.

The JSONL format is line-delimited JSON with a ``type`` discriminator:

- ``{"type": "meta", "seed": ..., "sim_now_ms": ...}`` — one header
  line naming the run;
- ``{"type": "span", ...}`` — one line per finished span, in
  completion order, with simulated start/end times and attributes;
- ``{"type": "metrics", "snapshot": {...}}`` — the final metric
  snapshot;

and, when the run had an observatory attached (the default for
telemetry-enabled clouds):

- ``{"type": "event", ...}`` — one line per producer event
  (attestations, verification failures, responses, unreachability);
- ``{"type": "alert", ...}`` — one line per emitted alert, in
  emission order;
- ``{"type": "scoreboard", "snapshot": {...}}`` — the final fleet
  health snapshot;
- ``{"type": "slo", "report": {...}}`` — the per-leg SLO compliance
  report;
- ``{"type": "flight_record", ...}`` — one line per attestation round,
  joining the round's spans, events, verdict and alarms (the flight
  recorder; assembled lazily at export time).

Nothing wall-clock-derived is written, so two same-seed runs produce
byte-identical files — :func:`read_jsonl` round-trips them for the
regression tests, the ``health`` / ``alerts`` / ``trace`` CLI
subcommands, and offline analysis. :func:`to_prometheus_text` renders
a metrics registry in the Prometheus text exposition format for
scrape-style integration.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Optional

from repro.common.errors import CloudMonattError
from repro.telemetry.hub import Telemetry
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TraceFormatError(CloudMonattError):
    """A JSONL trace file contained a malformed line."""


def _dumps(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def export_jsonl_lines(
    telemetry: Telemetry, seed: Optional[int] = None
) -> Iterable[str]:
    """The run's telemetry as JSONL lines (no trailing newlines)."""
    yield _dumps(
        {
            "type": "meta",
            "seed": telemetry.seed if seed is None else seed,
            "sim_now_ms": telemetry.clock(),
        }
    )
    for span in telemetry.tracer.finished:
        yield _dumps({"type": "span", **span.to_dict()})
    yield _dumps({"type": "metrics", "snapshot": telemetry.snapshot()})
    observatory = telemetry.observatory
    if observatory is not None:
        for event in observatory.event_records():
            yield _dumps({"type": "event", **event})
        for alert in observatory.alert_records():
            yield _dumps({"type": "alert", **alert})
        yield _dumps(
            {"type": "scoreboard", "snapshot": observatory.health_snapshot()}
        )
        yield _dumps({"type": "slo", "report": observatory.slo_report()})
        for flight in observatory.flight_records():
            yield _dumps({"type": "flight_record", **flight.to_dict()})


def write_jsonl(
    telemetry: Telemetry,
    destination: "str | IO[str]",
    seed: Optional[int] = None,
    append: bool = False,
) -> int:
    """Write the JSONL trace to a path or open text stream.

    Returns the number of lines written. ``append=True`` lets several
    clouds in one CLI invocation share a single trace file.
    """
    lines = 0
    if hasattr(destination, "write"):
        for line in export_jsonl_lines(telemetry, seed=seed):
            destination.write(line + "\n")
            lines += 1
        return lines
    mode = "a" if append else "w"
    with open(destination, mode, encoding="utf-8") as handle:
        for line in export_jsonl_lines(telemetry, seed=seed):
            handle.write(line + "\n")
            lines += 1
    return lines


def read_jsonl(source: "str | IO[str]") -> list[dict]:
    """Parse a JSONL trace back into records (inverse of the writer).

    Raises :class:`TraceFormatError` naming the offending line when a
    line is not valid JSON or is not a JSON object — the CLI turns that
    into a clean non-zero exit instead of a traceback.
    """
    if hasattr(source, "read"):
        text = source.read()
        origin = "<stream>"
    else:
        origin = str(source)
        with open(source, encoding="utf-8") as handle:
            text = handle.read()
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{origin}:{lineno}: malformed JSONL line: {exc.msg}"
            )
        if not isinstance(record, dict):
            raise TraceFormatError(
                f"{origin}:{lineno}: expected a JSON object, "
                f"got {type(record).__name__}"
            )
        records.append(record)
    return records


def spans_from_records(records: list[dict]) -> list[dict]:
    """The span records of a parsed trace, in completion order."""
    return [record for record in records if record.get("type") == "span"]


def metrics_from_records(records: list[dict]) -> dict:
    """The final metric snapshot of a parsed trace."""
    for record in reversed(records):
        if record.get("type") == "metrics":
            return record["snapshot"]
    return {}


def alerts_from_records(records: list[dict]) -> list[dict]:
    """The alert records of a parsed trace, in emission order."""
    return [record for record in records if record.get("type") == "alert"]


def events_from_records(records: list[dict]) -> list[dict]:
    """The observatory event records of a parsed trace."""
    return [record for record in records if record.get("type") == "event"]


def flight_records_from_records(records: list[dict]) -> list[dict]:
    """The flight-record lines of a parsed trace, rebuilt if absent.

    Delegates to :func:`repro.telemetry.observatory.flightrecorder.
    flight_records_from_trace`: precomputed ``flight_record`` lines win;
    older traces are reassembled from their span + event lines.
    """
    from repro.telemetry.observatory.flightrecorder import (
        flight_records_from_trace,
    )

    return flight_records_from_trace(records)


def scoreboard_from_records(records: list[dict]) -> Optional[dict]:
    """The final fleet scoreboard snapshot, or None if absent."""
    for record in reversed(records):
        if record.get("type") == "scoreboard":
            return record["snapshot"]
    return None


def slo_report_from_records(records: list[dict]) -> Optional[dict]:
    """The per-leg SLO compliance report, or None if absent."""
    for record in reversed(records):
        if record.get("type") == "slo":
            return record["report"]
    return None


def summary_rows(telemetry: Telemetry) -> list[list[str]]:
    """Per-span-name latency rows: [name, count, total, mean, p50, p95]."""
    return [
        [
            name,
            str(stats["count"]),
            f"{stats['total_ms']:.1f}",
            f"{stats['mean_ms']:.1f}",
            f"{stats['p50_ms']:.1f}",
            f"{stats['p95_ms']:.1f}",
        ]
        for name, stats in telemetry.tracer.summary().items()
    ]


SUMMARY_HEADERS = ["span", "count", "total ms", "mean ms", "p50 ms", "p95 ms"]


def console_summary(telemetry: Telemetry, title: str = "Telemetry summary") -> str:
    """A monospace per-leg latency table (the console exporter)."""
    rows = summary_rows(telemetry)
    if not rows:
        return f"=== {title} ===\n(no spans recorded)"
    widths = [
        max(len(SUMMARY_HEADERS[i]), *(len(row[i]) for row in rows))
        for i in range(len(SUMMARY_HEADERS))
    ]
    lines = [f"=== {title} ==="]
    header = "  ".join(h.ljust(w) for h, w in zip(SUMMARY_HEADERS, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------


def _prom_metric_name(name: str) -> str:
    """Map a dotted metric name to the Prometheus name charset."""
    sanitized = "".join(
        ch if ch.isascii() and (ch.isalnum() or ch in "_:") else "_"
        for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized or "_"


def _prom_escape_label(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels: tuple, extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    """Render a label key (+ extras like ``le``) as ``{k="v",...}``."""
    pairs = [
        f'{_prom_metric_name(key)}="{_prom_escape_label(str(value))}"'
        for key, value in (*labels, *extra)
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _prom_value(value: float) -> str:
    """Canonical number rendering (integers without a trailing .0)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format.

    Counters gain the conventional ``_total`` suffix; histograms emit
    cumulative ``_bucket`` lines (inclusive upper bounds, closing with
    ``le="+Inf"``) plus ``_sum`` and ``_count``. Output ordering is the
    registry's sorted-name, sorted-label ordering, so same-seed runs
    render byte-identical text.
    """
    lines: list[str] = []
    for name in registry.names():
        instrument = registry.instrument(name)
        prom_name = _prom_metric_name(name)
        if isinstance(instrument, Counter):
            prom_name += "_total"
            lines.append(f"# TYPE {prom_name} counter")
            for labels, value in instrument.series():
                lines.append(
                    f"{prom_name}{_prom_labels(labels)} {_prom_value(value)}"
                )
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {prom_name} gauge")
            for labels, value in instrument.series():
                lines.append(
                    f"{prom_name}{_prom_labels(labels)} {_prom_value(value)}"
                )
        elif isinstance(instrument, Histogram):
            lines.append(f"# TYPE {prom_name} histogram")
            for labels, series in instrument.series():
                cumulative = 0
                for edge, count in zip(
                    instrument.buckets, series.bucket_counts
                ):
                    cumulative += count
                    lines.append(
                        f"{prom_name}_bucket"
                        f"{_prom_labels(labels, (('le', _prom_value(edge)),))}"
                        f" {cumulative}"
                    )
                cumulative += series.bucket_counts[-1]
                lines.append(
                    f"{prom_name}_bucket"
                    f"{_prom_labels(labels, (('le', '+Inf'),))} {cumulative}"
                )
                lines.append(
                    f"{prom_name}_sum{_prom_labels(labels)} "
                    f"{_prom_value(series.sum)}"
                )
                lines.append(
                    f"{prom_name}_count{_prom_labels(labels)} "
                    f"{len(series.values)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    telemetry: Telemetry, destination: "str | IO[str]"
) -> None:
    """Write the hub's final metrics in Prometheus text format."""
    telemetry.sample_engine()
    text = to_prometheus_text(telemetry.metrics)
    if hasattr(destination, "write"):
        destination.write(text)
        return
    with open(destination, "w", encoding="utf-8") as handle:
        handle.write(text)
