"""Telemetry exporters: JSONL event log and console summary table.

The JSONL format is line-delimited JSON with a ``type`` discriminator:

- ``{"type": "meta", "seed": ..., "sim_now_ms": ...}`` — one header
  line naming the run;
- ``{"type": "span", ...}`` — one line per finished span, in
  completion order, with simulated start/end times and attributes;
- ``{"type": "metrics", "snapshot": {...}}`` — the final metric
  snapshot.

Nothing wall-clock-derived is written, so two same-seed runs produce
byte-identical files — :func:`read_jsonl` round-trips them for the
regression tests and offline analysis.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Optional

from repro.telemetry.hub import Telemetry


def _dumps(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def export_jsonl_lines(
    telemetry: Telemetry, seed: Optional[int] = None
) -> Iterable[str]:
    """The run's telemetry as JSONL lines (no trailing newlines)."""
    yield _dumps(
        {
            "type": "meta",
            "seed": telemetry.seed if seed is None else seed,
            "sim_now_ms": telemetry.clock(),
        }
    )
    for span in telemetry.tracer.finished:
        yield _dumps({"type": "span", **span.to_dict()})
    yield _dumps({"type": "metrics", "snapshot": telemetry.snapshot()})


def write_jsonl(
    telemetry: Telemetry,
    destination: "str | IO[str]",
    seed: Optional[int] = None,
    append: bool = False,
) -> int:
    """Write the JSONL trace to a path or open text stream.

    Returns the number of lines written. ``append=True`` lets several
    clouds in one CLI invocation share a single trace file.
    """
    lines = 0
    if hasattr(destination, "write"):
        for line in export_jsonl_lines(telemetry, seed=seed):
            destination.write(line + "\n")
            lines += 1
        return lines
    mode = "a" if append else "w"
    with open(destination, mode, encoding="utf-8") as handle:
        for line in export_jsonl_lines(telemetry, seed=seed):
            handle.write(line + "\n")
            lines += 1
    return lines


def read_jsonl(source: "str | IO[str]") -> list[dict]:
    """Parse a JSONL trace back into records (inverse of the writer)."""
    if hasattr(source, "read"):
        return [json.loads(line) for line in source.read().splitlines() if line]
    with open(source, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle.read().splitlines() if line]


def spans_from_records(records: list[dict]) -> list[dict]:
    """The span records of a parsed trace, in completion order."""
    return [record for record in records if record.get("type") == "span"]


def metrics_from_records(records: list[dict]) -> dict:
    """The final metric snapshot of a parsed trace."""
    for record in reversed(records):
        if record.get("type") == "metrics":
            return record["snapshot"]
    return {}


def summary_rows(telemetry: Telemetry) -> list[list[str]]:
    """Per-span-name latency rows: [name, count, total, mean, p50, p95]."""
    return [
        [
            name,
            str(stats["count"]),
            f"{stats['total_ms']:.1f}",
            f"{stats['mean_ms']:.1f}",
            f"{stats['p50_ms']:.1f}",
            f"{stats['p95_ms']:.1f}",
        ]
        for name, stats in telemetry.tracer.summary().items()
    ]


SUMMARY_HEADERS = ["span", "count", "total ms", "mean ms", "p50 ms", "p95 ms"]


def console_summary(telemetry: Telemetry, title: str = "Telemetry summary") -> str:
    """A monospace per-leg latency table (the console exporter)."""
    rows = summary_rows(telemetry)
    if not rows:
        return f"=== {title} ===\n(no spans recorded)"
    widths = [
        max(len(SUMMARY_HEADERS[i]), *(len(row[i]) for row in rows))
        for i in range(len(SUMMARY_HEADERS))
    ]
    lines = [f"=== {title} ==="]
    header = "  ".join(h.ljust(w) for h, w in zip(SUMMARY_HEADERS, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
