"""Deterministic, sim-clock-aware metric instruments.

Three instrument kinds, mirroring the conventional metrics vocabulary
but tuned for a discrete-event simulation:

- :class:`Counter` — monotonically increasing totals (quotes computed,
  handshakes performed, BOOST promotions);
- :class:`Gauge` — last-written values (run-queue depth, pending event
  count);
- :class:`Histogram` — fixed-bucket distributions that *also* retain
  every observation, so quantiles are exact rather than interpolated
  (the sample counts of a simulation are small enough to afford it).

Every instrument supports labels (``counter.inc(1, leg="q2")``), stored
as sorted key/value tuples so snapshot ordering never depends on call
order. Nothing in this module reads the wall clock: values come from
the caller, which reads the discrete-event :class:`~repro.sim.engine.
Engine`. Two runs with the same seed therefore produce byte-identical
snapshots — the property the regression tests pin down.
"""

from __future__ import annotations

import bisect
import json
from typing import Iterable, Sequence

from repro.common.errors import ConfigurationError

#: Default latency buckets in simulated milliseconds. The upper edge is
#: inclusive (``value <= edge`` lands in the bucket), with an implicit
#: +inf overflow bucket at the end.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def nearest_rank(sorted_values: Sequence[float], q: float) -> float:
    """The exact nearest-rank q-quantile of an ascending sequence.

    The one rank rule shared by :meth:`Histogram.quantile` and
    :meth:`repro.telemetry.observatory.tracestore.TraceStore.
    percentiles`: ``q = 0`` is the minimum, ``q = 1`` the maximum, a
    single observation answers every quantile, and interior quantiles
    truncate (``rank = int(q * n)``), never interpolate — an observed
    value always comes back. Callers own their empty-input policy;
    here an empty sequence is an error.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile {q} outside [0, 1]")
    if not sorted_values:
        raise ConfigurationError(f"quantile {q} of an empty sequence")
    rank = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[rank]


def _label_key(labels: dict[str, object]) -> _LabelKey:
    """Canonical, hashable, order-independent form of a label set."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total, per label set."""

    __slots__ = ("name", "_values")

    def __init__(self, name: str):
        self.name = name
        self._values: dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be non-negative) to the labeled series."""
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current total for one label set (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label sets."""
        return sum(self._values.values())

    def series(self) -> list[tuple[_LabelKey, float]]:
        """Sorted (label key, value) pairs — exporter iteration."""
        return sorted(self._values.items())

    def snapshot(self) -> dict:
        return {
            "type": "counter",
            "series": {_series_name(k): v for k, v in sorted(self._values.items())},
        }


class Gauge:
    """A last-written value, per label set."""

    __slots__ = ("name", "_values")

    def __init__(self, name: str):
        self.name = name
        self._values: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Record the current value of the labeled series."""
        self._values[_label_key(labels)] = float(value)

    def value(self, **labels: object) -> float:
        """Last written value (0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def series(self) -> list[tuple[_LabelKey, float]]:
        """Sorted (label key, value) pairs — exporter iteration."""
        return sorted(self._values.items())

    def snapshot(self) -> dict:
        return {
            "type": "gauge",
            "series": {_series_name(k): v for k, v in sorted(self._values.items())},
        }


class _HistogramSeries:
    """One label set's distribution state."""

    __slots__ = ("bucket_counts", "values", "sum")

    def __init__(self, num_buckets: int):
        # one slot per finite edge plus the +inf overflow bucket
        self.bucket_counts = [0] * (num_buckets + 1)
        self.values: list[float] = []
        self.sum = 0.0


class Histogram:
    """Fixed-bucket distribution with exact quantiles.

    Bucket edges are *inclusive* upper bounds: an observation equal to
    an edge is counted in that edge's bucket, and anything above the
    last edge falls into the implicit +inf bucket.
    """

    __slots__ = ("name", "buckets", "_series")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS
    ):
        edges = tuple(float(b) for b in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ConfigurationError(
                f"histogram {name!r} needs strictly increasing bucket edges"
            )
        self.name = name
        self.buckets = edges
        self._series: dict[_LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the labeled series."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        series.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        bisect.insort(series.values, value)
        series.sum += value

    def count(self, **labels: object) -> int:
        """Number of observations in one label set."""
        series = self._series.get(_label_key(labels))
        return len(series.values) if series else 0

    def sum(self, **labels: object) -> float:
        """Sum of observations in one label set."""
        series = self._series.get(_label_key(labels))
        return series.sum if series else 0.0

    def bucket_counts(self, **labels: object) -> list[int]:
        """Per-bucket counts (finite edges, then the +inf bucket)."""
        series = self._series.get(_label_key(labels))
        if series is None:
            return [0] * (len(self.buckets) + 1)
        return list(series.bucket_counts)

    def quantile(self, q: float, **labels: object) -> float:
        """Exact q-quantile (nearest-rank) of the retained observations."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile {q} outside [0, 1]")
        series = self._series.get(_label_key(labels))
        if series is None or not series.values:
            raise ConfigurationError(
                f"histogram {self.name!r} has no observations for {labels!r}"
            )
        return nearest_rank(series.values, q)

    def series(self) -> list[tuple[_LabelKey, _HistogramSeries]]:
        """Sorted (label key, series state) pairs — exporter iteration."""
        return sorted(self._series.items())

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "series": {
                _series_name(key): {
                    "count": len(series.values),
                    "sum": series.sum,
                    "bucket_counts": list(series.bucket_counts),
                }
                for key, series in sorted(self._series.items())
            },
        }


def _series_name(key: _LabelKey) -> str:
    """Render a label key as a stable series name (empty labels → '')."""
    return ",".join(f"{k}={v}" for k, v in key)


class MetricsRegistry:
    """Owns every instrument; the single source of metric snapshots.

    Instruments are created lazily on first access and cached by name,
    so call sites can write ``registry.counter("x").inc()`` on a hot
    path without holding references. Requesting an existing name with a
    different instrument kind raises.
    """

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory()
        elif not isinstance(instrument, kind):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS
    ) -> Histogram:
        """The named histogram, created on first use with ``buckets``."""
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def names(self) -> Iterable[str]:
        """Registered metric names, sorted."""
        return sorted(self._instruments)

    def instrument(self, name: str) -> "Counter | Gauge | Histogram":
        """The registered instrument with this name (KeyError if none)."""
        return self._instruments[name]

    def snapshot(self) -> dict:
        """All metrics as a deterministic, JSON-encodable dict."""
        return {
            name: self._instruments[name].snapshot() for name in self.names()
        }

    def snapshot_json(self) -> str:
        """Canonical JSON form — byte-identical across same-seed runs."""
        return json.dumps(self.snapshot(), sort_keys=True, separators=(",", ":"))
