"""Security Health Observatory: the telemetry hub's consumer layer.

See :mod:`repro.telemetry.observatory.core` for the architecture
overview (alert engine, fleet scoreboard, trace store) and
DESIGN.md §3 for the producer/consumer split.
"""

from repro.telemetry.observatory.alerts import (
    DEFAULT_SLO_TARGETS,
    SEVERITY_CRITICAL,
    SEVERITY_WARNING,
    Alert,
    AlertEngine,
    AlertRule,
    BreakerOpenRule,
    FailureStreakRule,
    KeyPoolExhaustedRule,
    LatencySloRule,
    RetryStormRule,
    UnreachableRule,
    VerificationSpikeRule,
    default_rules,
)
from repro.telemetry.observatory.core import (
    EVENT_ATTESTATION,
    EVENT_COLLECTION_FAILURE,
    EVENT_RESPONSE,
    EVENT_UNREACHABLE,
    EVENT_VERIFICATION_FAILURE,
    Observatory,
    ObservatoryEvent,
)
from repro.telemetry.observatory.flightrecorder import (
    EVENT_ROUND_END,
    EVENT_ROUND_START,
    FlightRecord,
    build_flight_records,
    flight_records_from_trace,
    outcome_verdict,
    render_flight_record,
    render_round_summary,
)
from repro.telemetry.observatory.scoreboard import (
    HealthScoreboard,
    render_scoreboard,
)
from repro.telemetry.observatory.tracestore import TraceStore, span_duration_ms

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertRule",
    "BreakerOpenRule",
    "DEFAULT_SLO_TARGETS",
    "EVENT_ATTESTATION",
    "EVENT_COLLECTION_FAILURE",
    "EVENT_RESPONSE",
    "EVENT_ROUND_END",
    "EVENT_ROUND_START",
    "EVENT_UNREACHABLE",
    "EVENT_VERIFICATION_FAILURE",
    "FailureStreakRule",
    "FlightRecord",
    "HealthScoreboard",
    "KeyPoolExhaustedRule",
    "LatencySloRule",
    "Observatory",
    "ObservatoryEvent",
    "RetryStormRule",
    "SEVERITY_CRITICAL",
    "SEVERITY_WARNING",
    "TraceStore",
    "UnreachableRule",
    "VerificationSpikeRule",
    "build_flight_records",
    "default_rules",
    "flight_records_from_trace",
    "outcome_verdict",
    "render_flight_record",
    "render_round_summary",
    "render_scoreboard",
    "span_duration_ms",
]
