"""The flight recorder: per-round correlation of every telemetry signal.

CloudMonatt's signals are produced by different layers — Fig. 3 spans
by the tracer, attestation outcomes by the AS audit log, alarms by the
policy scheduler, retries and breaker trips by the resilience layer —
and before this module they shared no key. The flight recorder joins
them: every attestation round is minted a ``round_id`` at its origin
(:meth:`repro.telemetry.hub.Telemetry.mint_round_id`), the id rides
the round's synchronous call graph via the tracer's round scope (and
the ``"_round"`` wire key across entities), and this module folds the
tagged spans and events back into one :class:`FlightRecord` per round:
inputs, legs with timings, degraded-path annotations, appraisal
evidence, the final verdict, and any alarms the round fired.

Assembly is *lazy*: nothing is built while the simulation runs — the
producers only pay the tagging — and the joins happen at export or
query time, from either a live :class:`~repro.telemetry.observatory.
core.Observatory` or a parsed JSONL artifact. All inputs are
deterministic per seed, so same-seed runs yield byte-identical flight
records.

The narrative renderers at the bottom back ``repro explain``: they
reconstruct a round's causal chain ("retry ×2 on the Q2 leg →
re-handshake → degraded UNREACHABLE, breaker open since t=…") from the
record alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.telemetry.tracer import SPAN_HANDSHAKE

#: round-boundary event kinds the minting sites publish
EVENT_ROUND_START = "round_start"
EVENT_ROUND_END = "round_end"

#: verdict vocabulary (matches the policy layer's alarm verdicts)
VERDICT_HEALTHY = "HEALTHY"
VERDICT_UNHEALTHY = "UNHEALTHY"
VERDICT_UNREACHABLE = "UNREACHABLE"
VERDICT_ERROR = "ERROR"
VERDICT_UNKNOWN = "UNKNOWN"


def outcome_verdict(report, degraded: bool) -> tuple[str, bool]:
    """Collapse a property report + degraded flag into (verdict, degraded).

    A controller-side degraded outcome arrives as a *signed* report
    whose details carry ``verdict: UNREACHABLE`` (the customer's own
    ``degraded`` flag stays False because the report verified) — both
    shapes normalize to the same UNREACHABLE verdict here.
    """
    details = getattr(report, "details", None) or {}
    if degraded or details.get("verdict") == VERDICT_UNREACHABLE:
        return VERDICT_UNREACHABLE, True
    return (VERDICT_HEALTHY if report.healthy else VERDICT_UNHEALTHY), False


def _round_ids(fields: dict) -> tuple:
    """Round ids a span's attrs or an event's fields are tagged with."""
    rid = fields.get("round_id")
    if rid:
        return (rid,)
    return tuple(fields.get("round_ids") or ())


@dataclass
class FlightRecord:
    """Everything one attestation round did, joined across all signals."""

    round_id: str
    vid: str = ""
    property: str = ""
    source: str = "unknown"
    #: control-plane shard the round ran on (``""`` = unsharded run);
    #: emitted in :meth:`to_dict` only when set, so pre-shard traces
    #: keep their exact historical record bytes
    shard: str = ""
    start_ms: Optional[float] = None
    end_ms: Optional[float] = None
    verdict: str = VERDICT_UNKNOWN
    degraded: bool = False
    error: Optional[str] = None
    #: spans tagged with this round, as leg dicts in start order;
    #: ``shared`` marks batched legs serving several rounds at once
    legs: list[dict] = field(default_factory=list)
    #: observatory events tagged with this round, publication order
    events: list[dict] = field(default_factory=list)
    #: policy alarm transitions this round's verdict caused
    alarms: list[dict] = field(default_factory=list)

    def is_batched(self) -> bool:
        """Whether any leg was shared with other rounds (batch paths).

        A method, not a ``property``: the dataclass field named
        ``property`` (the attested security property) shadows the
        builtin inside this class body.
        """
        return any(leg.get("shared") for leg in self.legs)

    def to_dict(self) -> dict:
        """JSON-encodable form (the ``flight_record`` JSONL line)."""
        record = {
            "round_id": self.round_id,
            "vid": self.vid,
            "property": self.property,
            "source": self.source,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "verdict": self.verdict,
            "degraded": self.degraded,
            "batched": self.is_batched(),
            "legs": self.legs,
            "events": self.events,
            "alarms": self.alarms,
        }
        if self.error is not None:
            record["error"] = self.error
        if self.shard:
            record["shard"] = self.shard
        return record


def build_flight_records(
    span_records: Iterable[dict], event_records: Iterable[dict]
) -> list[FlightRecord]:
    """Join tagged span and event records into per-round flight records.

    ``span_records`` are exporter-form span dicts; ``event_records``
    are observatory event dicts (``kind`` / ``time_ms`` / ``fields``).
    Records come back sorted by round id — mint order, since ids are
    zero-padded sequence numbers.
    """
    records: dict[str, FlightRecord] = {}

    def ensure(rid: str) -> FlightRecord:
        record = records.get(rid)
        if record is None:
            record = records[rid] = FlightRecord(round_id=rid)
        return record

    for event in event_records:
        kind = event.get("kind", "")
        time_ms = event.get("time_ms", 0.0)
        fields = event.get("fields", {})
        if kind == EVENT_ROUND_START:
            record = ensure(fields["round_id"])
            record.start_ms = time_ms
            record.vid = str(fields.get("vid", ""))
            record.property = str(fields.get("property", ""))
            record.source = str(fields.get("source", "unknown"))
            record.shard = str(fields.get("shard", ""))
            continue
        if kind == EVENT_ROUND_END:
            record = ensure(fields["round_id"])
            record.end_ms = time_ms
            record.verdict = str(fields.get("verdict", VERDICT_UNKNOWN))
            record.degraded = bool(fields.get("degraded", False))
            if fields.get("error"):
                record.error = str(fields["error"])
            continue
        for rid in _round_ids(fields):
            record = ensure(rid)
            entry = {
                "kind": kind,
                "time_ms": time_ms,
                "fields": {k: fields[k] for k in sorted(fields)},
            }
            record.events.append(entry)
            if kind == "policy_alarm":
                record.alarms.append(entry["fields"])

    for span in span_records:
        attrs = span.get("attrs", {})
        rids = _round_ids(attrs)
        if not rids:
            continue
        leg = {
            "name": span.get("name", ""),
            "span_id": span.get("span_id"),
            "parent_id": span.get("parent_id"),
            "start_ms": span.get("start_ms"),
            "end_ms": span.get("end_ms"),
            "duration_ms": (
                0.0
                if span.get("end_ms") is None
                else span["end_ms"] - span["start_ms"]
            ),
            "shared": len(rids) > 1,
            "attrs": {k: attrs[k] for k in sorted(attrs)},
        }
        for rid in rids:
            ensure(rid).legs.append(leg)

    for record in records.values():
        record.legs.sort(key=lambda leg: (leg["start_ms"], leg["span_id"]))
    return [records[rid] for rid in sorted(records)]


def flight_records_from_trace(records: Iterable[dict]) -> list[dict]:
    """Flight records (dict form) from parsed JSONL trace records.

    Prefers the exporter's precomputed ``flight_record`` lines; traces
    written before the flight recorder existed (or filtered exports)
    fall back to rebuilding from their span and event lines, so
    ``repro explain`` works on old artifacts too.
    """
    flights = []
    spans = []
    events = []
    for record in records:
        kind = record.get("type")
        if kind == "flight_record":
            flight = dict(record)
            flight.pop("type", None)
            flights.append(flight)
        elif kind == "span":
            spans.append(record)
        elif kind == "event":
            events.append(record)
    if flights:
        return flights
    return [record.to_dict() for record in build_flight_records(spans, events)]


# ----------------------------------------------------------------------
# narrative rendering (the `repro explain` engine)
# ----------------------------------------------------------------------


def _chain_items(record: dict) -> list[tuple[float, str]]:
    """(time, text) causal-chain steps from a flight record's signals."""
    items: list[tuple[float, str]] = []
    for event in record.get("events", []):
        kind = event.get("kind", "")
        fields = event.get("fields", {})
        time_ms = event.get("time_ms", 0.0)
        if kind == "retry":
            text = (
                f"retry #{fields.get('attempt')} at {fields.get('site')} "
                f"after {fields.get('error')} "
                f"(backoff {float(fields.get('backoff_ms', 0.0)):.0f} ms)"
            )
        elif kind == "retry_giveup":
            text = (
                f"retries exhausted at {fields.get('site')} after "
                f"{fields.get('attempts')} attempts ({fields.get('error')})"
            )
        elif kind == "breaker_state":
            text = (
                f"circuit breaker {fields.get('endpoint')}: "
                f"{fields.get('previous')} -> {fields.get('state')}"
            )
        elif kind == "unreachable":
            text = (
                f"endpoint {fields.get('endpoint')} unreachable: "
                f"{fields.get('detail', '')}"
            )
        elif kind == "verification_failure":
            text = (
                f"report failed verification ({fields.get('kind')}): "
                f"{fields.get('detail', '')}"
            )
        elif kind == "degraded_attestation":
            reason = fields.get("error") or fields.get("breaker_state") or ""
            text = "degraded verdict UNREACHABLE"
            if reason:
                text += f" ({reason})"
            if fields.get("detail"):
                text += f": {fields['detail']}"
        elif kind == "collection_failure":
            text = f"measurement collection failed: {fields.get('error', '')}"
        elif kind == "attestation":
            health = "healthy" if fields.get("healthy") else "unhealthy"
            text = f"appraisal verdict {health}"
            if fields.get("explanation"):
                text += f" — {fields['explanation']}"
        elif kind == "response":
            text = f"remediation response: {fields.get('action', '')}"
        elif kind == "policy_alarm":
            text = (
                f"alarm {fields.get('policy')}/{fields.get('check')}: "
                f"{fields.get('old_state')} -> {fields.get('new_state')} "
                f"(verdict {fields.get('verdict')})"
            )
        else:
            continue
        items.append((time_ms, text))
    for leg in record.get("legs", []):
        attrs = leg.get("attrs", {})
        if leg.get("name") == SPAN_HANDSHAKE and attrs.get("rehandshake"):
            items.append((
                leg.get("start_ms", 0.0),
                f"re-handshake {attrs.get('initiator')} -> {attrs.get('peer')}",
            ))
    items.sort(key=lambda item: item[0])
    return items


def _open_breaker_since(record: dict) -> Optional[float]:
    """When the last breaker transition left the circuit open, its time."""
    since = None
    for event in record.get("events", []):
        if event.get("kind") != "breaker_state":
            continue
        if event.get("fields", {}).get("state") == "open":
            since = event.get("time_ms", 0.0)
        else:
            since = None
    return since


def render_round_summary(record: dict) -> str:
    """One summary line per round (the `repro explain` list mode)."""
    start = record.get("start_ms")
    end = record.get("end_ms")
    window = (
        f"t={start:.1f}..{end:.1f} ms"
        if start is not None and end is not None
        else "t=?"
    )
    verdict = record.get("verdict", VERDICT_UNKNOWN)
    if record.get("degraded"):
        verdict += " (degraded)"
    flags = " [batched]" if record.get("batched") else ""
    return (
        f"{record.get('round_id')}  {record.get('vid')}  "
        f"{record.get('property')}  source={record.get('source')}  "
        f"verdict={verdict}{flags}  {window}  "
        f"legs={len(record.get('legs', []))} "
        f"events={len(record.get('events', []))}"
    )


def render_flight_record(record: dict) -> str:
    """The full causal narrative of one round, human-readable."""
    lines = [f"=== flight record {record.get('round_id')} ==="]
    lines.append(
        f"vid {record.get('vid')}  property {record.get('property')}  "
        f"source {record.get('source')}"
    )
    start = record.get("start_ms")
    end = record.get("end_ms")
    if start is not None and end is not None:
        lines.append(
            f"window: t={start:.1f} .. {end:.1f} ms ({end - start:.1f} ms)"
        )
    elif start is not None:
        lines.append(f"window: t={start:.1f} ms .. (round never completed)")
    verdict = f"verdict: {record.get('verdict', VERDICT_UNKNOWN)}"
    if record.get("degraded"):
        verdict += " (degraded)"
    if record.get("error"):
        verdict += f" [{record['error']}]"
    since = _open_breaker_since(record)
    if since is not None:
        verdict += f", breaker open since t={since:.1f} ms"
    lines.append(verdict)
    legs = record.get("legs", [])
    if legs:
        lines.append("legs:")
        name_width = max(len(leg.get("name", "")) for leg in legs)
        for leg in legs:
            note = "  [shared]" if leg.get("shared") else ""
            error = leg.get("attrs", {}).get("error")
            if error:
                note += f"  [error {error}]"
            lines.append(
                f"  {leg.get('name', '').ljust(name_width)}  "
                f"t={leg.get('start_ms', 0.0):9.1f}  "
                f"+{leg.get('duration_ms', 0.0):8.1f} ms{note}"
            )
    chain = _chain_items(record)
    if chain:
        lines.append("causal chain:")
        for time_ms, text in chain:
            lines.append(f"  t={time_ms:9.1f}  {text}")
    alarms = record.get("alarms", [])
    if alarms:
        lines.append("alarms fired:")
        for alarm in alarms:
            lines.append(
                f"  {alarm.get('policy')}/{alarm.get('check')} on "
                f"{alarm.get('vid')}: {alarm.get('old_state')} -> "
                f"{alarm.get('new_state')} (verdict {alarm.get('verdict')})"
            )
    return "\n".join(lines)
