"""Fleet health scoreboard: rolling per-VM / per-server health scores.

Scores are exponentially decayed averages of attestation outcomes
(healthy = 1, failed = 0), so one failure dents the score and a run of
failures drives it toward zero; monitor activity and unreachability
feed the per-server view. A short outcome history yields a trend
direction (improving / degrading / steady), which is the "is it getting
worse?" signal an operator reads before the score itself.

Everything is driven by simulated-clock events, so the snapshot — and
its canonical JSON form — is byte-identical across same-seed runs.
Scores are rounded to 4 decimals at snapshot time purely for stable,
readable output; internal state keeps full precision.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

#: weight kept from the previous score on each new outcome
DECAY = 0.7
#: outcomes retained for the trend window
TREND_WINDOW = 8
#: score movement below this is reported as "steady"
TREND_EPSILON = 0.05

TREND_NO_DATA = "no-data"
TREND_STEADY = "steady"
TREND_IMPROVING = "improving"
TREND_DEGRADING = "degrading"


@dataclass
class _EntityHealth:
    """Rolling health state of one VM or server."""

    score: float = 1.0
    attestations: int = 0
    failures: int = 0
    responses: int = 0
    unreachable: int = 0
    monitor_readings: int = 0
    last_event_ms: float = 0.0
    last_property: str = ""
    #: policy coverage: stale / total continuous-monitoring checks
    #: ("-" in the rendered table when no policy covers the entity)
    stale_checks: int = 0
    total_checks: int = 0
    history: deque = field(default_factory=lambda: deque(maxlen=TREND_WINDOW))

    def absorb(self, healthy: bool, time_ms: float) -> None:
        outcome = 1.0 if healthy else 0.0
        self.score = DECAY * self.score + (1.0 - DECAY) * outcome
        self.attestations += 1
        if not healthy:
            self.failures += 1
        self.history.append(outcome)
        self.last_event_ms = time_ms

    def trend(self) -> str:
        """Direction of the recent outcome history."""
        if len(self.history) < 2:
            return TREND_NO_DATA
        outcomes = list(self.history)
        half = len(outcomes) // 2
        older = sum(outcomes[:half]) / half
        recent = sum(outcomes[half:]) / (len(outcomes) - half)
        if recent - older > TREND_EPSILON:
            return TREND_IMPROVING
        if older - recent > TREND_EPSILON:
            return TREND_DEGRADING
        return TREND_STEADY

    def to_dict(self) -> dict:
        return {
            "score": round(self.score, 4),
            "trend": self.trend(),
            "attestations": self.attestations,
            "failures": self.failures,
            "responses": self.responses,
            "unreachable": self.unreachable,
            "monitor_readings": self.monitor_readings,
            "last_event_ms": self.last_event_ms,
            "last_property": self.last_property,
            "coverage": self.coverage(),
        }

    def coverage(self) -> str:
        """Fresh/total policy checks, e.g. ``"2/3"``; ``"-"`` if none."""
        if self.total_checks == 0:
            return "-"
        return f"{self.total_checks - self.stale_checks}/{self.total_checks}"


class HealthScoreboard:
    """Per-VM and per-server rolling health, queryable as a snapshot."""

    def __init__(self):
        self._vms: dict[str, _EntityHealth] = {}
        self._servers: dict[str, _EntityHealth] = {}

    def _vm(self, vid: str) -> _EntityHealth:
        entry = self._vms.get(vid)
        if entry is None:
            entry = self._vms[vid] = _EntityHealth()
        return entry

    def _server(self, server: str) -> _EntityHealth:
        entry = self._servers.get(server)
        if entry is None:
            entry = self._servers[server] = _EntityHealth()
        return entry

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def record_attestation(
        self, time_ms: float, vid: str, server: str, prop: str, healthy: bool
    ) -> None:
        """Fold one attestation outcome into the VM and its host."""
        entry = self._vm(vid)
        entry.absorb(healthy, time_ms)
        entry.last_property = prop
        if server:
            host = self._server(server)
            host.absorb(healthy, time_ms)
            host.last_property = prop

    def record_response(self, time_ms: float, vid: str, action: str) -> None:
        """Count an executed remediation against the VM."""
        if action == "none":
            return
        entry = self._vm(vid)
        entry.responses += 1
        entry.last_event_ms = time_ms

    def record_unreachable(self, time_ms: float, endpoint: str) -> None:
        """An endpoint failed to answer: score it as a failed outcome."""
        entry = self._server(endpoint)
        entry.unreachable += 1
        entry.absorb(False, time_ms)

    def record_monitor(self, time_ms: float, server: str) -> None:
        """Count one monitor measurement round against a server."""
        entry = self._server(server)
        entry.monitor_readings += 1
        entry.last_event_ms = time_ms

    def record_coverage(
        self, time_ms: float, vid: str, stale_checks: int, total_checks: int
    ) -> None:
        """Update a VM's continuous-monitoring coverage tallies."""
        entry = self._vm(vid)
        entry.stale_checks = stale_checks
        entry.total_checks = total_checks
        entry.last_event_ms = time_ms

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def vm_score(self, vid: str) -> float:
        """Current rolling score of one VM (1.0 if never attested)."""
        entry = self._vms.get(str(vid))
        return entry.score if entry else 1.0

    def server_score(self, server: str) -> float:
        """Current rolling score of one server (1.0 if no history)."""
        entry = self._servers.get(str(server))
        return entry.score if entry else 1.0

    def snapshot(self) -> dict:
        """Deterministic fleet snapshot: every VM and server entry."""
        return {
            "vms": {vid: self._vms[vid].to_dict() for vid in sorted(self._vms)},
            "servers": {
                name: self._servers[name].to_dict()
                for name in sorted(self._servers)
            },
        }


def render_scoreboard(snapshot: dict, title: str = "Fleet health") -> str:
    """Monospace scoreboard table from a snapshot dict."""
    lines = [f"=== {title} ==="]
    for section, label in (("vms", "VM"), ("servers", "server")):
        entries = snapshot.get(section, {})
        if not entries:
            continue
        lines.append(f"{label}s:")
        headers = [label, "score", "trend", "attest", "fail", "resp",
                   "unreach", "coverage"]
        rows = [
            [
                name,
                f"{entry['score']:.4f}",
                entry["trend"],
                str(entry["attestations"]),
                str(entry["failures"]),
                str(entry["responses"]),
                str(entry["unreachable"]),
                str(entry.get("coverage", "-")),
            ]
            for name, entry in entries.items()
        ]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows))
            for i in range(len(headers))
        ]
        lines.append("  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        for row in rows:
            lines.append(
                "  " + "  ".join(c.ljust(w) for c, w in zip(row, widths))
            )
    if len(lines) == 1:
        lines.append("(no health data recorded)")
    return "\n".join(lines)
