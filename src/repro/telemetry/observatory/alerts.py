"""Declarative alerting over the observatory event stream.

The :class:`AlertEngine` evaluates a fixed rule set against the events
and finished spans the producers publish (see
:mod:`repro.telemetry.observatory.core`). Every timestamp is the
discrete-event engine's clock and every alert carries a monotonically
increasing sequence number, so two same-seed runs emit byte-identical
alert logs.

Rules mirror the paper's operational concerns:

- :class:`FailureStreakRule` — N consecutive failed attestations of one
  (VM, property) pair. This is the rule that can close the loop into
  ``nova response`` (Fig. 11): with a responder bound and
  ``auto_respond`` on, the streak alert invokes the configured
  :class:`~repro.controller.response.ResponseAction`.
- :class:`LatencySloRule` — a protocol leg (Q1/Q2/Q3, appraisal)
  exceeded its simulated-latency SLO target.
- :class:`VerificationSpikeRule` — nonce/quote/signature verification
  failures clustered inside a sliding window (an active attacker or a
  desynchronized component, not a one-off glitch).
- :class:`UnreachableRule` — an endpoint could not be reached.
- :class:`RetryStormRule` — protocol retries clustered inside a sliding
  window (backoff is masking a degrading network).
- :class:`BreakerOpenRule` — a per-AS circuit breaker opened (the
  controller is serving degraded ``UNREACHABLE`` reports).
- :class:`PolicyCoverageRule` — a monitoring-policy check blew its
  staleness budget: no real verdict landed within the window, so the
  VM's clean bill of health has silently expired.
- :class:`PolicyAlarmRule` — a policy alarm state machine went
  CRITICAL; re-arms only when the alarm clears back to OK, so a
  flapping VM pages once per raised episode, not per oscillation.

Duplicate suppression is engine-level: one alert per (rule, scope)
while the condition stays active; rules call :meth:`AlertEngine.clear`
when their condition resets (e.g. a healthy attestation ends a streak),
re-arming the scope.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.telemetry.tracer import (
    SPAN_APPRAISAL,
    SPAN_Q1,
    SPAN_Q2,
    SPAN_Q3,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.observatory.core import ObservatoryEvent

#: Default per-leg latency SLO targets in simulated ms — generous
#: enough that a healthy default-cost run stays green; override via
#: CloudMonatt(slo_targets=...) or the CLI ``--slo-*`` flags.
DEFAULT_SLO_TARGETS: dict[str, float] = {
    SPAN_Q1: 3000.0,
    SPAN_Q2: 2500.0,
    SPAN_Q3: 2000.0,
    SPAN_APPRAISAL: 2500.0,
}

SEVERITY_WARNING = "warning"
SEVERITY_CRITICAL = "critical"


@dataclass(frozen=True)
class Alert:
    """One structured alert record."""

    seq: int
    time_ms: float
    rule: str
    severity: str
    scope: str
    message: str
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-encodable form with deterministic key order."""
        return {
            "seq": self.seq,
            "time_ms": self.time_ms,
            "rule": self.rule,
            "severity": self.severity,
            "scope": self.scope,
            "message": self.message,
            "details": {k: self.details[k] for k in sorted(self.details)},
        }


class AlertRule:
    """Base rule: subscribes to events and/or finished spans."""

    name = "rule"
    severity = SEVERITY_WARNING

    def on_event(self, engine: "AlertEngine", event: "ObservatoryEvent") -> None:
        pass

    def on_span(self, engine: "AlertEngine", span: dict) -> None:
        pass


class FailureStreakRule(AlertRule):
    """N consecutive failed attestations of one (VM, property)."""

    name = "attestation_failure_streak"
    severity = SEVERITY_CRITICAL

    def __init__(self, threshold: int = 3):
        if threshold < 1:
            raise ValueError("streak threshold must be >= 1")
        self.threshold = threshold
        self._streaks: dict[tuple[str, str], int] = {}

    def streak(self, vid: str, prop: str) -> int:
        """Current consecutive-failure count for one (VM, property)."""
        return self._streaks.get((vid, prop), 0)

    def on_event(self, engine: "AlertEngine", event: "ObservatoryEvent") -> None:
        if event.kind != "attestation":
            return
        vid = str(event.fields.get("vid", ""))
        prop = str(event.fields.get("property", ""))
        key = (vid, prop)
        scope = f"{vid}/{prop}"
        if event.fields.get("healthy"):
            # a healthy round ends the streak and re-arms the scope
            self._streaks[key] = 0
            engine.clear(self, scope)
            return
        self._streaks[key] = self._streaks.get(key, 0) + 1
        if self._streaks[key] >= self.threshold:
            engine.fire(
                self,
                scope=scope,
                message=(
                    f"{self._streaks[key]} consecutive failed attestations "
                    f"of {prop} for {vid}"
                ),
                vid=vid,
                property=prop,
                server=str(event.fields.get("server", "")),
                streak=self._streaks[key],
                explanation=str(event.fields.get("explanation", "")),
            )


class LatencySloRule(AlertRule):
    """A protocol leg exceeded its simulated-latency SLO target."""

    name = "latency_slo_breach"
    severity = SEVERITY_WARNING

    def __init__(self, targets: Optional[dict[str, float]] = None):
        self.targets = dict(DEFAULT_SLO_TARGETS if targets is None else targets)
        #: per-leg observation/breach counts (zero-observation legs stay
        #: at (0, 0) and never fire)
        self._observed: dict[str, int] = {leg: 0 for leg in self.targets}
        self._breached: dict[str, int] = {leg: 0 for leg in self.targets}

    def on_span(self, engine: "AlertEngine", span: dict) -> None:
        target = self.targets.get(span["name"])
        if target is None or span.get("end_ms") is None:
            return
        leg = span["name"]
        duration = span["end_ms"] - span["start_ms"]
        self._observed[leg] += 1
        if duration <= target:
            return
        self._breached[leg] += 1
        vid = str(span.get("attrs", {}).get("vid", ""))
        engine.fire(
            self,
            scope=f"{leg}/{vid}" if vid else leg,
            message=(
                f"{leg} took {duration:.1f} ms against a "
                f"{target:.1f} ms SLO target"
            ),
            leg=leg,
            vid=vid,
            duration_ms=duration,
            target_ms=target,
        )

    def report(self) -> dict[str, dict]:
        """Per-leg SLO compliance: observations, breaches, target.

        Legs with zero observations report ``compliance: None`` rather
        than dividing by zero.
        """
        result: dict[str, dict] = {}
        for leg in sorted(self.targets):
            observed = self._observed[leg]
            breached = self._breached[leg]
            result[leg] = {
                "target_ms": self.targets[leg],
                "observed": observed,
                "breached": breached,
                "compliance": (
                    None if observed == 0 else (observed - breached) / observed
                ),
            }
        return result


class VerificationSpikeRule(AlertRule):
    """Nonce/quote/signature failures clustered in a sliding window."""

    name = "verification_failure_spike"
    severity = SEVERITY_CRITICAL

    def __init__(self, threshold: int = 3, window_ms: float = 60_000.0):
        self.threshold = threshold
        self.window_ms = window_ms
        self._recent: deque[float] = deque()

    def on_event(self, engine: "AlertEngine", event: "ObservatoryEvent") -> None:
        if event.kind != "verification_failure":
            return
        self._recent.append(event.time_ms)
        while self._recent and event.time_ms - self._recent[0] > self.window_ms:
            self._recent.popleft()
        if len(self._recent) >= self.threshold:
            fired = engine.fire(
                self,
                scope="protocol",
                message=(
                    f"{len(self._recent)} verification failures within "
                    f"{self.window_ms:.0f} ms"
                ),
                count=len(self._recent),
                window_ms=self.window_ms,
                last_kind=str(event.fields.get("kind", "")),
                last_detail=str(event.fields.get("detail", "")),
            )
            if fired is not None:
                # one alert per spike: restart the window so the scope
                # re-arms only after a fresh cluster accumulates
                self._recent.clear()
                engine.clear(self, "protocol")


class UnreachableRule(AlertRule):
    """An endpoint (cloud server, AS, customer) could not be reached."""

    name = "endpoint_unreachable"
    severity = SEVERITY_CRITICAL

    def on_event(self, engine: "AlertEngine", event: "ObservatoryEvent") -> None:
        if event.kind != "unreachable":
            return
        endpoint = str(event.fields.get("endpoint", ""))
        engine.fire(
            self,
            scope=endpoint,
            message=f"endpoint {endpoint} unreachable",
            endpoint=endpoint,
            detail=str(event.fields.get("detail", "")),
        )


class RetryStormRule(AlertRule):
    """Retries clustered in a sliding window: the network is degrading.

    A handful of isolated retries is normal life on a lossy wire; a
    burst of them per window means backoff is masking a systemic
    problem an operator should see before breakers start opening.
    """

    name = "retry_storm"
    severity = SEVERITY_WARNING

    def __init__(self, threshold: int = 6, window_ms: float = 60_000.0):
        self.threshold = threshold
        self.window_ms = window_ms
        self._recent: deque[float] = deque()

    def on_event(self, engine: "AlertEngine", event: "ObservatoryEvent") -> None:
        if event.kind != "retry":
            return
        self._recent.append(event.time_ms)
        while self._recent and event.time_ms - self._recent[0] > self.window_ms:
            self._recent.popleft()
        if len(self._recent) >= self.threshold:
            fired = engine.fire(
                self,
                scope="network",
                message=(
                    f"{len(self._recent)} protocol retries within "
                    f"{self.window_ms:.0f} ms"
                ),
                count=len(self._recent),
                window_ms=self.window_ms,
                last_site=str(event.fields.get("site", "")),
                last_error=str(event.fields.get("error", "")),
            )
            if fired is not None:
                # one alert per storm: re-arm only after a fresh burst
                self._recent.clear()
                engine.clear(self, "network")


class BreakerOpenRule(AlertRule):
    """A circuit breaker opened: an attestation server is dark.

    Fires on the open transition and re-arms when the breaker closes
    again (a half-open probe succeeded), so a flapping breaker alerts
    once per open period.
    """

    name = "circuit_breaker_open"
    severity = SEVERITY_CRITICAL

    def on_event(self, engine: "AlertEngine", event: "ObservatoryEvent") -> None:
        if event.kind != "breaker_state":
            return
        endpoint = str(event.fields.get("endpoint", ""))
        state = str(event.fields.get("state", ""))
        if state == "open":
            engine.fire(
                self,
                scope=endpoint,
                message=f"circuit breaker for {endpoint} opened",
                endpoint=endpoint,
                previous=str(event.fields.get("previous", "")),
            )
        elif state == "closed":
            engine.clear(self, endpoint)


class WorkerCrashRule(AlertRule):
    """A shard-executor worker process crashed.

    The parallel shard plane (``repro.shard.parallel``) publishes one
    ``shard_worker_crash`` event when a forked worker dies; the plane
    has already degraded itself to serial in-process execution by the
    time the event lands, so this alert marks the lost parallelism (and
    the crash itself) rather than lost correctness. The scope never
    re-arms within a run — a crashed executor stays degraded until the
    plane is rebuilt.
    """

    name = "shard_worker_crash"
    severity = SEVERITY_CRITICAL

    def on_event(self, engine: "AlertEngine", event: "ObservatoryEvent") -> None:
        if event.kind != "shard_worker_crash":
            return
        worker = str(event.fields.get("worker", ""))
        engine.fire(
            self,
            scope=worker or "executor",
            message=(
                f"shard executor worker {worker or '?'} crashed; "
                "plane degraded to serial execution"
            ),
            worker=worker,
            shards=str(event.fields.get("shards", "")),
            error=str(event.fields.get("error", "")),
        )


class KeyPoolExhaustedRule(AlertRule):
    """A pre-warmed KeyPool ran dry and fell back to on-demand keygen.

    The fleet pipeline pre-warms each server's session-key pool from
    its expected round count; an exhaustion event means the estimate
    was too low and a batch paid Miller-Rabin keygen on the critical
    path. One alert per exhaustion event (the scope re-arms itself so
    repeated shortfalls stay visible).
    """

    name = "keypool_exhausted"
    severity = SEVERITY_WARNING

    def on_event(self, engine: "AlertEngine", event: "ObservatoryEvent") -> None:
        if event.kind != "keypool_exhausted":
            return
        session_index = event.fields.get("session_index", "")
        engine.fire(
            self,
            scope="keypool",
            message=(
                "attestation key pool exhausted; session "
                f"{session_index} fell back to on-demand keygen"
            ),
            session_index=str(session_index),
            taken=str(event.fields.get("taken", "")),
        )
        engine.clear(self, "keypool")


class PolicyCoverageRule(AlertRule):
    """A monitoring-policy check blew its staleness budget.

    The policy scheduler publishes ``policy_coverage`` events on every
    stale/fresh transition; the alert fires while a check has gone
    longer than its budget without a *real* verdict (UNREACHABLE
    results age coverage rather than refreshing it) and re-arms as
    soon as a real verdict lands again.
    """

    name = "policy_coverage_blown"
    severity = SEVERITY_CRITICAL

    def on_event(self, engine: "AlertEngine", event: "ObservatoryEvent") -> None:
        if event.kind != "policy_coverage":
            return
        policy = str(event.fields.get("policy", ""))
        check = str(event.fields.get("check", ""))
        vid = str(event.fields.get("vid", ""))
        scope = f"{policy}/{check}/{vid}"
        if not event.fields.get("stale"):
            engine.clear(self, scope)
            return
        age = float(event.fields.get("age_ms", 0.0))
        budget = float(event.fields.get("budget_ms", 0.0))
        engine.fire(
            self,
            scope=scope,
            message=(
                f"policy {policy} check {check} on {vid}: no real verdict "
                f"for {age:.0f} ms against a {budget:.0f} ms staleness budget"
            ),
            policy=policy,
            check=check,
            vid=vid,
            property=str(event.fields.get("property", "")),
            age_ms=age,
            budget_ms=budget,
        )


class PolicyAlarmRule(AlertRule):
    """A policy alarm state machine escalated to CRITICAL.

    WARNING states stay off the pager (the state machine's own
    hysteresis already absorbed isolated flaps); the scope re-arms only
    when the alarm returns to OK, so one raised episode emits one
    alert no matter how the verdicts oscillate inside it.
    """

    name = "policy_alarm_critical"
    severity = SEVERITY_CRITICAL

    def on_event(self, engine: "AlertEngine", event: "ObservatoryEvent") -> None:
        if event.kind != "policy_alarm":
            return
        policy = str(event.fields.get("policy", ""))
        check = str(event.fields.get("check", ""))
        vid = str(event.fields.get("vid", ""))
        scope = f"{policy}/{check}/{vid}"
        new_state = str(event.fields.get("new_state", ""))
        if new_state == "CRITICAL":
            engine.fire(
                self,
                scope=scope,
                message=(
                    f"policy {policy} check {check} on {vid} went CRITICAL"
                ),
                policy=policy,
                check=check,
                vid=vid,
                property=str(event.fields.get("property", "")),
                verdict=str(event.fields.get("verdict", "")),
            )
        elif new_state == "OK":
            engine.clear(self, scope)


def default_rules(
    slo_targets: Optional[dict[str, float]] = None,
    streak_threshold: int = 3,
) -> list[AlertRule]:
    """The standard rule set, with optional SLO target overrides."""
    return [
        FailureStreakRule(threshold=streak_threshold),
        LatencySloRule(targets=slo_targets),
        VerificationSpikeRule(),
        UnreachableRule(),
        RetryStormRule(),
        BreakerOpenRule(),
        WorkerCrashRule(),
        KeyPoolExhaustedRule(),
        PolicyCoverageRule(),
        PolicyAlarmRule(),
    ]


class AlertEngine:
    """Evaluates rules and owns the deterministic alert log.

    ``responder`` is a :class:`~repro.controller.response.ResponseModule`
    (or anything with its ``respond(vid, prop)`` signature). It stays
    dormant until ``auto_respond`` is set, so alert-driven remediation
    never races the controller's own per-attestation auto-response
    unless an operator opted in.
    """

    #: rules whose alerts may trigger the responder
    RESPONDING_RULES = frozenset({FailureStreakRule.name})

    def __init__(
        self,
        clock: Callable[[], float],
        rules: Optional[Iterable[AlertRule]] = None,
    ):
        self.clock = clock
        self.rules: list[AlertRule] = (
            list(rules) if rules is not None else default_rules()
        )
        self.alerts: list[Alert] = []
        self.responder = None
        self.auto_respond = False
        self._active: set[tuple[str, str]] = set()
        self._seq = 0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def ingest_event(self, event: "ObservatoryEvent") -> None:
        """Offer one observatory event to every rule."""
        for rule in self.rules:
            rule.on_event(self, event)

    def ingest_span(self, span: dict) -> None:
        """Offer one finished span (dict form) to every rule."""
        for rule in self.rules:
            rule.on_span(self, span)

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------

    def fire(
        self, rule: AlertRule, scope: str, message: str, **details: object
    ) -> Optional[Alert]:
        """Emit an alert unless (rule, scope) is already active.

        Returns the alert, or ``None`` when suppressed as a duplicate.
        """
        key = (rule.name, scope)
        if key in self._active:
            return None
        self._active.add(key)
        detail_dict = {k: v for k, v in details.items() if v != ""}
        if (
            self.auto_respond
            and self.responder is not None
            and rule.name in self.RESPONDING_RULES
        ):
            detail_dict.update(self._respond(detail_dict))
        alert = Alert(
            seq=self._seq,
            time_ms=self.clock(),
            rule=rule.name,
            severity=rule.severity,
            scope=scope,
            message=message,
            details=detail_dict,
        )
        self._seq += 1
        self.alerts.append(alert)
        return alert

    def clear(self, rule: AlertRule, scope: str) -> None:
        """Re-arm a (rule, scope): the alerting condition has reset."""
        self._active.discard((rule.name, scope))

    def _respond(self, details: dict) -> dict:
        """Close the loop: run the configured remediation (Fig. 11)."""
        from repro.common.errors import CloudMonattError
        from repro.common.identifiers import VmId
        from repro.properties.catalog import SecurityProperty

        vid = details.get("vid")
        prop = details.get("property")
        if not vid or not prop:
            return {}
        try:
            outcome = self.responder.respond(
                VmId(str(vid)), SecurityProperty(str(prop))
            )
        except CloudMonattError as exc:
            # e.g. migration found no target and fell back to terminate
            return {"response_action": "failed", "response_error": str(exc)}
        return {
            "response_action": outcome.action.value,
            "response_ms": outcome.reaction_ms,
            "response_new_server": str(outcome.new_server or ""),
        }

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def slo_report(self) -> dict[str, dict]:
        """The latency-SLO compliance report, if an SLO rule is loaded."""
        for rule in self.rules:
            if isinstance(rule, LatencySloRule):
                return rule.report()
        return {}

    def to_records(self) -> list[dict]:
        """Alerts as JSON-encodable dicts, in emission order."""
        return [alert.to_dict() for alert in self.alerts]
