"""Queryable store of finished spans, live or from a JSONL artifact.

The store holds spans in the same dict form the JSONL exporter writes
(:meth:`repro.telemetry.tracer.Span.to_dict`), so one query/render
surface serves both a live :class:`~repro.telemetry.hub.Telemetry` hub
(via the tracer's finished-span listener) and a trace file loaded back
with :func:`repro.telemetry.exporters.read_jsonl`.

Queries: attribute filtering (Vid, span name/leg, minimum duration),
exact per-leg latency percentiles, and a text waterfall rendering of
one attestation round — the protocol tree of Fig. 3 with proportional
timing bars.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.telemetry.metrics import nearest_rank
from repro.telemetry.tracer import SPAN_Q1

#: span names treated as attestation-round roots for waterfall selection
ROUND_ROOT_SPANS = (SPAN_Q1,)


def span_duration_ms(span: dict) -> float:
    """Duration of one span record (0 when still open)."""
    if span.get("end_ms") is None:
        return 0.0
    return span["end_ms"] - span["start_ms"]


class TraceStore:
    """Finished spans with filtering, percentiles, and waterfalls."""

    def __init__(self):
        self._spans: list[dict] = []
        self._by_id: dict[int, dict] = {}
        self._children: dict[Optional[int], list[dict]] = {}

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def ingest(self, span) -> None:
        """Tracer listener entry point (takes a live ``Span``)."""
        self.add_record(span.to_dict())

    def add_record(self, record: dict) -> None:
        """Add one span record (exporter dict form)."""
        self._spans.append(record)
        self._by_id[record["span_id"]] = record
        self._children.setdefault(record.get("parent_id"), []).append(record)

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "TraceStore":
        """Build a store from parsed JSONL records (span lines only)."""
        store = cls()
        for record in records:
            if record.get("type") == "span":
                store.add_record(record)
        return store

    def __len__(self) -> int:
        return len(self._spans)

    # ------------------------------------------------------------------
    # filtering
    # ------------------------------------------------------------------

    def spans(
        self,
        name: Optional[str] = None,
        name_prefix: Optional[str] = None,
        vid: Optional[str] = None,
        min_duration_ms: Optional[float] = None,
    ) -> list[dict]:
        """Span records matching every given filter, completion order."""
        result = []
        for span in self._spans:
            if name is not None and span["name"] != name:
                continue
            if name_prefix is not None and not span["name"].startswith(name_prefix):
                continue
            if vid is not None and str(span.get("attrs", {}).get("vid")) != vid:
                continue
            if (
                min_duration_ms is not None
                and span_duration_ms(span) < min_duration_ms
            ):
                continue
            result.append(span)
        return result

    def leg_names(self) -> list[str]:
        """Distinct span names present, sorted."""
        return sorted({span["name"] for span in self._spans})

    # ------------------------------------------------------------------
    # percentiles
    # ------------------------------------------------------------------

    def percentiles(
        self, name: str, qs: tuple[float, ...] = (0.5, 0.9, 0.99)
    ) -> dict[str, float]:
        """Exact (nearest-rank) duration percentiles for one span name.

        Returns an empty dict when the leg has no finished spans.
        """
        durations = sorted(
            span_duration_ms(span)
            for span in self._spans
            if span["name"] == name and span.get("end_ms") is not None
        )
        if not durations:
            return {}
        result = {}
        for q in qs:
            result[f"p{int(q * 100)}"] = nearest_rank(durations, q)
        result["max"] = durations[-1]
        result["count"] = len(durations)
        return result

    def leg_table(self) -> list[list[str]]:
        """Per-leg rows [name, count, p50, p90, p99, max] in ms."""
        rows = []
        for name in self.leg_names():
            stats = self.percentiles(name)
            rows.append(
                [
                    name,
                    str(stats["count"]),
                    f"{stats['p50']:.1f}",
                    f"{stats['p90']:.1f}",
                    f"{stats['p99']:.1f}",
                    f"{stats['max']:.1f}",
                ]
            )
        return rows

    def render_leg_table(self, title: str = "per-leg latency (ms)") -> str:
        """Monospace table of :meth:`leg_table`."""
        headers = ["leg", "count", "p50", "p90", "p99", "max"]
        rows = self.leg_table()
        widths = [
            max(len(headers[col]), *(len(row[col]) for row in rows))
            if rows else len(headers[col])
            for col in range(len(headers))
        ]
        lines = [f"=== {title} ==="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        for row in rows:
            lines.append(
                "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # waterfall rendering
    # ------------------------------------------------------------------

    def roots(self, name: Optional[str] = None) -> list[dict]:
        """Root spans (no parent), optionally filtered by name."""
        result = [span for span in self._spans if span.get("parent_id") is None]
        if name is not None:
            result = [span for span in result if span["name"] == name]
        return sorted(result, key=lambda span: (span["start_ms"], span["span_id"]))

    def rounds(self) -> list[dict]:
        """Attestation-round roots (customer Q1 legs), in start order."""
        rounds = []
        for root_name in ROUND_ROOT_SPANS:
            rounds.extend(
                span for span in self._spans if span["name"] == root_name
            )
        return sorted(rounds, key=lambda span: (span["start_ms"], span["span_id"]))

    def subtree(self, root: dict) -> list[tuple[int, dict]]:
        """(depth, span) pairs under ``root``, depth-first by start time."""
        result: list[tuple[int, dict]] = []

        def visit(span: dict, depth: int) -> None:
            result.append((depth, span))
            children = sorted(
                self._children.get(span["span_id"], []),
                key=lambda child: (child["start_ms"], child["span_id"]),
            )
            for child in children:
                visit(child, depth + 1)

        visit(root, 0)
        return result

    def waterfall(self, root: dict, width: int = 32) -> str:
        """Text waterfall of one span tree: offset + duration bars."""
        tree = self.subtree(root)
        total = max(span_duration_ms(root), 1e-9)
        origin = root["start_ms"]
        name_width = max(
            len("  " * depth + span["name"]) for depth, span in tree
        )
        lines = [
            f"waterfall: {root['name']} "
            f"[{root['start_ms']:.1f} .. {root['end_ms']:.1f} ms, "
            f"{span_duration_ms(root):.1f} ms]"
        ]
        for depth, span in tree:
            duration = span_duration_ms(span)
            offset = int(round((span["start_ms"] - origin) / total * width))
            bar_len = max(1, int(round(duration / total * width)))
            offset = min(offset, width - 1)
            bar_len = min(bar_len, width - offset)
            bar = " " * offset + "#" * bar_len
            label = ("  " * depth + span["name"]).ljust(name_width)
            lines.append(f"  {label}  |{bar.ljust(width)}|{duration:9.1f} ms")
        return "\n".join(lines)
