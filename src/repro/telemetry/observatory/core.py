"""The Observatory: the consumer side of the telemetry hub.

PR 1's hub made every entity a *producer* (spans, counters,
histograms); nothing consumed the stream, so an operator could not ask
"which VMs are unhealthy, which protocol leg is slow, which alerts
fired this run". The Observatory answers those questions:

- :class:`~repro.telemetry.observatory.alerts.AlertEngine` —
  declarative rules over the event stream, with optional loop-closure
  into ``nova response``;
- :class:`~repro.telemetry.observatory.scoreboard.HealthScoreboard` —
  rolling per-VM / per-server health with trend direction;
- :class:`~repro.telemetry.observatory.tracestore.TraceStore` —
  span filtering, per-leg percentiles, waterfall rendering.

Producers publish through :meth:`repro.telemetry.hub.Telemetry.
observe_event` (a no-op unless an observatory is attached) and the
tracer's finished-span listener, so the producer side never imports
this package and an un-observed deployment pays one ``None`` check per
event. All timestamps come from the discrete-event engine: same-seed
runs yield byte-identical alert logs and scoreboard snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.telemetry.observatory.alerts import (
    AlertEngine,
    AlertRule,
    default_rules,
)
from repro.telemetry.observatory.scoreboard import HealthScoreboard
from repro.telemetry.observatory.tracestore import TraceStore
from repro.telemetry.tracer import SPAN_MEASURE

#: event kinds the producers publish
EVENT_ATTESTATION = "attestation"
EVENT_VERIFICATION_FAILURE = "verification_failure"
EVENT_UNREACHABLE = "unreachable"
EVENT_RESPONSE = "response"
EVENT_COLLECTION_FAILURE = "collection_failure"
EVENT_POLICY_ALARM = "policy_alarm"
EVENT_POLICY_COVERAGE = "policy_coverage"


@dataclass(frozen=True)
class ObservatoryEvent:
    """One producer-published event on the simulated timeline."""

    kind: str
    time_ms: float
    fields: dict

    def to_dict(self) -> dict:
        """JSON-encodable form with deterministic field order."""
        return {
            "kind": self.kind,
            "time_ms": self.time_ms,
            "fields": {k: self.fields[k] for k in sorted(self.fields)},
        }


class Observatory:
    """Alerting + scoreboard + trace store over one telemetry hub."""

    def __init__(
        self,
        clock: Callable[[], float],
        slo_targets: Optional[dict[str, float]] = None,
        rules: Optional[Iterable[AlertRule]] = None,
        streak_threshold: int = 3,
    ):
        self.clock = clock
        self.alerts = AlertEngine(
            clock,
            rules=(
                list(rules)
                if rules is not None
                else default_rules(slo_targets, streak_threshold=streak_threshold)
            ),
        )
        self.scoreboard = HealthScoreboard()
        self.traces = TraceStore()
        #: every published event, in publication order
        self.events: list[ObservatoryEvent] = []

    # ------------------------------------------------------------------
    # remediation loop-closure
    # ------------------------------------------------------------------

    def bind_responder(self, responder, auto_respond: bool = False) -> None:
        """Attach ``nova response`` so streak alerts can remediate.

        ``auto_respond`` stays off by default: the controller already
        responds per failed attestation when its own ``auto_respond``
        is set, and double remediation (e.g. terminating an already
        terminated VM) must be an explicit operator choice.
        """
        self.alerts.responder = responder
        self.alerts.auto_respond = auto_respond

    # ------------------------------------------------------------------
    # ingestion (hub-facing)
    # ------------------------------------------------------------------

    def record(self, kind: str, time_ms: float, fields: dict) -> None:
        """Publish one event: log it, score it, evaluate alert rules."""
        event = ObservatoryEvent(kind=kind, time_ms=time_ms, fields=dict(fields))
        self.events.append(event)
        if kind == EVENT_ATTESTATION:
            self.scoreboard.record_attestation(
                time_ms,
                vid=str(fields.get("vid", "")),
                server=str(fields.get("server", "")),
                prop=str(fields.get("property", "")),
                healthy=bool(fields.get("healthy")),
            )
        elif kind == EVENT_RESPONSE:
            self.scoreboard.record_response(
                time_ms,
                vid=str(fields.get("vid", "")),
                action=str(fields.get("action", "")),
            )
        elif kind == EVENT_UNREACHABLE:
            self.scoreboard.record_unreachable(
                time_ms, endpoint=str(fields.get("endpoint", ""))
            )
        elif kind == EVENT_POLICY_COVERAGE:
            self.scoreboard.record_coverage(
                time_ms,
                vid=str(fields.get("vid", "")),
                stale_checks=int(fields.get("stale_checks", 0)),
                total_checks=int(fields.get("total_checks", 0)),
            )
        self.alerts.ingest_event(event)

    def ingest_span(self, span) -> None:
        """Tracer listener: store the span and evaluate SLO rules."""
        record = span.to_dict()
        self.traces.add_record(record)
        if span.name == SPAN_MEASURE:
            self.scoreboard.record_monitor(
                record["start_ms"], server=str(record["attrs"].get("server", ""))
            )
        self.alerts.ingest_span(record)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def health_snapshot(self) -> dict:
        """The fleet scoreboard snapshot (deterministic)."""
        return self.scoreboard.snapshot()

    def alert_records(self) -> list[dict]:
        """The alert log as dicts, in emission order."""
        return self.alerts.to_records()

    def event_records(self) -> list[dict]:
        """Every published event as dicts, in publication order."""
        return [event.to_dict() for event in self.events]

    def slo_report(self) -> dict[str, dict]:
        """Per-leg SLO compliance from the loaded latency rule."""
        return self.alerts.slo_report()

    def flight_records(self) -> list:
        """Per-round flight records joined lazily from spans + events.

        Nothing is assembled while the simulation runs — producers only
        pay the round-id tagging; the join happens here, at query or
        export time.
        """
        from repro.telemetry.observatory.flightrecorder import (
            build_flight_records,
        )

        return build_flight_records(self.traces.spans(), self.event_records())
