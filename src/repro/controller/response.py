"""The ``nova response`` module: remediation responses (paper §5.2).

Three responses to a failed attestation, with the trade-offs Fig. 11
quantifies:

- **Termination** — fastest reaction; sacrifices availability entirely.
- **Suspension** — saves state for later resume; the controller can
  keep attesting the platform and resume when it recovers.
- **Migration** — slowest (memory copy dominates, scaling with VM
  size), but the customer keeps using the VM immediately afterwards.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import PlacementError
from repro.common.identifiers import ServerId, VmId
from repro.controller.database import NovaDatabase
from repro.controller.scheduler import NovaScheduler
from repro.lifecycle.states import VmState
from repro.lifecycle.timing import CostModel
from repro.network.secure_channel import SecureEndpoint
from repro.properties.catalog import SecurityProperty
from repro.protocol import messages as msg
from repro.telemetry import NULL_TELEMETRY, SPAN_RESPONSE_PREFIX, Telemetry


class ResponseAction(enum.Enum):
    """Remediation strategies (paper §5.2 #1-#3, plus report-only)."""

    NONE = "none"
    TERMINATE = "terminate"
    SUSPEND = "suspend"
    MIGRATE = "migrate"


@dataclass(frozen=True)
class ResponseOutcome:
    """What a remediation did and how long it took."""

    action: ResponseAction
    reaction_ms: float
    new_server: ServerId | None = None
    detail: str = ""


class ResponseModule:
    """Executes remediation responses through the management plane."""

    def __init__(
        self,
        endpoint: SecureEndpoint,
        database: NovaDatabase,
        scheduler: NovaScheduler,
        cost_model: CostModel,
        telemetry: Telemetry | None = None,
    ):
        self._endpoint = endpoint
        self._db = database
        self._scheduler = scheduler
        self.cost = cost_model
        self.telemetry = telemetry or NULL_TELEMETRY
        #: per-property remediation policy; NONE = report only
        self.policies: dict[SecurityProperty, ResponseAction] = {}
        #: set by the controller: the lifecycle provenance log
        self.provenance = None
        #: §5.2 suspend-recheck-resume loop: after a SUSPEND response,
        #: keep checking the server and resume when it recovers
        self.auto_resume_after_suspend = True
        self.resume_check_interval_ms = 20_000.0
        #: a co-resident using more than this share of the host means
        #: the contention that triggered the suspension persists
        self.resume_contention_threshold = 0.85
        #: optional data-center topology: when set, migrations prefer
        #: the nearest qualified destination and memory-copy time scales
        #: with hop distance (oversubscribed aggregation links)
        self.topology = None

    def _record(self, vid: VmId, event: str, **payload) -> None:
        if self.provenance is not None:
            self.provenance.append(
                time_ms=self.cost.engine.now,
                event=event,
                payload={"vid": str(vid), **payload},
            )

    def set_policy(self, prop: SecurityProperty, action: ResponseAction) -> None:
        """Choose the remediation for failures of one property."""
        self.policies[prop] = action

    def policy_for(self, prop: SecurityProperty) -> ResponseAction:
        """The configured action (default: report only)."""
        return self.policies.get(prop, ResponseAction.NONE)

    def respond(self, vid: VmId, prop: SecurityProperty) -> ResponseOutcome:
        """Execute the configured remediation for a failed attestation."""
        action = self.policy_for(prop)
        started = self.cost.engine.now
        if action is ResponseAction.NONE:
            return ResponseOutcome(action=action, reaction_ms=0.0)
        with self.telemetry.span(
            SPAN_RESPONSE_PREFIX + action.value, vid=str(vid), property=prop.value
        ):
            if action is ResponseAction.TERMINATE:
                self.terminate(vid)
            elif action is ResponseAction.SUSPEND:
                self.suspend(vid)
                if self.auto_resume_after_suspend:
                    self._schedule_resume_check(vid)
            elif action is ResponseAction.MIGRATE:
                return self._finish(vid, action, started, self.migrate(vid))
            return self._finish(vid, action, started, None)

    def _finish(
        self,
        vid: VmId,
        action: ResponseAction,
        started: float,
        new_server: ServerId | None,
    ) -> ResponseOutcome:
        reaction_ms = self.cost.engine.now - started
        if self.telemetry.enabled:
            self.telemetry.histogram("controller.reaction_ms").observe(
                reaction_ms, action=action.value
            )
        self.telemetry.observe_event(
            "response",
            vid=str(vid),
            action=action.value,
            reaction_ms=reaction_ms,
            new_server=str(new_server or ""),
        )
        return ResponseOutcome(
            action=action,
            reaction_ms=reaction_ms,
            new_server=new_server,
        )

    # ------------------------------------------------------------------
    # the three mechanisms (also used by the customer-facing API)
    # ------------------------------------------------------------------

    def terminate(self, vid: VmId) -> None:
        """Response #1: shut the VM down to protect it."""
        record = self._db.vm(vid)
        self._endpoint.call(
            str(record.server), {msg.KEY_TYPE: msg.MSG_TERMINATE, msg.KEY_VID: str(vid)}
        )
        record.transition(VmState.TERMINATED)
        self._record(vid, "terminated", server=str(record.server))

    def suspend(self, vid: VmId) -> None:
        """Response #2: pause the VM, keeping state for a later resume."""
        record = self._db.vm(vid)
        self._endpoint.call(
            str(record.server), {msg.KEY_TYPE: msg.MSG_SUSPEND, msg.KEY_VID: str(vid)}
        )
        record.transition(VmState.SUSPENDED)
        self._record(vid, "suspended", server=str(record.server))

    def resume(self, vid: VmId) -> None:
        """Resume a suspended VM (after the platform re-attests healthy)."""
        record = self._db.vm(vid)
        self._endpoint.call(
            str(record.server), {msg.KEY_TYPE: msg.MSG_RESUME, msg.KEY_VID: str(vid)}
        )
        record.transition(VmState.ACTIVE)
        self._record(vid, "resumed", server=str(record.server))

    def _schedule_resume_check(self, vid: VmId) -> None:
        self.cost.engine.schedule(
            self.resume_check_interval_ms, self._resume_check, vid
        )

    def _resume_check(self, vid: VmId) -> None:
        """§5.2: "it can initiate further checking... If the attestation
        results show the cloud server has returned to the desired
        security health, the controller can resume the VM from the
        saved state." The check reads the server's load telemetry: the
        suspension is lifted once no co-resident is monopolizing the
        host."""
        record = self._db.vm(vid)
        if record.state is not VmState.SUSPENDED:
            return  # resumed or terminated by other means
        try:
            report = self._endpoint.call(
                str(record.server), {msg.KEY_TYPE: "server_load_report"}
            )
        except Exception:
            self._schedule_resume_check(vid)
            return
        co_resident_usage = [
            usage for other_vid, usage in report["usage"].items()
            if other_vid != str(vid)
        ]
        worst = max(co_resident_usage, default=0.0)
        if worst < self.resume_contention_threshold:
            self.resume(vid)
            self._record(vid, "auto_resumed", worst_co_resident_share=worst)
        else:
            self._record(vid, "resume_check_failed", worst_co_resident_share=worst)
            self._schedule_resume_check(vid)

    def migrate(self, vid: VmId) -> ServerId:
        """Response #3: move the VM to another qualified server.

        "If a suitable server is found, the controller migrates the VM
        to that server. Otherwise, this VM is terminated for security
        reasons." Raising :class:`PlacementError` after termination
        tells the caller which outcome occurred.
        """
        record = self._db.vm(vid)
        flavor = self._db.flavors[record.flavor]
        source = record.server
        candidates = self._scheduler.qualified_servers(
            flavor, record.properties, exclude={source},
            customer=str(record.customer), dedicated=record.dedicated,
        )
        if not candidates:
            self.terminate(vid)
            raise PlacementError(
                f"no qualified migration target for {vid}; VM terminated"
            )
        if self.topology is not None:
            destination = self.topology.nearest(source, candidates)
            distance_factor = self.topology.migration_distance_factor(
                source, destination
            )
        else:
            destination = candidates[0]
            distance_factor = 1.0
        record.transition(VmState.MIGRATING)
        out = self._endpoint.call(
            str(source),
            {
                msg.KEY_TYPE: msg.MSG_MIGRATE_OUT,
                msg.KEY_VID: str(vid),
                "distance_factor": distance_factor,
            },
        )
        self._endpoint.call(
            str(destination),
            {
                msg.KEY_TYPE: msg.MSG_MIGRATE_IN,
                msg.KEY_VID: str(vid),
                "snapshot": out["snapshot"],
            },
        )
        record.server = destination
        record.transition(VmState.ACTIVE)
        self._record(
            vid, "migrated", source=str(source), destination=str(destination)
        )
        # re-register the VM's interpretation references with the
        # destination cluster's Attestation Server (it may differ from
        # the source cluster's)
        if record.properties:
            self._endpoint.call(
                self._db.server(destination).attestation_server,
                {
                    msg.KEY_TYPE: "register_vm",
                    msg.KEY_VID: str(vid),
                    "image_name": record.image,
                    "entitled_share": record.entitled_share,
                },
            )
        return destination
