"""Data-center network topology (racks, switches, distance).

The paper's testbed is three machines on one switch; a deployment spans
racks, and two CloudMonatt operations care about network distance:

- **migration** (§5.3): copying a VM's memory across racks traverses
  aggregation links — the cost model scales the copy time by the hop
  distance between source and destination;
- **placement**: all else equal, the scheduler can prefer a destination
  close to the source to shrink the Fig. 11 migration tail.

The topology is a two-tier tree (core switch → rack top-of-rack
switches → servers) held in a ``networkx`` graph; distances are
shortest-path hop counts.
"""

from __future__ import annotations

from typing import Iterable, Optional

import networkx as nx

from repro.common.errors import ConfigurationError
from repro.common.identifiers import ServerId

CORE = "core-switch"


class DataCenterTopology:
    """Rack-structured topology with hop distances."""

    def __init__(self, rack_size: int = 4):
        if rack_size < 1:
            raise ConfigurationError("racks need at least one slot")
        self.rack_size = rack_size
        self._graph = nx.Graph()
        self._graph.add_node(CORE, kind="core")
        self._racks: list[str] = []
        self._rack_of: dict[ServerId, str] = {}

    def _new_rack(self) -> str:
        rack = f"rack-{len(self._racks) + 1}"
        self._graph.add_node(rack, kind="rack")
        self._graph.add_edge(CORE, rack)
        self._racks.append(rack)
        return rack

    def add_server(self, server_id: ServerId) -> str:
        """Place a server in the first rack with a free slot.

        Returns the rack name. New racks are added on demand.
        """
        if server_id in self._rack_of:
            raise ConfigurationError(f"server {server_id} already racked")
        for rack in self._racks:
            occupied = sum(1 for sid, r in self._rack_of.items() if r == rack)
            if occupied < self.rack_size:
                break
        else:
            rack = self._new_rack()
        self._graph.add_node(str(server_id), kind="server")
        self._graph.add_edge(rack, str(server_id))
        self._rack_of[server_id] = rack
        return rack

    def rack_of(self, server_id: ServerId) -> str:
        """The rack hosting a server."""
        if server_id not in self._rack_of:
            raise ConfigurationError(f"server {server_id} not racked")
        return self._rack_of[server_id]

    def same_rack(self, a: ServerId, b: ServerId) -> bool:
        """Whether two servers share a top-of-rack switch."""
        return self.rack_of(a) == self.rack_of(b)

    def distance(self, a: ServerId, b: ServerId) -> int:
        """Network hop count between two servers.

        Same server: 0. Same rack: 2 (up and down one ToR switch).
        Cross rack: 4 (via the core).
        """
        if a == b:
            return 0
        return nx.shortest_path_length(self._graph, str(a), str(b))

    def migration_distance_factor(self, a: ServerId, b: ServerId) -> float:
        """Memory-copy cost multiplier for a migration path.

        Same-rack copies run at ToR line rate (1.0x); each extra hop
        pair through the aggregation layer halves effective bandwidth
        (adds 0.5x time) — a standard oversubscription model.
        """
        hops = self.distance(a, b)
        if hops <= 2:
            return 1.0
        return 1.0 + 0.5 * ((hops - 2) // 2)

    def racks(self) -> list[str]:
        """All racks, in creation order."""
        return list(self._racks)

    def servers_in(self, rack: str) -> list[ServerId]:
        """Servers in one rack."""
        return sorted(
            (sid for sid, r in self._rack_of.items() if r == rack),
            key=str,
        )

    def nearest(
        self, source: ServerId, candidates: Iterable[ServerId]
    ) -> Optional[ServerId]:
        """The candidate with the fewest hops from ``source``."""
        ranked = sorted(
            ((self.distance(source, c), str(c), c) for c in candidates),
        )
        return ranked[0][2] if ranked else None
