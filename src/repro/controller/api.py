"""The Cloud Controller entity (``nova api`` + orchestration).

Implements the customer-facing API of paper Table 1:

- ``startup_attest_current(Vid, P, N)`` — attest before launch completes
  (the fifth launch stage);
- ``runtime_attest_current(Vid, P, N)`` — immediate attestation;
- ``runtime_attest_periodic(Vid, P, freq, N)`` — periodic attestation
  with fixed or random intervals, results pushed to the customer;
- ``stop_attest_periodic(Vid, P, N)``;

plus VM lifecycle commands (launch, terminate, resume).

The launch pipeline follows §7.1.1: Scheduling (with the property
filter and the oat-database capability check), Networking,
Block_device_mapping, Spawning, and the new fifth **Attestation** stage
that verifies the VM launched securely. Per-stage durations are
returned, which is how the Fig. 9 bench regenerates its breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import (
    CloudMonattError,
    PlacementError,
    ProtocolError,
    ReplayError,
)
from repro.common.identifiers import CustomerId, IdFactory, ServerId, VmId
from repro.controller.attest_service import AttestService
from repro.controller.database import NovaDatabase
from repro.controller.pipeline import AttestationPipeline
from repro.controller.response import ResponseAction, ResponseModule
from repro.controller.scheduler import NovaScheduler
from repro.crypto.certificates import CertificateAuthority
from repro.crypto.drbg import HmacDrbg
from repro.crypto.nonces import NonceCache
from repro.common.rng import DeterministicRng
from repro.lifecycle.flavors import Flavor, VmImage
from repro.lifecycle.states import VmRecord, VmState
from repro.lifecycle.timing import CostModel
from repro.monitors.audit_log import AuditLog
from repro.network.network import Network
from repro.network.secure_channel import SecureEndpoint
from repro.policy.model import MonitoringPolicy
from repro.policy.scheduler import PolicyScheduler
from repro.properties.catalog import PropertyCatalog, SecurityProperty
from repro.protocol import messages as msg
from repro.protocol.quotes import merkle_root, report_quote_q1
from repro.resilience import RetryExecutor, RetryPolicy, is_transient
from repro.sim.engine import Engine, EventHandle
from repro.telemetry import (
    KEY_ROUND,
    KEY_TRACE,
    NULL_TELEMETRY,
    SPAN_CONTROLLER_ATTEST,
    SPAN_LAUNCH,
    SPAN_LAUNCH_STAGE_PREFIX,
    Telemetry,
)
from repro.telemetry.observatory.flightrecorder import outcome_verdict

CONTROLLER_ENDPOINT = "controller"


@dataclass
class LaunchOutcome:
    """Result of a VM launch: placement, per-stage times, health."""

    vid: VmId
    server: Optional[ServerId]
    accepted: bool
    stage_times_ms: dict[str, float] = field(default_factory=dict)
    report: Optional[dict] = None

    @property
    def total_ms(self) -> float:
        """Total launch latency across all stages."""
        return sum(self.stage_times_ms.values())


@dataclass
class _Subscription:
    """One periodic-attestation subscription."""

    vid: VmId
    prop: SecurityProperty
    customer: str
    nonce: bytes
    frequency_ms: float
    random_range_ms: Optional[tuple[float, float]]
    seq: int = 0
    active: bool = True
    handle: Optional[EventHandle] = None


class CloudController:
    """The cloud manager entity."""

    def __init__(
        self,
        network: Network,
        engine: Engine,
        drbg: HmacDrbg,
        rng: DeterministicRng,
        ca: CertificateAuthority,
        cost_model: CostModel,
        flavors: dict[str, Flavor],
        images: dict[str, VmImage],
        id_factory: IdFactory,
        key_bits: int = 1024,
        name: str = CONTROLLER_ENDPOINT,
        telemetry: Optional[Telemetry] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_after_ms: float = 60_000.0,
        shard_name: Optional[str] = None,
    ):
        self.engine = engine
        self.rng = rng
        #: which control-plane shard this controller serves, or ``None``
        #: for the classic single-controller deployment (repro.shard)
        self.shard_name = shard_name
        self.cost = cost_model
        self.flavors = flavors
        self.images = images
        self.ids = id_factory
        self.telemetry = telemetry or NULL_TELEMETRY
        self.catalog = PropertyCatalog()
        self.database = NovaDatabase(flavors=flavors)
        self.scheduler = NovaScheduler(
            self.database, self.catalog, telemetry=self.telemetry
        )
        self.endpoint = SecureEndpoint(
            name,
            network,
            drbg.fork("endpoint"),
            ca,
            key_bits=key_bits,
            telemetry=self.telemetry,
        )
        self.endpoint.handler = self._handle
        self.attest_service = AttestService(
            self.endpoint,
            self.database,
            drbg.fork("attest"),
            cost_model,
            telemetry=self.telemetry,
            retry_policy=retry_policy,
            breaker_failure_threshold=breaker_failure_threshold,
            breaker_reset_after_ms=breaker_reset_after_ms,
        )
        #: the fleet pipeline: overlapped rounds drained into batched
        #: attest_many calls (see repro.controller.pipeline)
        self.pipeline = AttestationPipeline(
            engine, self.attest_service, telemetry=self.telemetry
        )
        self.response = ResponseModule(
            self.endpoint,
            self.database,
            self.scheduler,
            cost_model,
            telemetry=self.telemetry,
        )
        self._seen_n1 = NonceCache()
        self._subscriptions: dict[tuple[VmId, str], _Subscription] = {}
        #: whether failed attestations trigger the response module
        self.auto_respond = True
        #: tamper-evident provenance of every VM lifecycle transition
        #: (the paper's §4 "logging, auditing and provenance mechanisms")
        self.provenance = AuditLog()
        self.response.provenance = self.provenance
        # periodic-push retry; forked last so earlier DRBG streams stay
        # byte-identical across library versions
        self._push_retry = RetryExecutor(
            engine=engine,
            drbg=drbg.fork("push-retry"),
            policy=retry_policy,
            telemetry=self.telemetry,
            site="controller.push",
        )
        #: continuous monitoring: declarative policies compiled onto the
        #: engine and drained through the fleet pipeline (this fork must
        #: stay after push-retry so earlier DRBG streams are unchanged)
        self.policy_scheduler = PolicyScheduler(
            engine=engine,
            pipeline=self.pipeline,
            drbg=drbg.fork("policy"),
            telemetry=self.telemetry,
            catalog=self.catalog,
            responder=self.response,
            audit=self._record_provenance,
            eligible=self._vm_live,
            shard=shard_name or "",
        )

    def _vm_live(self, vid: str) -> bool:
        try:
            return self.database.vm(VmId(vid)).live
        except CloudMonattError:
            return False

    def _record_provenance(self, vid: VmId, event: str, **payload) -> None:
        # round_tags() is empty outside any flight-recorder round scope,
        # so untracked runs keep their exact historical payload bytes
        self.provenance.append(
            time_ms=self.engine.now,
            event=event,
            payload={"vid": str(vid), **payload, **self.telemetry.round_tags()},
        )

    def vm_provenance(self, vid: VmId) -> list:
        """The ordered lifecycle history of one VM."""
        return [
            record
            for record in self.provenance
            if record.payload.get("vid") == str(vid)
        ]

    # ------------------------------------------------------------------
    # customer-facing dispatch
    # ------------------------------------------------------------------

    def _handle(self, peer: str, body: dict) -> dict:
        msg.require_fields(body, msg.KEY_TYPE)
        handlers = {
            msg.MSG_LAUNCH: self._handle_launch,
            "runtime_attest_current": self._handle_attest_current,
            "startup_attest_current": self._handle_attest_current,
            msg.MSG_ATTEST_FLEET: self._handle_attest_fleet,
            "runtime_attest_periodic": self._handle_attest_periodic,
            "runtime_collect_raw": self._handle_collect_raw,
            "stop_attest_periodic": self._handle_stop_periodic,
            "register_policy": self._handle_register_policy,
            "policy_status": self._handle_policy_status,
            msg.MSG_TERMINATE: self._handle_terminate,
            msg.MSG_RESUME: self._handle_resume,
        }
        handler = handlers.get(body[msg.KEY_TYPE])
        if handler is None:
            raise ProtocolError(f"controller: unknown request {body[msg.KEY_TYPE]!r}")
        return handler(peer, body)

    # ------------------------------------------------------------------
    # VM launch: the five-stage pipeline
    # ------------------------------------------------------------------

    def _handle_launch(self, peer: str, body: dict) -> dict:
        msg.require_fields(body, "flavor_name", "image_name", "properties", "workload")
        flavor = self.flavors.get(str(body["flavor_name"]))
        image = self.images.get(str(body["image_name"]))
        if flavor is None or image is None:
            raise ProtocolError("unknown flavor or image")
        properties = [SecurityProperty(p) for p in body["properties"]]
        outcome = self.launch_vm(
            customer=CustomerId(peer),
            flavor=flavor,
            image=image,
            properties=properties,
            workload=dict(body["workload"]),
            pins=[int(p) for p in body["pins"]] if body.get("pins") else None,
            entitled_share=body.get("entitled_share"),
            force_server=(
                ServerId(body["force_server"]) if body.get("force_server") else None
            ),
            dedicated=bool(body.get("dedicated", False)),
            vid=VmId(body[msg.KEY_VID]) if body.get(msg.KEY_VID) else None,
        )
        return {
            msg.KEY_VID: str(outcome.vid),
            msg.KEY_STATUS: "active" if outcome.accepted else "rejected",
            "stage_times_ms": outcome.stage_times_ms,
            msg.KEY_REPORT: outcome.report,
        }

    def launch_vm(
        self,
        customer: CustomerId,
        flavor: Flavor,
        image: VmImage,
        properties: list[SecurityProperty],
        workload: dict,
        pins: Optional[list[int]] = None,
        entitled_share: Optional[float] = None,
        exclude_servers: Optional[set[ServerId]] = None,
        force_server: Optional[ServerId] = None,
        dedicated: bool = False,
        vid: Optional[VmId] = None,
    ) -> LaunchOutcome:
        """Run the launch pipeline; returns placement and stage timings.

        ``vid`` pre-assigns the identifier (shard-plane launches mint
        vids globally before routing); the database rejects duplicates.
        """
        with self.telemetry.span(
            SPAN_LAUNCH, customer=str(customer), flavor=flavor.name, image=image.name
        ):
            outcome = self._launch_pipeline(
                customer=customer,
                flavor=flavor,
                image=image,
                properties=properties,
                workload=workload,
                pins=pins,
                entitled_share=entitled_share,
                exclude_servers=exclude_servers,
                force_server=force_server,
                dedicated=dedicated,
                vid=vid,
            )
        if self.telemetry.enabled:
            self.telemetry.histogram("controller.launch_total_ms").observe(
                outcome.total_ms,
                accepted=str(outcome.accepted).lower(),
            )
            for stage, duration in outcome.stage_times_ms.items():
                self.telemetry.histogram("controller.launch_stage_ms").observe(
                    duration, stage=stage
                )
        return outcome

    def _launch_pipeline(
        self,
        customer: CustomerId,
        flavor: Flavor,
        image: VmImage,
        properties: list[SecurityProperty],
        workload: dict,
        pins: Optional[list[int]] = None,
        entitled_share: Optional[float] = None,
        exclude_servers: Optional[set[ServerId]] = None,
        force_server: Optional[ServerId] = None,
        dedicated: bool = False,
        vid: Optional[VmId] = None,
    ) -> LaunchOutcome:
        # the platform-retry recursion below never forwards ``vid``: the
        # rejected attempt keeps the pre-assigned id's database record,
        # so the retried launch mints a fresh one
        vid = vid if vid is not None else self.ids.vm_id()
        record = VmRecord(
            vid=vid,
            customer=customer,
            flavor=flavor.name,
            image=image.name,
            properties=list(properties),
            entitled_share=entitled_share,
            dedicated=dedicated,
        )
        self.database.add_vm(record)
        stage_times: dict[str, float] = {}

        # stage 1: scheduling (property filter included)
        stage_start = self.engine.now
        with self.telemetry.span(SPAN_LAUNCH_STAGE_PREFIX + "scheduling", vid=str(vid)):
            self.cost.charge("db_access")
            self.cost.charge("scheduling_base")
            if properties:
                self.cost.charge("scheduling_property_filter")
            try:
                if force_server is not None:
                    # operator placement hint (nova's force_hosts): bypass the
                    # filters but still respect physical capacity
                    if not self.database.fits(force_server, flavor):
                        raise PlacementError(
                            f"forced server {force_server} cannot fit the VM"
                        )
                    server = force_server
                else:
                    server = self.scheduler.select_server(
                        flavor, properties, exclude=exclude_servers,
                        customer=str(customer), dedicated=dedicated,
                    )
            except PlacementError:
                record.transition(VmState.REJECTED)
                self._record_provenance(
                    vid, "placement_failed", customer=str(customer)
                )
                raise
            record.server = server
            record.transition(VmState.SCHEDULED)
            self._record_provenance(
                vid, "scheduled", server=str(server), flavor=flavor.name,
                image=image.name, customer=str(customer),
            )
        stage_times["scheduling"] = self.engine.now - stage_start

        # stage 2: networking
        stage_start = self.engine.now
        with self.telemetry.span(SPAN_LAUNCH_STAGE_PREFIX + "networking", vid=str(vid)):
            self.cost.charge("networking")
        stage_times["networking"] = self.engine.now - stage_start

        # stage 3: block device mapping
        stage_start = self.engine.now
        with self.telemetry.span(
            SPAN_LAUNCH_STAGE_PREFIX + "block_device_mapping", vid=str(vid)
        ):
            self.cost.charge("block_device_mapping")
        stage_times["block_device_mapping"] = self.engine.now - stage_start

        # stage 4: spawning (the cloud server fetches, measures, boots)
        stage_start = self.engine.now
        with self.telemetry.span(SPAN_LAUNCH_STAGE_PREFIX + "spawning", vid=str(vid)):
            self.endpoint.call(
                str(server),
                {
                    msg.KEY_TYPE: msg.MSG_LAUNCH,
                    msg.KEY_VID: str(vid),
                    "image": {
                        "name": image.name,
                        "size_mb": image.size_mb,
                        "content": image.content,
                        "tasks": list(image.standard_tasks),
                        "modules": list(image.standard_modules),
                    },
                    "flavor": {
                        "name": flavor.name,
                        "vcpus": flavor.vcpus,
                        "memory_mb": flavor.memory_mb,
                        "disk_gb": flavor.disk_gb,
                    },
                    "workload": workload,
                    "pins": pins,
                },
            )
            record.transition(VmState.ACTIVE)
            self._record_provenance(vid, "launched", server=str(server))
        stage_times["spawning"] = self.engine.now - stage_start

        # stage 5: attestation — check the VM launched securely
        report_dict: Optional[dict] = None
        accepted = True
        if properties:
            stage_start = self.engine.now
            with self.telemetry.span(
                SPAN_LAUNCH_STAGE_PREFIX + "attestation", vid=str(vid)
            ):
                self.endpoint.call(
                    self.database.server(server).attestation_server,
                    {
                        msg.KEY_TYPE: "register_vm",
                        msg.KEY_VID: str(vid),
                        "image_name": image.name,
                        "entitled_share": entitled_share,
                    },
                )
                outcome = self.attest_service.attest(
                    vid, SecurityProperty.STARTUP_INTEGRITY
                )
            report_dict = outcome.report.to_dict()
            stage_times["attestation"] = self.engine.now - stage_start
            if not outcome.report.healthy:
                # §5.1: "If the platform's integrity is compromised,
                # CloudMonatt will select another qualified server for
                # hosting this VM. If the VM image is compromised, then
                # the VM launch request will be rejected."
                self.response.terminate(vid)
                platform_bad = not outcome.report.details.get(
                    "platform_known_good", True
                )
                image_ok = outcome.report.details.get("image_known_good", False)
                if platform_bad and image_ok:
                    record.state = VmState.REJECTED  # this attempt
                    self._record_provenance(
                        vid, "platform_failed_retrying", server=str(server),
                        reason=outcome.report.explanation,
                    )
                    retry_exclude = set(exclude_servers or set()) | {server}
                    return self._launch_pipeline(
                        customer=customer,
                        flavor=flavor,
                        image=image,
                        properties=properties,
                        workload=workload,
                        pins=pins,
                        entitled_share=entitled_share,
                        exclude_servers=retry_exclude,
                        dedicated=dedicated,
                    )
                record.state = VmState.REJECTED
                accepted = False
                self._record_provenance(
                    vid, "rejected", reason=outcome.report.explanation
                )
        return LaunchOutcome(
            vid=vid,
            server=record.server,
            accepted=accepted,
            stage_times_ms=stage_times,
            report=report_dict,
        )

    # ------------------------------------------------------------------
    # Table 1: one-time attestation
    # ------------------------------------------------------------------

    def _handle_attest_current(self, peer: str, body: dict) -> dict:
        msg.require_fields(body, msg.KEY_VID, msg.KEY_PROPERTY, msg.KEY_NONCE)
        vid = VmId(body[msg.KEY_VID])
        prop = SecurityProperty(body[msg.KEY_PROPERTY])
        nonce = bytes(body[msg.KEY_NONCE])
        self._seen_n1.check_and_store(nonce)
        record = self.database.vm(vid)
        if record.customer != peer:
            raise ProtocolError(f"VM {vid} does not belong to {peer!r}")
        # adopt the customer's flight-recorder round; in-process the
        # ambient scope already carries it, but the wire key keeps the
        # correlation honest across separately-traced entities
        with self.telemetry.round_scope(body.get(KEY_ROUND)), self.telemetry.span(
            SPAN_CONTROLLER_ATTEST,
            remote_parent=body.get(KEY_TRACE),
            vid=str(vid),
            property=prop.value,
            mode=str(body.get(msg.KEY_TYPE, "runtime_attest_current")),
        ):
            outcome = self.attest_service.attest(
                vid, prop, window_ms=body.get(msg.KEY_WINDOW)
            )
            response_info = None
            # a degraded (UNREACHABLE) outcome is not a verdict on the
            # VM — remediating on it would punish a healthy VM for an
            # unreachable attestation server
            if not outcome.report.healthy and self.auto_respond and not outcome.degraded:
                response_outcome = self.response.respond(vid, prop)
                response_info = {
                    "action": response_outcome.action.value,
                    "reaction_ms": response_outcome.reaction_ms,
                    "new_server": str(response_outcome.new_server or ""),
                }
            return self._sign_report(vid, prop, outcome.report.to_dict(), nonce, {
                "attest_ms": outcome.attest_ms,
                "response": response_info,
                "certificate": outcome.certificate,
            })

    def _handle_attest_fleet(self, peer: str, body: dict) -> dict:
        """Table-1 extension: attest many VMs in one customer request.

        Each entry carries its own fresh N1 (replay-checked and
        ownership-checked individually) and flows through the fleet
        pipeline as its own logical round; the response binds per-entry
        Q1 leaves under one Merkle root and one SKc signature. Entries
        are stably sorted by (Vid, nonce) before any batch operation.
        """
        msg.require_fields(body, msg.KEY_ENTRIES)
        raw_entries = list(body[msg.KEY_ENTRIES])
        if not raw_entries:
            raise ProtocolError("fleet attestation has no entries")
        parsed = []
        for entry in raw_entries:
            msg.require_fields(entry, msg.KEY_VID, msg.KEY_PROPERTY, msg.KEY_NONCE)
            vid = VmId(entry[msg.KEY_VID])
            prop = SecurityProperty(entry[msg.KEY_PROPERTY])
            nonce = bytes(entry[msg.KEY_NONCE])
            self._seen_n1.check_and_store(nonce)
            record = self.database.vm(vid)
            if record.customer != peer:
                raise ProtocolError(f"VM {vid} does not belong to {peer!r}")
            parsed.append((vid, prop, nonce, entry.get(KEY_ROUND)))
        parsed.sort(key=lambda item: (str(item[0]), item[2]))

        span_attrs: dict = {
            "vid": f"batch:{len(parsed)}",
            "property": "*",
            "mode": msg.MSG_ATTEST_FLEET,
        }
        adopted = [rid for _vid, _prop, _nonce, rid in parsed if rid]
        if adopted:
            # one shared controller leg serving every adopted round
            span_attrs["round_ids"] = adopted
        with self.telemetry.span(
            SPAN_CONTROLLER_ATTEST,
            remote_parent=body.get(KEY_TRACE),
            **span_attrs,
        ):
            futures = [
                self.pipeline.submit(vid, prop, window_ms=body.get(msg.KEY_WINDOW),
                                     round_id=rid)
                for vid, prop, _nonce, rid in parsed
            ]
            self.pipeline.flush()
            outcomes = [future.result() for future in futures]

            out_entries = []
            leaves = []
            for (vid, prop, nonce, _rid), outcome in zip(parsed, outcomes):
                response_info = None
                if (
                    not outcome.report.healthy
                    and self.auto_respond
                    and not outcome.degraded
                ):
                    response_outcome = self.response.respond(vid, prop)
                    response_info = {
                        "action": response_outcome.action.value,
                        "reaction_ms": response_outcome.reaction_ms,
                        "new_server": str(response_outcome.new_server or ""),
                    }
                report_dict = outcome.report.to_dict()
                quote = report_quote_q1(
                    str(vid), prop.value, report_dict, nonce,
                    telemetry=self.telemetry,
                )
                entry_out = {
                    msg.KEY_VID: str(vid),
                    msg.KEY_PROPERTY: prop.value,
                    msg.KEY_REPORT: report_dict,
                    msg.KEY_NONCE: nonce,
                    msg.KEY_QUOTE: quote,
                    "attest_ms": outcome.attest_ms,
                }
                if response_info is not None:
                    entry_out["response"] = response_info
                out_entries.append(entry_out)
                leaves.append(quote)
            batch_root = merkle_root(leaves, telemetry=self.telemetry)
            self.cost.charge("report_sign")
            signature = self.endpoint.sign(
                {msg.KEY_ENTRIES: out_entries, msg.KEY_BATCH_ROOT: batch_root}
            )
            return {
                msg.KEY_ENTRIES: out_entries,
                msg.KEY_BATCH_ROOT: batch_root,
                msg.KEY_SIGNATURE: signature,
            }

    def _handle_collect_raw(self, peer: str, body: dict) -> dict:
        """Pass-through mode: return validated raw measurements (§4.1)."""
        msg.require_fields(body, msg.KEY_VID, msg.KEY_PROPERTY, msg.KEY_NONCE)
        vid = VmId(body[msg.KEY_VID])
        prop = SecurityProperty(body[msg.KEY_PROPERTY])
        nonce = bytes(body[msg.KEY_NONCE])
        self._seen_n1.check_and_store(nonce)
        record = self.database.vm(vid)
        if record.customer != peer:
            raise ProtocolError(f"VM {vid} does not belong to {peer!r}")
        measurements = self.attest_service.collect_raw(
            vid, prop, window_ms=body.get(msg.KEY_WINDOW)
        )
        quote = report_quote_q1(
            str(vid), prop.value, measurements, nonce, telemetry=self.telemetry
        )
        signed = {
            msg.KEY_VID: str(vid),
            msg.KEY_PROPERTY: prop.value,
            msg.KEY_MEASUREMENTS: measurements,
            msg.KEY_NONCE: nonce,
            msg.KEY_QUOTE: quote,
        }
        self.cost.charge("report_sign")
        return {**signed, msg.KEY_SIGNATURE: self.endpoint.sign(signed)}

    def _sign_report(
        self, vid: VmId, prop: SecurityProperty, report: dict, nonce: bytes,
        extras: dict,
    ) -> dict:
        quote = report_quote_q1(
            str(vid), prop.value, report, nonce, telemetry=self.telemetry
        )
        signed = {
            msg.KEY_VID: str(vid),
            msg.KEY_PROPERTY: prop.value,
            msg.KEY_REPORT: report,
            msg.KEY_NONCE: nonce,
            msg.KEY_QUOTE: quote,
        }
        self.cost.charge("report_sign")
        return {
            **signed,
            msg.KEY_SIGNATURE: self.endpoint.sign(signed),
            **{k: v for k, v in extras.items() if v is not None},
        }

    # ------------------------------------------------------------------
    # Table 1: periodic attestation
    # ------------------------------------------------------------------

    def _handle_attest_periodic(self, peer: str, body: dict) -> dict:
        msg.require_fields(body, msg.KEY_VID, msg.KEY_PROPERTY, msg.KEY_NONCE)
        vid = VmId(body[msg.KEY_VID])
        prop = SecurityProperty(body[msg.KEY_PROPERTY])
        nonce = bytes(body[msg.KEY_NONCE])
        self._seen_n1.check_and_store(nonce)
        record = self.database.vm(vid)
        if record.customer != peer:
            raise ProtocolError(f"VM {vid} does not belong to {peer!r}")
        random_range = body.get("random_range_ms")
        frequency = float(body.get(msg.KEY_FREQ, 0.0))
        if not random_range and frequency <= 0:
            raise ProtocolError("periodic attestation needs a frequency or range")
        key = (vid, prop.value)
        if key in self._subscriptions and self._subscriptions[key].active:
            raise ProtocolError(f"periodic attestation already running for {key}")
        subscription = _Subscription(
            vid=vid,
            prop=prop,
            customer=peer,
            nonce=nonce,
            frequency_ms=frequency,
            random_range_ms=(
                (float(random_range[0]), float(random_range[1]))
                if random_range
                else None
            ),
        )
        self._subscriptions[key] = subscription
        self._schedule_next(subscription)
        return {msg.KEY_STATUS: "periodic_started", msg.KEY_VID: str(vid)}

    def _next_interval(self, subscription: _Subscription) -> float:
        if subscription.random_range_ms is not None:
            low, high = subscription.random_range_ms
            return self.rng.uniform(low, high)
        return subscription.frequency_ms

    def _schedule_next(self, subscription: _Subscription) -> None:
        subscription.handle = self.engine.schedule(
            self._next_interval(subscription), self._periodic_fire, subscription
        )

    def _periodic_fire(self, subscription: _Subscription) -> None:
        if not subscription.active:
            return
        record = self.database.vm(subscription.vid)
        if not record.live:
            subscription.active = False
            return
        if self.telemetry.enabled:
            self.telemetry.counter("controller.periodic_fires").inc(
                property=subscription.prop.value
            )
        rid = self.telemetry.mint_round_id()
        if rid is not None:
            self.telemetry.observe_event(
                "round_start",
                round_id=rid,
                vid=str(subscription.vid),
                property=subscription.prop.value,
                source="periodic",
            )
        with self.telemetry.round_scope(rid):
            try:
                # periodic mode: the AS accumulates measurements across
                # rounds and interprets the merged view (§3.2.1)
                outcome = self.attest_service.attest(
                    subscription.vid, subscription.prop, accumulate=True
                )
            except CloudMonattError as exc:
                # collection failed outright — surface as an unhealthy push
                from repro.properties.report import PropertyReport

                self.telemetry.observe_event(
                    "collection_failure",
                    vid=str(subscription.vid),
                    property=subscription.prop.value,
                    error=str(exc),
                )
                outcome_report = PropertyReport(
                    prop=subscription.prop,
                    healthy=False,
                    explanation=f"periodic attestation failed: {exc}",
                )
                if rid is not None:
                    self.telemetry.observe_event(
                        "round_end",
                        round_id=rid,
                        vid=str(subscription.vid),
                        property=subscription.prop.value,
                        verdict="UNHEALTHY",
                        degraded=False,
                        error=type(exc).__name__,
                    )
                self._push_result(subscription, outcome_report.to_dict(), None)
                self._schedule_next(subscription)
                return
            response_info = None
            if (
                not outcome.report.healthy
                and self.auto_respond
                and not outcome.degraded
            ):
                action = self.response.policy_for(subscription.prop)
                if action is not ResponseAction.NONE:
                    try:
                        response_outcome = self.response.respond(
                            subscription.vid, subscription.prop
                        )
                    except PlacementError:
                        response_outcome = None
                    if response_outcome is not None:
                        response_info = {
                            "action": response_outcome.action.value,
                            "reaction_ms": response_outcome.reaction_ms,
                        }
            if rid is not None:
                verdict, degraded = outcome_verdict(
                    outcome.report, outcome.degraded)
                self.telemetry.observe_event(
                    "round_end",
                    round_id=rid,
                    vid=str(subscription.vid),
                    property=subscription.prop.value,
                    verdict=verdict,
                    degraded=degraded,
                )
            self._push_result(subscription, outcome.report.to_dict(), response_info)
        if self.database.vm(subscription.vid).live:
            self._schedule_next(subscription)
        else:
            subscription.active = False

    def _push_result(
        self, subscription: _Subscription, report: dict, response_info: Optional[dict]
    ) -> None:
        subscription.seq += 1
        signed = {
            msg.KEY_VID: str(subscription.vid),
            msg.KEY_PROPERTY: subscription.prop.value,
            msg.KEY_REPORT: report,
            "seq": subscription.seq,
            msg.KEY_NONCE: subscription.nonce,
        }
        push = {
            msg.KEY_TYPE: msg.MSG_PERIODIC_RESULT,
            **signed,
            msg.KEY_SIGNATURE: self.endpoint.sign(signed),
            "response": response_info,
        }
        try:
            self._push_retry.run(
                lambda: self.endpoint.call(subscription.customer, push),
                # a ReplayError from the customer means the push already
                # landed — re-sending the same seq can never succeed
                classify=lambda e: is_transient(e) and not isinstance(e, ReplayError),
            )
        except ReplayError:
            # the customer already processed this push and only the
            # acknowledgement was lost: delivered, nothing to do
            pass
        except CloudMonattError as exc:
            # the customer endpoint staying unreachable through the
            # retry budget must not kill the periodic loop; results
            # keep accumulating in the AS log
            self.telemetry.observe_event(
                "unreachable", endpoint=subscription.customer, detail=str(exc)
            )

    def _handle_stop_periodic(self, peer: str, body: dict) -> dict:
        msg.require_fields(body, msg.KEY_VID, msg.KEY_PROPERTY)
        key = (VmId(body[msg.KEY_VID]), str(body[msg.KEY_PROPERTY]))
        subscription = self._subscriptions.get(key)
        if subscription is None or not subscription.active:
            raise ProtocolError("no active periodic attestation to stop")
        if subscription.customer != peer:
            raise ProtocolError("subscription belongs to a different customer")
        subscription.active = False
        if subscription.handle is not None:
            self.engine.cancel(subscription.handle)
        return {msg.KEY_STATUS: "periodic_stopped"}

    # ------------------------------------------------------------------
    # declarative monitoring policies (continuous attestation)
    # ------------------------------------------------------------------

    def _handle_register_policy(self, peer: str, body: dict) -> dict:
        """Register or version-migrate a monitoring policy document.

        Validation happens here, at the API boundary: a malformed
        document (unknown property, non-positive period) dies with a
        :class:`~repro.common.errors.PolicyError` before the scheduler
        ever sees it. Every entity must belong to the calling customer.
        """
        msg.require_fields(body, "policy")
        policy = MonitoringPolicy.from_dict(body["policy"])
        for vid in policy.entities:
            record = self.database.vm(VmId(vid))
            if record.customer != peer:
                raise ProtocolError(f"VM {vid} does not belong to {peer!r}")
        applied = self.policy_scheduler.apply(policy, owner=peer)
        return {msg.KEY_STATUS: "policy_applied", **applied}

    def _handle_policy_status(self, peer: str, body: dict) -> dict:
        """Report the calling customer's policies, entries, timeline."""
        return {msg.KEY_STATUS: "ok", **self.policy_scheduler.status(owner=peer)}

    # ------------------------------------------------------------------
    # lifecycle commands
    # ------------------------------------------------------------------

    def _owned_vm(self, peer: str, body: dict) -> VmId:
        msg.require_fields(body, msg.KEY_VID)
        vid = VmId(body[msg.KEY_VID])
        record = self.database.vm(vid)
        if record.customer != peer:
            raise ProtocolError(f"VM {vid} does not belong to {peer!r}")
        return vid

    def _handle_terminate(self, peer: str, body: dict) -> dict:
        vid = self._owned_vm(peer, body)
        self.response.terminate(vid)
        return {msg.KEY_STATUS: "terminated", msg.KEY_VID: str(vid)}

    def _handle_resume(self, peer: str, body: dict) -> dict:
        vid = self._owned_vm(peer, body)
        self.response.resume(vid)
        return {msg.KEY_STATUS: "active", msg.KEY_VID: str(vid)}
