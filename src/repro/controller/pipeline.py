"""The fleet attestation pipeline: overlapped rounds over one engine.

The serial path runs one Fig. 3 round end-to-end at a time; the
pipeline instead lets callers *submit* logical rounds and receive a
:class:`~repro.sim.rounds.RoundFuture`, then drains the queue on an
engine tick: pending rounds are stably ordered, grouped, and pushed
through :meth:`AttestService.attest_many`, which coalesces same-server
measurement passes and batches appraisal at the Attestation Server. N
concurrent rounds thus share wire crossings, measurement windows and
signatures instead of paying N of each.

Determinism: the queue drains in submission order, ``attest_many``
stably sorts by (Vid, property) and every hop sorts by (Vid, nonce)
before any batch operation, so two same-seed runs resolve every future
with identical values at identical simulated times.
"""

from __future__ import annotations

from typing import Optional

from repro.common.identifiers import VmId
from repro.controller.attest_service import AttestationOutcome, AttestService
from repro.properties.catalog import SecurityProperty
from repro.sim.engine import Engine
from repro.sim.rounds import RoundFuture
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.observatory.flightrecorder import outcome_verdict


class AttestationPipeline:
    """Bounded queue of pending logical rounds, drained per engine tick."""

    def __init__(
        self,
        engine: Engine,
        attest_service: AttestService,
        telemetry: Optional[Telemetry] = None,
        max_batch: int = 64,
        drain_delay_ms: float = 0.0,
    ):
        self.engine = engine
        self.attest_service = attest_service
        self.telemetry = telemetry or NULL_TELEMETRY
        #: upper bound on rounds drained into one batched request
        self.max_batch = max_batch
        #: how long submissions wait for company before the queue drains;
        #: 0 drains at the end of the current instant (after all events
        #: already scheduled for it, so same-tick submissions coalesce)
        self.drain_delay_ms = drain_delay_ms
        self._queue: list[
            tuple[VmId, SecurityProperty, Optional[float], bool,
                  RoundFuture[AttestationOutcome], Optional[str], bool]
        ] = []
        self._drain_scheduled = False

    @property
    def depth(self) -> int:
        """Rounds submitted and not yet drained."""
        return len(self._queue)

    def submit(
        self,
        vid: VmId,
        prop: SecurityProperty,
        window_ms: Optional[float] = None,
        accumulate: bool = False,
        source: str = "api",
        round_id: Optional[str] = None,
    ) -> RoundFuture[AttestationOutcome]:
        """Enqueue one logical round; resolves at the next drain tick.

        ``source`` labels the telemetry series so operators can split
        customer-requested rounds (``api``) from scheduler-originated
        ones (``policy``); it does not affect batching or ordering.

        ``round_id`` adopts a flight-recorder round minted upstream (a
        fleet-batched customer round arriving via the wire); when
        ``None`` the pipeline mints its own and owns the round's
        start/end bookkeeping.
        """
        owned = round_id is None
        rid = self.telemetry.mint_round_id() if owned else round_id
        future: RoundFuture[AttestationOutcome] = RoundFuture()
        future.round_id = rid
        if owned and rid is not None:
            self.telemetry.observe_event(
                "round_start",
                round_id=rid,
                vid=str(vid),
                property=prop.value,
                source=source,
            )
        self._queue.append((vid, prop, window_ms, accumulate, future, rid, owned))
        self.telemetry.counter("pipeline.rounds").inc(
            property=prop.value, source=source)
        self.telemetry.gauge("pipeline.queue.depth").set(len(self._queue))
        if not self._drain_scheduled:
            self._drain_scheduled = True
            self.engine.schedule(self.drain_delay_ms, self._drain)
        return future

    def flush(self) -> None:
        """Advance simulated time until every submitted round resolved."""
        while self._queue or self._drain_scheduled:
            self.engine.run_until(self.engine.now + max(self.drain_delay_ms, 0.0))

    def _drain(self) -> None:
        self._drain_scheduled = False
        if not self._queue:
            return
        pending = self._queue[: self.max_batch]
        del self._queue[: len(pending)]
        if self._queue:
            # over-full queue: the remainder drains on the next tick
            self._drain_scheduled = True
            self.engine.schedule(self.drain_delay_ms, self._drain)
        self.telemetry.gauge("pipeline.queue.depth").set(len(self._queue))
        # rounds with different windows or accumulation modes cannot
        # share a batched request; group them, preserving queue order
        groups: dict[tuple, list[int]] = {}
        for index, (_vid, _prop, window_ms, accumulate, *_rest) in enumerate(pending):
            groups.setdefault((window_ms, accumulate), []).append(index)
        for key in sorted(groups, key=lambda k: (repr(k[0]), k[1])):
            indices = groups[key]
            window_ms, accumulate = key
            requests = [(pending[i][0], pending[i][1]) for i in indices]
            rows = [pending[i] for i in indices]
            outcomes = None
            error: Optional[Exception] = None
            # the batched legs below serve every round in the group at
            # once: tag their spans/events with the whole id set
            with self.telemetry.round_scope(*(row[5] for row in rows)):
                try:
                    outcomes = self.attest_service.attest_many(
                        requests,
                        window_ms=window_ms,
                        accumulate=accumulate,
                        max_batch=self.max_batch,
                    )
                except Exception as exc:  # noqa: BLE001 — delivered via futures
                    error = exc
            # resolve *outside* the scope: done-callbacks (policy alarm
            # transitions) tag themselves with their own round id
            if error is not None:
                for row in rows:
                    self._round_end(row, verdict="ERROR",
                                    error=type(error).__name__)
                    row[4].set_exception(error)
                continue
            for row, outcome in zip(rows, outcomes):
                verdict, degraded = outcome_verdict(
                    outcome.report, outcome.degraded)
                self._round_end(row, verdict=verdict, degraded=degraded)
                row[4].set_result(outcome)

    def _round_end(
        self,
        row: tuple,
        verdict: str,
        degraded: bool = False,
        error: Optional[str] = None,
    ) -> None:
        """Publish the round's terminal event, if this pipeline owns it."""
        vid, prop, _window_ms, _accumulate, _future, rid, owned = row
        if not owned or rid is None:
            return
        fields: dict = {
            "round_id": rid,
            "vid": str(vid),
            "property": prop.value,
            "verdict": verdict,
            "degraded": degraded,
        }
        if error is not None:
            fields["error"] = error
        self.telemetry.observe_event("round_end", **fields)
