"""The controller's database (``nova database``, paper §6.1).

"We modify the controller's database to enable it to store the
customers' specifications about the security properties required for
their VMs. We also add new tables... which record each server's
monitoring and attestation capabilities."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import StateError
from repro.common.identifiers import ServerId, VmId
from repro.lifecycle.flavors import Flavor
from repro.lifecycle.states import VmRecord


@dataclass
class ServerInfo:
    """Capacity and capability record for one cloud server."""

    server_id: ServerId
    num_pcpus: int
    memory_mb: int
    #: measurement names the server's Monitor Module supports
    capabilities: set[str] = field(default_factory=set)
    secure: bool = True
    overcommit: float = 4.0
    #: endpoint name of the Attestation Server handling this server's
    #: cluster (paper §3.2.3: "There can be different Attestation Servers
    #: for different clusters of cloud servers")
    attestation_server: str = "attestation-server"

    @property
    def capacity_vcpus(self) -> int:
        """Schedulable vCPUs including overcommit."""
        return int(self.num_pcpus * self.overcommit)


@dataclass
class NovaDatabase:
    """VM records + server registry + derived allocation views."""

    flavors: dict[str, Flavor]
    _vms: dict[VmId, VmRecord] = field(default_factory=dict)
    _servers: dict[ServerId, ServerInfo] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # servers
    # ------------------------------------------------------------------

    def register_server(self, info: ServerInfo) -> None:
        """Add a server to the fleet registry."""
        self._servers[info.server_id] = info

    def server(self, server_id: ServerId) -> ServerInfo:
        """Look up a server; raises if unknown."""
        if server_id not in self._servers:
            raise StateError(f"unknown server {server_id!r}")
        return self._servers[server_id]

    def servers(self) -> list[ServerInfo]:
        """All registered servers."""
        return list(self._servers.values())

    # ------------------------------------------------------------------
    # VMs
    # ------------------------------------------------------------------

    def add_vm(self, record: VmRecord) -> None:
        """Insert a new VM record."""
        if record.vid in self._vms:
            raise StateError(f"duplicate VM record {record.vid}")
        self._vms[record.vid] = record

    def vm(self, vid: VmId) -> VmRecord:
        """Look up a VM record; raises if unknown."""
        if vid not in self._vms:
            raise StateError(f"unknown VM {vid!r}")
        return self._vms[vid]

    def vms(self) -> list[VmRecord]:
        """All VM records."""
        return list(self._vms.values())

    def vms_on(self, server_id: ServerId) -> list[VmRecord]:
        """Live VMs placed on a server."""
        return [
            r for r in self._vms.values() if r.server == server_id and r.live
        ]

    # ------------------------------------------------------------------
    # derived allocation views (for placement)
    # ------------------------------------------------------------------

    def allocated_vcpus(self, server_id: ServerId) -> int:
        """vCPUs promised to live VMs on a server."""
        return sum(self.flavors[r.flavor].vcpus for r in self.vms_on(server_id))

    def allocated_memory_mb(self, server_id: ServerId) -> int:
        """Memory promised to live VMs on a server."""
        return sum(self.flavors[r.flavor].memory_mb for r in self.vms_on(server_id))

    def co_location_allowed(
        self, server_id: ServerId, customer: str, dedicated: bool
    ) -> bool:
        """Anti-co-location check for placing ``customer``'s VM.

        Placement is refused when the server hosts another customer's
        *dedicated* VM, or when the new VM is dedicated and the server
        hosts any other customer's VM.
        """
        for record in self.vms_on(server_id):
            if record.customer == customer:
                continue
            if record.dedicated or dedicated:
                return False
        return True

    def fits(self, server_id: ServerId, flavor: Flavor) -> bool:
        """Capacity check against the database's allocation view."""
        info = self.server(server_id)
        return (
            self.allocated_vcpus(server_id) + flavor.vcpus <= info.capacity_vcpus
            and self.allocated_memory_mb(server_id) + flavor.memory_mb
            <= info.memory_mb
        )
