"""The Cloud Controller: the cloud manager entity (paper §3.2.2, §6.1).

Mirrors the OpenStack-Nova-based prototype structure:

- :class:`~repro.controller.database.NovaDatabase` — VM records, server
  capacity/capability registry, customer property requirements.
- :class:`~repro.controller.scheduler.NovaScheduler` — placement with
  the new ``property_filter`` on top of resource filtering.
- :class:`~repro.controller.attest_service.AttestService` — ``nova
  attest_service``: brokers attestations to the Attestation Server and
  validates its signed reports.
- :class:`~repro.controller.response.ResponseModule` — ``nova
  response``: termination / suspension / migration remediation.
- :class:`~repro.controller.api.CloudController` — ``nova api``: the
  customer-facing entity implementing Table 1 plus VM lifecycle
  commands, including the five-stage CloudMonatt launch pipeline.
"""

from repro.controller.api import CloudController, LaunchOutcome
from repro.controller.attest_service import AttestService
from repro.controller.database import NovaDatabase, ServerInfo
from repro.controller.response import ResponseAction, ResponseModule, ResponseOutcome
from repro.controller.scheduler import NovaScheduler
from repro.controller.topology import DataCenterTopology

__all__ = [
    "AttestService",
    "CloudController",
    "DataCenterTopology",
    "LaunchOutcome",
    "NovaDatabase",
    "NovaScheduler",
    "ResponseAction",
    "ResponseModule",
    "ResponseOutcome",
    "ServerInfo",
]
