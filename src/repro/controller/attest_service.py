"""The ``nova attest_service`` module (paper §6.1).

"This essential module manages the attestation services. It connects
nova database (for retrieving security properties), oat api (for
issuing attestations and receiving results) and nova response (for
triggering the responses)."

For each request the service adds the cloud-server identifier I (from
the database's VM→server mapping) and a fresh nonce N2, calls the
Attestation Server, and validates its signed report: SKa signature,
quote Q2, nonce echo, and field binding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import (
    CloudMonattError,
    NetworkError,
    ProtocolError,
    ReplayError,
    SignatureError,
)
from repro.common.identifiers import VmId
from repro.controller.database import NovaDatabase
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import RsaPublicKey
from repro.crypto.nonces import NonceGenerator
from repro.crypto.signatures import verify
from repro.lifecycle.timing import CostModel
from repro.network.secure_channel import SecureEndpoint
from repro.properties.catalog import SecurityProperty
from repro.properties.report import PropertyReport
from repro.protocol import messages as msg
from repro.protocol.quotes import merkle_root, report_quote_q2
from repro.resilience import (
    CircuitBreaker,
    RetryExecutor,
    RetryPolicy,
    is_transient,
)
from repro.telemetry import KEY_TRACE, NULL_TELEMETRY, SPAN_Q2, Telemetry


def _verification_failure_kind(exc: Exception) -> str:
    """Classify a report-validation failure for the observatory."""
    if isinstance(exc, ReplayError):
        return "nonce"
    if isinstance(exc, SignatureError):
        return "signature"
    return "quote"


@dataclass(frozen=True)
class AttestationOutcome:
    """A validated attestation with its timing."""

    report: PropertyReport
    attest_ms: float
    #: the AS-issued property certificate (transportable dict), if any
    certificate: dict | None = None
    #: True for a degraded (UNREACHABLE) report served while the AS
    #: circuit is open — not a verdict on the VM, so it must never
    #: trigger remediation
    degraded: bool = False


class AttestService:
    """Brokers attestations between the controller and the AS."""

    def __init__(
        self,
        endpoint: SecureEndpoint,
        database: NovaDatabase,
        drbg: HmacDrbg,
        cost_model: CostModel,
        attestation_server_name: str = "attestation-server",
        telemetry: Telemetry | None = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_after_ms: float = 60_000.0,
    ):
        self._endpoint = endpoint
        self._db = database
        self._nonces = NonceGenerator(drbg.fork("n2"))
        self._default_as = attestation_server_name
        self._as_keys: dict[str, RsaPublicKey] = {}
        self.cost = cost_model
        self.telemetry = telemetry or NULL_TELEMETRY
        # NOTE: appended after the n2 fork so the nonce stream stays
        # byte-identical across library versions
        self._retry = RetryExecutor(
            engine=cost_model.engine,
            drbg=drbg.fork("retry"),
            policy=retry_policy,
            telemetry=self.telemetry,
            site="controller.attest",
        )
        self._breaker_threshold = breaker_failure_threshold
        self._breaker_reset_ms = breaker_reset_after_ms
        #: one circuit breaker per attestation-server endpoint
        self.breakers: dict[str, CircuitBreaker] = {}

    def _breaker(self, as_name: str) -> CircuitBreaker:
        breaker = self.breakers.get(as_name)
        if breaker is None:
            breaker = CircuitBreaker(
                clock=lambda: self.cost.engine.now,
                failure_threshold=self._breaker_threshold,
                reset_after_ms=self._breaker_reset_ms,
                on_transition=(
                    lambda old, new, name=as_name: self._on_breaker_transition(
                        name, old, new
                    )
                ),
            )
            self.breakers[as_name] = breaker
        return breaker

    def _on_breaker_transition(self, as_name: str, old: str, new: str) -> None:
        self.telemetry.counter("resilience.breaker_transitions").inc(
            endpoint=as_name, to=new
        )
        self.telemetry.observe_event(
            "breaker_state", endpoint=as_name, state=new, previous=old
        )

    def breaker_state(self, as_name: str | None = None) -> str:
        """Current breaker state for one AS (default: the default AS)."""
        return self._breaker(as_name or self._default_as).state

    def set_attestation_server_key(
        self, key: RsaPublicKey, name: str | None = None
    ) -> None:
        """Install VKa for one Attestation Server (by endpoint name).

        With per-cluster attestation servers (§3.2.3), the controller
        holds one verification key per AS.
        """
        self._as_keys[name or self._default_as] = key

    def _as_for(self, record) -> str:
        """The Attestation Server responsible for the VM's cluster."""
        return self._db.server(record.server).attestation_server

    def attest(
        self,
        vid: VmId,
        prop: SecurityProperty,
        window_ms: float | None = None,
        accumulate: bool = False,
    ) -> AttestationOutcome:
        """One brokered, validated attestation of property P for VM Vid.

        ``accumulate=True`` asks the Attestation Server to merge this
        round with earlier ones (the periodic mode of §3.2.1).

        Transport failures are retried (fresh N2 each attempt); repeated
        round failures open the per-AS circuit breaker, after which the
        service returns a degraded ``UNREACHABLE`` outcome carrying the
        scoreboard's last-known server health instead of raising.
        """
        record = self._db.vm(vid)
        if record.server is None:
            raise ProtocolError(f"VM {vid} has no assigned server")
        started = self.cost.engine.now
        self.cost.charge("db_access")
        as_name = self._as_for(record)
        breaker = self._breaker(as_name)
        if not breaker.allow():
            return self._degraded_outcome(
                vid, prop, record, as_name, breaker,
                reason="circuit open", started=started,
            )

        def attempt() -> dict:
            # each retry is a fresh round with a fresh nonce N2, so the
            # AS replay cache accepts it
            fresh = self._nonces.fresh()
            request = {
                msg.KEY_TYPE: msg.MSG_ATTEST_REQUEST,
                msg.KEY_VID: str(vid),
                msg.KEY_SERVER: str(record.server),
                msg.KEY_PROPERTY: prop.value,
                msg.KEY_NONCE: bytes(fresh),
            }
            if window_ms is not None:
                request[msg.KEY_WINDOW] = float(window_ms)
            if accumulate:
                request["accumulate"] = True
            context = self.telemetry.context()
            if context is not None:
                request[KEY_TRACE] = context
            return {"nonce": bytes(fresh), "response": self._endpoint.call(as_name, request)}

        with self.telemetry.span(
            SPAN_Q2, vid=str(vid), property=prop.value, attestation_server=as_name
        ):
            try:
                round_result = self._retry.run(attempt)
            except CloudMonattError as exc:
                if not is_transient(exc):
                    raise
                if isinstance(exc, NetworkError):
                    self.telemetry.observe_event(
                        "unreachable", endpoint=as_name, detail=str(exc)
                    )
                breaker.record_failure()
                if not breaker.allow():
                    return self._degraded_outcome(
                        vid, prop, record, as_name, breaker,
                        reason=str(exc), started=started,
                    )
                raise
            breaker.record_success()
            nonce = round_result["nonce"]
            response = round_result["response"]
            try:
                report = self._validate(vid, prop, bytes(nonce), response, as_name)
            except (ProtocolError, ReplayError, SignatureError) as exc:
                self.telemetry.observe_event(
                    "verification_failure",
                    kind=_verification_failure_kind(exc),
                    vid=str(vid),
                    property=prop.value,
                    detail=str(exc),
                )
                raise
        attest_ms = self.cost.engine.now - started
        if self.telemetry.enabled:
            self.telemetry.histogram("controller.attest_ms").observe(
                attest_ms, property=prop.value
            )
        self.telemetry.observe_event(
            "attestation",
            vid=str(vid),
            server=str(record.server),
            property=prop.value,
            healthy=report.healthy,
            attest_ms=attest_ms,
            explanation=report.explanation,
        )
        return AttestationOutcome(
            report=report,
            attest_ms=attest_ms,
            certificate=response.get("certificate"),
        )

    def attest_many(
        self,
        requests: list[tuple[VmId, SecurityProperty]],
        window_ms: float | None = None,
        accumulate: bool = False,
        max_batch: int = 64,
    ) -> list[AttestationOutcome]:
        """Many brokered attestations in few wire rounds.

        Requests are stably sorted by (Vid, property), grouped by the
        responsible Attestation Server and sent as batched requests of
        at most ``max_batch`` entries; results come back aligned with
        the *original* request order. Each entry keeps its own fresh N2
        and its own Q2 leaf; one SKa signature per batch binds the
        Merkle root over the leaves.

        Resilience targets the logical round, not the shared batch: a
        transient batch failure records one breaker failure and then
        replays every entry through serial :meth:`attest` (own retries,
        own degraded outcome); an open circuit serves per-entry degraded
        outcomes immediately. Validation failures raise — a batch that
        fails its crypto checks is evidence, not noise.
        """
        if not requests:
            return []
        total = len(requests)
        outcomes: dict[int, AttestationOutcome] = {}
        order = sorted(
            range(total),
            key=lambda i: (str(requests[i][0]), requests[i][1].value),
        )
        groups: dict[str, list[int]] = {}
        records: dict[int, object] = {}
        for index in order:
            vid, _prop = requests[index]
            record = self._db.vm(vid)
            if record.server is None:
                raise ProtocolError(f"VM {vid} has no assigned server")
            self.cost.charge("db_access")
            records[index] = record
            groups.setdefault(self._as_for(record), []).append(index)
        for as_name in sorted(groups):
            indices = groups[as_name]
            breaker = self._breaker(as_name)
            for start in range(0, len(indices), max_batch):
                chunk = indices[start:start + max_batch]
                if not breaker.allow():
                    for index in chunk:
                        vid, prop = requests[index]
                        outcomes[index] = self._degraded_outcome(
                            vid, prop, records[index], as_name, breaker,
                            reason="circuit open", started=self.cost.engine.now,
                        )
                    continue
                try:
                    chunk_outcomes = self._attest_chunk(
                        chunk, requests, records, as_name, window_ms, accumulate
                    )
                except CloudMonattError as exc:
                    if not is_transient(exc):
                        raise
                    if isinstance(exc, NetworkError):
                        self.telemetry.observe_event(
                            "unreachable", endpoint=as_name, detail=str(exc)
                        )
                    breaker.record_failure()
                    self.telemetry.counter("pipeline.batch.fallbacks").inc(
                        site="controller.attest"
                    )
                    for index in chunk:
                        vid, prop = requests[index]
                        outcomes[index] = self.attest(
                            vid, prop, window_ms=window_ms, accumulate=accumulate
                        )
                    continue
                breaker.record_success()
                for index, outcome in zip(chunk, chunk_outcomes):
                    outcomes[index] = outcome
        return [outcomes[index] for index in range(total)]

    def _attest_chunk(
        self,
        chunk: list[int],
        requests: list[tuple[VmId, SecurityProperty]],
        records: dict,
        as_name: str,
        window_ms: float | None,
        accumulate: bool,
    ) -> list[AttestationOutcome]:
        """One batched wire round against one Attestation Server."""
        chunk_started = self.cost.engine.now
        entries = []
        nonce_to_pos: dict[bytes, int] = {}
        for pos, index in enumerate(chunk):
            vid, prop = requests[index]
            fresh = bytes(self._nonces.fresh())
            nonce_to_pos[fresh] = pos
            entries.append(
                {
                    msg.KEY_VID: str(vid),
                    msg.KEY_SERVER: str(records[index].server),
                    msg.KEY_PROPERTY: prop.value,
                    msg.KEY_NONCE: fresh,
                }
            )
        request = {
            msg.KEY_TYPE: msg.MSG_ATTEST_BATCH_REQUEST,
            msg.KEY_ENTRIES: entries,
        }
        if window_ms is not None:
            request[msg.KEY_WINDOW] = float(window_ms)
        if accumulate:
            request["accumulate"] = True
        context = self.telemetry.context()
        if context is not None:
            request[KEY_TRACE] = context
        with self.telemetry.span(
            SPAN_Q2,
            vid=f"batch:{len(chunk)}",
            property="*",
            attestation_server=as_name,
        ):
            response = self._endpoint.call(as_name, request)

        msg.require_fields(
            response, msg.KEY_ENTRIES, msg.KEY_BATCH_ROOT, msg.KEY_SIGNATURE
        )
        as_key = self._as_keys.get(as_name)
        if as_key is None:
            raise ProtocolError(f"no verification key for {as_name!r}")
        out_entries = list(response[msg.KEY_ENTRIES])
        if len(out_entries) != len(chunk):
            raise ProtocolError("batch response entry count mismatch")
        batch_root = bytes(response[msg.KEY_BATCH_ROOT])
        self.cost.charge("verify_signature")
        verify(
            as_key,
            {msg.KEY_ENTRIES: out_entries, msg.KEY_BATCH_ROOT: batch_root},
            bytes(response[msg.KEY_SIGNATURE]),
        )
        leaves: list[bytes] = []
        reports: list[PropertyReport | None] = [None] * len(chunk)
        seen_positions: set[int] = set()
        for entry in out_entries:
            msg.require_fields(
                entry,
                msg.KEY_VID,
                msg.KEY_SERVER,
                msg.KEY_PROPERTY,
                msg.KEY_REPORT,
                msg.KEY_NONCE,
                msg.KEY_QUOTE,
            )
            nonce = bytes(entry[msg.KEY_NONCE])
            pos = nonce_to_pos.get(nonce)
            if pos is None or pos in seen_positions:
                raise ReplayError("attestation server echoed a stale nonce N2")
            seen_positions.add(pos)
            vid, prop = requests[chunk[pos]]
            if entry[msg.KEY_VID] != str(vid) or entry[msg.KEY_PROPERTY] != prop.value:
                raise ProtocolError("batch entry names a different VM/property")
            expected_quote = report_quote_q2(
                str(vid),
                str(entry[msg.KEY_SERVER]),
                prop.value,
                entry[msg.KEY_REPORT],
                nonce,
                telemetry=self.telemetry,
            )
            if bytes(entry[msg.KEY_QUOTE]) != expected_quote:
                raise ProtocolError("quote Q2 does not bind the attestation report")
            leaves.append(expected_quote)
            reports[pos] = PropertyReport.from_dict(entry[msg.KEY_REPORT])
        if merkle_root(leaves, telemetry=self.telemetry) != batch_root:
            raise SignatureError("batch root does not bind the per-entry quotes")

        attest_ms = self.cost.engine.now - chunk_started
        outcomes: list[AttestationOutcome] = []
        for pos, index in enumerate(chunk):
            vid, prop = requests[index]
            report = reports[pos]
            assert report is not None
            if self.telemetry.enabled:
                self.telemetry.histogram("controller.attest_ms").observe(
                    attest_ms, property=prop.value
                )
            self.telemetry.observe_event(
                "attestation",
                vid=str(vid),
                server=str(records[index].server),
                property=prop.value,
                healthy=report.healthy,
                attest_ms=attest_ms,
                explanation=report.explanation,
            )
            outcomes.append(
                AttestationOutcome(
                    report=report, attest_ms=attest_ms, certificate=None
                )
            )
        return outcomes

    def _degraded_outcome(
        self,
        vid: VmId,
        prop: SecurityProperty,
        record,
        as_name: str,
        breaker: CircuitBreaker,
        reason: str,
        started: float,
    ) -> AttestationOutcome:
        """Serve the degraded (UNREACHABLE) report for a dark AS.

        Fail-closed: ``healthy=False`` with the verdict marked
        ``UNREACHABLE`` — the VM is unobservable, not known-bad — plus
        the scoreboard's last-known health for the hosting server so
        the customer sees the most recent evidence we have.
        """
        details: dict = {
            "verdict": "UNREACHABLE",
            "attestation_server": as_name,
            "breaker_state": breaker.state,
            "reason": reason,
        }
        observatory = self.telemetry.observatory
        if observatory is not None:
            details["last_known_health"] = {
                "server": str(record.server),
                "score": observatory.scoreboard.server_score(str(record.server)),
            }
        report = PropertyReport(
            prop=prop,
            healthy=False,
            explanation=(
                f"attestation server {as_name!r} unreachable "
                f"(circuit {breaker.state}): {reason}; "
                "last-known scoreboard health attached"
            ),
            details=details,
        )
        self.telemetry.counter("resilience.degraded_reports").inc(
            site="controller.attest"
        )
        self.telemetry.observe_event(
            "degraded_attestation",
            vid=str(vid),
            property=prop.value,
            attestation_server=as_name,
            breaker_state=breaker.state,
            detail=reason,
        )
        return AttestationOutcome(
            report=report,
            attest_ms=self.cost.engine.now - started,
            certificate=None,
            degraded=True,
        )

    def collect_raw(
        self, vid: VmId, prop: SecurityProperty, window_ms: float | None = None
    ) -> dict:
        """Pass-through collection: validated raw measurements, no verdict."""
        record = self._db.vm(vid)
        if record.server is None:
            raise ProtocolError(f"VM {vid} has no assigned server")
        self.cost.charge("db_access")
        as_name = self._as_for(record)

        def attempt() -> tuple[bytes, dict]:
            fresh = self._nonces.fresh()
            request = {
                msg.KEY_TYPE: "raw_measure_request",
                msg.KEY_VID: str(vid),
                msg.KEY_SERVER: str(record.server),
                msg.KEY_PROPERTY: prop.value,
                msg.KEY_NONCE: bytes(fresh),
            }
            if window_ms is not None:
                request[msg.KEY_WINDOW] = float(window_ms)
            return bytes(fresh), self._endpoint.call(as_name, request)

        nonce, response = self._retry.run(attempt)
        msg.require_fields(
            response, msg.KEY_VID, msg.KEY_SERVER, msg.KEY_PROPERTY,
            msg.KEY_MEASUREMENTS, msg.KEY_NONCE, msg.KEY_QUOTE, msg.KEY_SIGNATURE,
        )
        as_key = self._as_keys.get(as_name)
        if as_key is None:
            raise ProtocolError(f"no verification key for {as_name!r}")
        if bytes(response[msg.KEY_NONCE]) != bytes(nonce):
            raise ReplayError("attestation server echoed a stale nonce N2")
        signed = {
            key: response[key]
            for key in (msg.KEY_VID, msg.KEY_SERVER, msg.KEY_PROPERTY,
                        msg.KEY_MEASUREMENTS, msg.KEY_NONCE, msg.KEY_QUOTE)
        }
        self.cost.charge("verify_signature")
        verify(as_key, signed, bytes(response[msg.KEY_SIGNATURE]))
        expected = report_quote_q2(
            str(vid), str(response[msg.KEY_SERVER]), prop.value,
            response[msg.KEY_MEASUREMENTS], bytes(nonce),
            telemetry=self.telemetry,
        )
        if bytes(response[msg.KEY_QUOTE]) != expected:
            raise ProtocolError("quote does not bind the raw measurements")
        return response[msg.KEY_MEASUREMENTS]

    def _validate(
        self, vid: VmId, prop: SecurityProperty, nonce: bytes, response: dict,
        as_name: str,
    ) -> PropertyReport:
        msg.require_fields(
            response,
            msg.KEY_VID,
            msg.KEY_SERVER,
            msg.KEY_PROPERTY,
            msg.KEY_REPORT,
            msg.KEY_NONCE,
            msg.KEY_QUOTE,
            msg.KEY_SIGNATURE,
        )
        as_key = self._as_keys.get(as_name)
        if as_key is None:
            raise ProtocolError(f"no verification key for {as_name!r}")
        if bytes(response[msg.KEY_NONCE]) != nonce:
            raise ReplayError("attestation server echoed a stale nonce N2")
        if response[msg.KEY_VID] != str(vid) or response[msg.KEY_PROPERTY] != prop.value:
            raise ProtocolError("attestation response names a different VM/property")
        signed = {
            key: response[key]
            for key in (
                msg.KEY_VID,
                msg.KEY_SERVER,
                msg.KEY_PROPERTY,
                msg.KEY_REPORT,
                msg.KEY_NONCE,
                msg.KEY_QUOTE,
            )
        }
        self.cost.charge("verify_signature")
        verify(as_key, signed, bytes(response[msg.KEY_SIGNATURE]))
        expected_quote = report_quote_q2(
            str(vid),
            str(response[msg.KEY_SERVER]),
            prop.value,
            response[msg.KEY_REPORT],
            bytes(response[msg.KEY_NONCE]),
            telemetry=self.telemetry,
        )
        if bytes(response[msg.KEY_QUOTE]) != expected_quote:
            raise ProtocolError("quote Q2 does not bind the attestation report")
        return PropertyReport.from_dict(response[msg.KEY_REPORT])
