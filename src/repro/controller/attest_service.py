"""The ``nova attest_service`` module (paper §6.1).

"This essential module manages the attestation services. It connects
nova database (for retrieving security properties), oat api (for
issuing attestations and receiving results) and nova response (for
triggering the responses)."

For each request the service adds the cloud-server identifier I (from
the database's VM→server mapping) and a fresh nonce N2, calls the
Attestation Server, and validates its signed report: SKa signature,
quote Q2, nonce echo, and field binding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import (
    NetworkError,
    ProtocolError,
    ReplayError,
    SignatureError,
)
from repro.common.identifiers import VmId
from repro.controller.database import NovaDatabase
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import RsaPublicKey
from repro.crypto.nonces import NonceGenerator
from repro.crypto.signatures import verify
from repro.lifecycle.timing import CostModel
from repro.network.secure_channel import SecureEndpoint
from repro.properties.catalog import SecurityProperty
from repro.properties.report import PropertyReport
from repro.protocol import messages as msg
from repro.protocol.quotes import report_quote_q2
from repro.telemetry import KEY_TRACE, NULL_TELEMETRY, SPAN_Q2, Telemetry


def _verification_failure_kind(exc: Exception) -> str:
    """Classify a report-validation failure for the observatory."""
    if isinstance(exc, ReplayError):
        return "nonce"
    if isinstance(exc, SignatureError):
        return "signature"
    return "quote"


@dataclass(frozen=True)
class AttestationOutcome:
    """A validated attestation with its timing."""

    report: PropertyReport
    attest_ms: float
    #: the AS-issued property certificate (transportable dict), if any
    certificate: dict | None = None


class AttestService:
    """Brokers attestations between the controller and the AS."""

    def __init__(
        self,
        endpoint: SecureEndpoint,
        database: NovaDatabase,
        drbg: HmacDrbg,
        cost_model: CostModel,
        attestation_server_name: str = "attestation-server",
        telemetry: Telemetry | None = None,
    ):
        self._endpoint = endpoint
        self._db = database
        self._nonces = NonceGenerator(drbg.fork("n2"))
        self._default_as = attestation_server_name
        self._as_keys: dict[str, RsaPublicKey] = {}
        self.cost = cost_model
        self.telemetry = telemetry or NULL_TELEMETRY

    def set_attestation_server_key(
        self, key: RsaPublicKey, name: str | None = None
    ) -> None:
        """Install VKa for one Attestation Server (by endpoint name).

        With per-cluster attestation servers (§3.2.3), the controller
        holds one verification key per AS.
        """
        self._as_keys[name or self._default_as] = key

    def _as_for(self, record) -> str:
        """The Attestation Server responsible for the VM's cluster."""
        return self._db.server(record.server).attestation_server

    def attest(
        self,
        vid: VmId,
        prop: SecurityProperty,
        window_ms: float | None = None,
        accumulate: bool = False,
    ) -> AttestationOutcome:
        """One brokered, validated attestation of property P for VM Vid.

        ``accumulate=True`` asks the Attestation Server to merge this
        round with earlier ones (the periodic mode of §3.2.1).
        """
        record = self._db.vm(vid)
        if record.server is None:
            raise ProtocolError(f"VM {vid} has no assigned server")
        started = self.cost.engine.now
        nonce = self._nonces.fresh()
        self.cost.charge("db_access")
        as_name = self._as_for(record)
        request = {
            msg.KEY_TYPE: msg.MSG_ATTEST_REQUEST,
            msg.KEY_VID: str(vid),
            msg.KEY_SERVER: str(record.server),
            msg.KEY_PROPERTY: prop.value,
            msg.KEY_NONCE: bytes(nonce),
        }
        if window_ms is not None:
            request[msg.KEY_WINDOW] = float(window_ms)
        if accumulate:
            request["accumulate"] = True
        with self.telemetry.span(
            SPAN_Q2, vid=str(vid), property=prop.value, attestation_server=as_name
        ):
            context = self.telemetry.context()
            if context is not None:
                request[KEY_TRACE] = context
            try:
                response = self._endpoint.call(as_name, request)
            except NetworkError as exc:
                self.telemetry.observe_event(
                    "unreachable", endpoint=as_name, detail=str(exc)
                )
                raise
            try:
                report = self._validate(vid, prop, bytes(nonce), response, as_name)
            except (ProtocolError, ReplayError, SignatureError) as exc:
                self.telemetry.observe_event(
                    "verification_failure",
                    kind=_verification_failure_kind(exc),
                    vid=str(vid),
                    property=prop.value,
                    detail=str(exc),
                )
                raise
        attest_ms = self.cost.engine.now - started
        if self.telemetry.enabled:
            self.telemetry.histogram("controller.attest_ms").observe(
                attest_ms, property=prop.value
            )
        self.telemetry.observe_event(
            "attestation",
            vid=str(vid),
            server=str(record.server),
            property=prop.value,
            healthy=report.healthy,
            attest_ms=attest_ms,
            explanation=report.explanation,
        )
        return AttestationOutcome(
            report=report,
            attest_ms=attest_ms,
            certificate=response.get("certificate"),
        )

    def collect_raw(
        self, vid: VmId, prop: SecurityProperty, window_ms: float | None = None
    ) -> dict:
        """Pass-through collection: validated raw measurements, no verdict."""
        record = self._db.vm(vid)
        if record.server is None:
            raise ProtocolError(f"VM {vid} has no assigned server")
        nonce = self._nonces.fresh()
        self.cost.charge("db_access")
        as_name = self._as_for(record)
        request = {
            msg.KEY_TYPE: "raw_measure_request",
            msg.KEY_VID: str(vid),
            msg.KEY_SERVER: str(record.server),
            msg.KEY_PROPERTY: prop.value,
            msg.KEY_NONCE: bytes(nonce),
        }
        if window_ms is not None:
            request[msg.KEY_WINDOW] = float(window_ms)
        response = self._endpoint.call(as_name, request)
        msg.require_fields(
            response, msg.KEY_VID, msg.KEY_SERVER, msg.KEY_PROPERTY,
            msg.KEY_MEASUREMENTS, msg.KEY_NONCE, msg.KEY_QUOTE, msg.KEY_SIGNATURE,
        )
        as_key = self._as_keys.get(as_name)
        if as_key is None:
            raise ProtocolError(f"no verification key for {as_name!r}")
        if bytes(response[msg.KEY_NONCE]) != bytes(nonce):
            raise ReplayError("attestation server echoed a stale nonce N2")
        signed = {
            key: response[key]
            for key in (msg.KEY_VID, msg.KEY_SERVER, msg.KEY_PROPERTY,
                        msg.KEY_MEASUREMENTS, msg.KEY_NONCE, msg.KEY_QUOTE)
        }
        self.cost.charge("verify_signature")
        verify(as_key, signed, bytes(response[msg.KEY_SIGNATURE]))
        expected = report_quote_q2(
            str(vid), str(response[msg.KEY_SERVER]), prop.value,
            response[msg.KEY_MEASUREMENTS], bytes(nonce),
            telemetry=self.telemetry,
        )
        if bytes(response[msg.KEY_QUOTE]) != expected:
            raise ProtocolError("quote does not bind the raw measurements")
        return response[msg.KEY_MEASUREMENTS]

    def _validate(
        self, vid: VmId, prop: SecurityProperty, nonce: bytes, response: dict,
        as_name: str,
    ) -> PropertyReport:
        msg.require_fields(
            response,
            msg.KEY_VID,
            msg.KEY_SERVER,
            msg.KEY_PROPERTY,
            msg.KEY_REPORT,
            msg.KEY_NONCE,
            msg.KEY_QUOTE,
            msg.KEY_SIGNATURE,
        )
        as_key = self._as_keys.get(as_name)
        if as_key is None:
            raise ProtocolError(f"no verification key for {as_name!r}")
        if bytes(response[msg.KEY_NONCE]) != nonce:
            raise ReplayError("attestation server echoed a stale nonce N2")
        if response[msg.KEY_VID] != str(vid) or response[msg.KEY_PROPERTY] != prop.value:
            raise ProtocolError("attestation response names a different VM/property")
        signed = {
            key: response[key]
            for key in (
                msg.KEY_VID,
                msg.KEY_SERVER,
                msg.KEY_PROPERTY,
                msg.KEY_REPORT,
                msg.KEY_NONCE,
                msg.KEY_QUOTE,
            )
        }
        self.cost.charge("verify_signature")
        verify(as_key, signed, bytes(response[msg.KEY_SIGNATURE]))
        expected_quote = report_quote_q2(
            str(vid),
            str(response[msg.KEY_SERVER]),
            prop.value,
            response[msg.KEY_REPORT],
            bytes(response[msg.KEY_NONCE]),
            telemetry=self.telemetry,
        )
        if bytes(response[msg.KEY_QUOTE]) != expected_quote:
            raise ProtocolError("quote Q2 does not bind the attestation report")
        return PropertyReport.from_dict(response[msg.KEY_REPORT])
