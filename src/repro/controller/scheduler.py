"""Placement: the nova scheduler with the new ``property_filter``.

"The default scheduler in OpenStack is to choose the server with the
most remaining physical resources, to achieve workload balance. We add
a new filter: property_filter, to select qualified cloud servers to
host VMs based on their customers' security properties, monitoring and
attestation requirements." (paper §6.1)
"""

from __future__ import annotations

from typing import Iterable

from repro.common.errors import PlacementError
from repro.common.identifiers import ServerId
from repro.controller.database import NovaDatabase
from repro.lifecycle.flavors import Flavor
from repro.properties.catalog import PropertyCatalog, SecurityProperty
from repro.telemetry import NULL_TELEMETRY, Telemetry


class NovaScheduler:
    """Filter-and-weigh placement."""

    def __init__(
        self,
        database: NovaDatabase,
        catalog: PropertyCatalog,
        telemetry: Telemetry | None = None,
    ):
        self._db = database
        self._catalog = catalog
        self.telemetry = telemetry or NULL_TELEMETRY

    def required_measurements(
        self, properties: Iterable[SecurityProperty]
    ) -> set[str]:
        """Union of measurements the requested properties need."""
        needed: set[str] = set()
        for prop in properties:
            needed.update(self._catalog.measurements_for(prop))
        return needed

    def select_server(
        self,
        flavor: Flavor,
        properties: Iterable[SecurityProperty],
        exclude: set[ServerId] | None = None,
        customer: str | None = None,
        dedicated: bool = False,
    ) -> ServerId:
        """Pick the qualified server with the most remaining capacity.

        Filters: capacity (resource filter); the property filter (the
        server's Monitor Module must support every required
        measurement); and the anti-co-location filter when ``customer``
        is given (dedicated VMs never share with other customers, in
        either direction). Raises :class:`PlacementError` when no server
        qualifies.
        """
        candidates = self.qualified_servers(
            flavor, properties, exclude=exclude, customer=customer,
            dedicated=dedicated,
        )
        if not candidates:
            if self.telemetry.enabled:
                self.telemetry.counter("scheduler.placements").inc(outcome="failed")
            needed = self.required_measurements(properties)
            raise PlacementError(
                "no cloud server satisfies the resource and property "
                f"requirements (needed measurements: {sorted(needed)})"
            )
        if self.telemetry.enabled:
            self.telemetry.counter("scheduler.placements").inc(outcome="placed")
            self.telemetry.gauge("scheduler.last_candidates").set(len(candidates))
        return candidates[0]

    def qualified_servers(
        self,
        flavor: Flavor,
        properties: Iterable[SecurityProperty],
        exclude: set[ServerId] | None = None,
        customer: str | None = None,
        dedicated: bool = False,
    ) -> list[ServerId]:
        """All servers passing the filters, most-free first."""
        exclude = exclude or set()
        needed = self.required_measurements(properties)
        candidates = []
        for info in self._db.servers():
            if info.server_id in exclude:
                continue
            if not self._db.fits(info.server_id, flavor):
                continue
            if needed and not needed <= info.capabilities:
                continue
            if customer is not None and not self._db.co_location_allowed(
                info.server_id, customer, dedicated
            ):
                continue
            free_vcpus = info.capacity_vcpus - self._db.allocated_vcpus(info.server_id)
            candidates.append((free_vcpus, str(info.server_id), info.server_id))
        # most free resources wins; server id breaks ties deterministically
        candidates.sort(key=lambda c: (-c[0], c[1]))
        return [server_id for _, _, server_id in candidates]
