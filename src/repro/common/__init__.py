"""Shared foundations: errors, identifiers, units, deterministic randomness.

Every CloudMonatt subsystem builds on this package. It deliberately has no
dependencies on any other ``repro`` package so it can be imported anywhere
without cycles.
"""

from repro.common.errors import (
    CloudMonattError,
    ConfigurationError,
    CryptoError,
    PlacementError,
    ProtocolError,
    ReplayError,
    SchedulingError,
    SignatureError,
    StateError,
    VerificationError,
)
from repro.common.identifiers import (
    CustomerId,
    IdFactory,
    RequestId,
    ServerId,
    SessionId,
    VmId,
)
from repro.common.rng import DeterministicRng, derive_seed
from repro.common.units import (
    GB,
    KB,
    MB,
    Milliseconds,
    Seconds,
    ms_to_s,
    s_to_ms,
)

__all__ = [
    "CloudMonattError",
    "ConfigurationError",
    "CryptoError",
    "CustomerId",
    "DeterministicRng",
    "GB",
    "IdFactory",
    "KB",
    "MB",
    "Milliseconds",
    "PlacementError",
    "ProtocolError",
    "ReplayError",
    "RequestId",
    "SchedulingError",
    "Seconds",
    "ServerId",
    "SessionId",
    "SignatureError",
    "StateError",
    "VerificationError",
    "VmId",
    "derive_seed",
    "ms_to_s",
    "s_to_ms",
]
