"""Deterministic randomness.

Every stochastic decision in the library flows through a
:class:`DeterministicRng` seeded at construction. Components never touch
global random state, so a whole-cloud simulation replays bit-identically
for the same seed — a requirement for regenerating the paper's figures.

Independent sub-streams are derived with :func:`derive_seed`, which hashes
(parent seed, label) so that adding a new consumer of randomness does not
perturb the draws seen by existing consumers.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a stable ``label``.

    The derivation is a SHA-256 hash truncated to 63 bits, so distinct
    labels give statistically independent streams and the mapping is
    stable across runs and platforms.
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class DeterministicRng:
    """A seeded random source with convenience helpers.

    Wraps :class:`random.Random` (sufficient for simulation jitter and
    shuffles; the crypto substrate uses its own deterministic DRBG built
    on SHA-256, not this class).
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._random = random.Random(seed)

    def child(self, label: str) -> "DeterministicRng":
        """Create an independent child stream identified by ``label``."""
        return DeterministicRng(derive_seed(self.seed, label))

    def uniform(self, low: float, high: float) -> float:
        """Draw a float uniformly from ``[low, high)``."""
        return self._random.uniform(low, high)

    def gauss(self, mean: float, stddev: float) -> float:
        """Draw from a normal distribution."""
        return self._random.gauss(mean, stddev)

    def jitter(self, base: float, fraction: float = 0.05) -> float:
        """Return ``base`` perturbed by up to ``±fraction`` relatively.

        Used by the latency models so repeated stage timings look like
        real measurements rather than constants, while remaining seeded.
        """
        return base * (1.0 + self._random.uniform(-fraction, fraction))

    def randint(self, low: int, high: int) -> int:
        """Draw an integer uniformly from ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Draw a float uniformly from ``[0, 1)``."""
        return self._random.random()

    def expovariate(self, rate: float) -> float:
        """Draw from an exponential distribution with the given rate."""
        return self._random.expovariate(rate)

    def choice(self, items: Sequence[T]) -> T:
        """Pick one element of a non-empty sequence uniformly."""
        return self._random.choice(items)

    def shuffle(self, items: list) -> None:
        """Shuffle a list in place."""
        self._random.shuffle(items)

    def bytes(self, n: int) -> bytes:
        """Return ``n`` pseudo-random bytes (NOT for crypto keys)."""
        return self._random.randbytes(n)
