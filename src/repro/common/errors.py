"""Exception hierarchy for the CloudMonatt reproduction.

All library-raised exceptions derive from :class:`CloudMonattError` so that
callers can catch the whole family with a single ``except`` clause while
tests can assert on precise subclasses.
"""

from __future__ import annotations


class CloudMonattError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(CloudMonattError):
    """A component was constructed or configured with invalid parameters."""


class StateError(CloudMonattError):
    """An operation was attempted in a state that does not permit it.

    Example: attesting a VM that has already been terminated, or resuming
    a VM that was never suspended.
    """


class CryptoError(CloudMonattError):
    """Base class for failures inside the cryptographic substrate."""


class SignatureError(CryptoError):
    """A digital signature failed to verify.

    Raised both for genuinely corrupt data and for attacker-forged
    messages; the attestation protocol treats the two identically.
    """


class ReplayError(CloudMonattError):
    """A nonce was seen twice: the message is a replay and must be dropped."""


class ProtocolError(CloudMonattError):
    """An attestation-protocol message was malformed or out of sequence."""


class NetworkError(CloudMonattError):
    """A message could not be delivered (dropped by the attacker, or the
    destination endpoint does not exist)."""


class UnknownEndpointError(NetworkError):
    """The destination endpoint is not registered on the network.

    Distinguished from transient delivery failures because retrying is
    pointless: a decommissioned server does not come back by waiting.
    The resilience layer classifies this as non-retriable.
    """


class LegTimeoutError(NetworkError):
    """A wire crossing exceeded the configured per-leg timeout.

    Deterministic: the simulated clock still advances by exactly the
    timeout budget before this raises, so same-seed runs time out at
    identical instants. Classified as transient (retriable)."""


class RecordError(ProtocolError):
    """A secure-channel *record* could not be authenticated or parsed.

    Record-layer damage (tampered ciphertext, desynchronized sequence
    state, a record for a torn-down channel) is repaired by a fresh
    handshake, so the resilience layer treats this as transient —
    unlike application-level :class:`ProtocolError`\\ s, which retrying
    cannot fix."""


class PolicyError(CloudMonattError):
    """A monitoring-policy document failed validation or could not be
    applied (unknown property, non-positive period, version conflict,
    entities the caller does not own)."""


class PlacementError(CloudMonattError):
    """No cloud server satisfies a VM's resource + security-property needs."""


class SchedulingError(CloudMonattError):
    """The hypervisor scheduler was driven into an invalid configuration."""


class VerificationError(CloudMonattError):
    """The symbolic protocol verifier found a property violation.

    Carries the violated property name and, when available, a witness
    attack trace assembled by the deduction engine.
    """

    def __init__(self, message: str, witness: object | None = None):
        super().__init__(message)
        self.witness = witness
