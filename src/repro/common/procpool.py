"""Shared fork-based process-pool plumbing.

Two subsystems farm CPU-bound work out to forked worker processes: the
keygen farm (:mod:`repro.crypto.keygen_farm`) ships pre-forked DRBG
states to a short-lived ``Pool``, and the parallel shard executor
(:mod:`repro.shard.parallel`) keeps one long-lived worker per shard
serving command batches over a pipe. Both need the same plumbing —
start-method detection, worker-count resolution, graceful serial
fallback on spawn-only platforms — so it lives here once.

Everything is built on the ``fork`` start method on purpose: forked
children inherit the parent's live state (the ``fastpath``
configuration, fully-constructed shard deployments, loaded accel
backends) by copy-on-write, so no argument pickling or re-construction
happens at spawn time. Where ``fork`` is unavailable (non-POSIX
platforms), callers degrade to their serial in-process paths — same
bytes, no processes — and may record a warning counter via the
``on_fallback`` hook.

:class:`PersistentWorker` is the long-lived variant: one forked child
running a request/reply loop over a duplex pipe. Requests are sequence-
numbered so replies can be awaited out of submission order; a dead
child surfaces as :class:`WorkerCrashError` on the next send/receive,
which callers treat as their signal to fall back to serial execution.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
from typing import Any, Callable, Optional

from repro.common.errors import CloudMonattError


class WorkerCrashError(CloudMonattError):
    """A pool worker died (or never started) mid-conversation.

    Raised on the caller's side when a send or receive on a
    :class:`PersistentWorker` pipe fails; the worker is unusable
    afterwards and the caller is expected to degrade to its serial
    path.
    """


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this host."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


def resolve_workers(requested: int, jobs: int) -> int:
    """Pool size for ``jobs`` tasks: requested, else one per CPU."""
    workers = requested if requested > 0 else (os.cpu_count() or 1)
    return max(1, min(workers, jobs))


def map_forked(
    fn: Callable[[Any], Any],
    tasks: list,
    workers: int = 0,
    chunksize: int = 1,
    on_fallback: Optional[Callable[[], None]] = None,
) -> list:
    """``pool.map`` over a fork pool, order-preserving, serial fallback.

    Results are index-aligned with ``tasks`` regardless of completion
    order (``Pool.map`` preserves input order), so parallel and serial
    executions return identical lists. When more than one worker is
    requested but ``fork`` is unavailable, ``on_fallback`` is invoked
    once (callers bump a warning counter there) and the tasks run
    serially in-process.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    workers = resolve_workers(workers, len(tasks))
    if workers > 1 and not fork_available():
        if on_fallback is not None:
            on_fallback()
        workers = 1
    if workers <= 1:
        return [fn(task) for task in tasks]
    context = multiprocessing.get_context("fork")
    with context.Pool(processes=workers) as pool:
        return pool.map(fn, tasks, chunksize=chunksize)


def _worker_loop(conn, handler: Callable[[Any], Any]) -> None:
    """Child body: serve ``(seq, payload)`` requests until shutdown.

    A ``None`` message (or EOF) is the shutdown sentinel. Exceptions
    escaping the handler kill the loop — the parent sees the broken
    pipe as :class:`WorkerCrashError`, which is exactly the crash
    signal the fallback paths key on, so handlers that want to survive
    errors must catch them and encode failure in their reply.
    """
    if hasattr(gc, "freeze"):
        # protect the inherited copy-on-write pages from the collector
        gc.freeze()
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            if message is None:
                break
            seq, payload = message
            conn.send((seq, handler(payload)))
    finally:
        conn.close()


class PersistentWorker:
    """One long-lived forked worker served over a duplex pipe.

    The handler callable is inherited by the child at fork time (no
    pickling), so it may close over arbitrarily heavy parent state —
    the shard executor hands it a whole deployment. Requests are
    sequence-numbered; :meth:`result` buffers out-of-order replies so
    several outstanding requests can be awaited in any order.
    """

    def __init__(self, handler: Callable[[Any], Any], name: str = "procpool"):
        if not fork_available():
            raise WorkerCrashError("fork start method unavailable")
        context = multiprocessing.get_context("fork")
        parent_conn, child_conn = context.Pipe(duplex=True)
        self._conn = parent_conn
        self._process = context.Process(
            target=_worker_loop,
            args=(child_conn, handler),
            name=name,
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._next_seq = 0
        self._replies: dict[int, Any] = {}
        self._broken = False
        self._closed = False

    @property
    def alive(self) -> bool:
        """Whether the worker can still serve requests."""
        return (
            not self._closed
            and not self._broken
            and self._process.is_alive()
        )

    def submit(self, payload: Any) -> int:
        """Send one request; returns its sequence number."""
        if self._closed or self._broken:
            raise WorkerCrashError("worker is closed")
        seq = self._next_seq
        self._next_seq += 1
        try:
            self._conn.send((seq, payload))
        except (BrokenPipeError, OSError) as exc:
            self._broken = True
            raise WorkerCrashError(f"worker pipe broken: {exc}") from exc
        return seq

    def result(self, seq: int) -> Any:
        """Await the reply for one sequence number (any await order)."""
        if seq in self._replies:
            return self._replies.pop(seq)
        if self._closed or self._broken:
            raise WorkerCrashError("worker is closed")
        while seq not in self._replies:
            try:
                got_seq, reply = self._conn.recv()
            except (EOFError, OSError) as exc:
                self._broken = True
                raise WorkerCrashError(
                    f"worker died awaiting reply {seq}: {exc or 'EOF'}"
                ) from exc
            self._replies[got_seq] = reply
        return self._replies.pop(seq)

    def call(self, payload: Any) -> Any:
        """Round-trip one request synchronously."""
        return self.result(self.submit(payload))

    def close(self, timeout: float = 5.0) -> None:
        """Shut the worker down (sentinel, then terminate if needed)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.send(None)
        except Exception:
            pass
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout)
        try:
            self._conn.close()
        except Exception:
            pass
