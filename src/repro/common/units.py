"""Units used throughout the simulation.

Simulated time is kept in **milliseconds** as ``float`` — the Xen credit
scheduler accounts in 10 ms ticks and 30 ms timeslices, and the covert
channel is measured at 1 ms granularity, so milliseconds are the natural
resolution. Memory and disk sizes are kept in **megabytes** as ``int``.
"""

from __future__ import annotations

Milliseconds = float
Seconds = float

KB: int = 1
"""One kilobyte expressed in the library's size unit conventions (KB)."""

MB: int = 1024 * KB
"""One megabyte in KB."""

GB: int = 1024 * MB
"""One gigabyte in KB."""


def s_to_ms(seconds: Seconds) -> Milliseconds:
    """Convert seconds to milliseconds."""
    return seconds * 1000.0


def ms_to_s(millis: Milliseconds) -> Seconds:
    """Convert milliseconds to seconds."""
    return millis / 1000.0
