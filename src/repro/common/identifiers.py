"""Typed identifiers for the entities that appear in attestation messages.

The paper's protocol (Fig. 3) passes a VM identifier ``Vid`` and a cloud
server identifier ``I`` through every message. Using distinct ``str``
subclasses rather than bare strings lets the type checker (and reviewers)
catch a ``VmId``/``ServerId`` mix-up, while the values still serialize and
hash exactly like strings inside quotes and signatures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


class VmId(str):
    """Identifier of a virtual machine (``Vid`` in the paper)."""

    __slots__ = ()


class ServerId(str):
    """Identifier of a cloud server (``I`` in the paper)."""

    __slots__ = ()


class CustomerId(str):
    """Identifier of a cloud customer."""

    __slots__ = ()


class RequestId(str):
    """Identifier of one attestation request (for tracing and auditing)."""

    __slots__ = ()


class SessionId(str):
    """Identifier of one secure-channel session."""

    __slots__ = ()


@dataclass
class IdFactory:
    """Deterministic factory for fresh identifiers.

    Identifiers are sequential per prefix (``vm-0001``, ``server-0003``)
    which keeps simulation runs reproducible and logs readable. A factory
    instance is owned by the top-level :class:`~repro.cloud.CloudMonatt`
    system and threaded to whoever mints ids.
    """

    _counters: dict[str, itertools.count] = field(default_factory=dict)

    def _next(self, prefix: str) -> str:
        counter = self._counters.setdefault(prefix, itertools.count(1))
        return f"{prefix}-{next(counter):04d}"

    def vm_id(self) -> VmId:
        """Mint a fresh VM identifier."""
        return VmId(self._next("vm"))

    def server_id(self) -> ServerId:
        """Mint a fresh cloud-server identifier."""
        return ServerId(self._next("server"))

    def customer_id(self) -> CustomerId:
        """Mint a fresh customer identifier."""
        return CustomerId(self._next("customer"))

    def request_id(self) -> RequestId:
        """Mint a fresh attestation-request identifier."""
        return RequestId(self._next("request"))

    def session_id(self) -> SessionId:
        """Mint a fresh secure-channel session identifier."""
        return SessionId(self._next("session"))
