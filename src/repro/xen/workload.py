"""Workload models that drive vCPUs.

A workload is a burst generator: each time one of its vCPUs is about to
(re)enter the runnable state, the scheduler asks the workload for the next
:class:`Burst` — how many milliseconds of CPU the vCPU wants before it
blocks, what kind of block follows (timed sleep, wait-for-IPI, or
termination), and which sibling vCPUs to IPI at burst end.

The standard library of workloads here models the paper's benchmark
programs; the attack workloads live in :mod:`repro.attacks` and use the
same interface — attacks are just adversarial burst generators.
"""

from __future__ import annotations

import abc
import enum
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.common.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.xen.hypervisor import Hypervisor
    from repro.xen.vcpu import VCpu

RUN_FOREVER = math.inf
"""Sentinel burst length: run until preempted, never block voluntarily."""


class BlockKind(enum.Enum):
    """What a vCPU does when its burst's CPU demand is satisfied."""

    SLEEP = "sleep"  # block for a fixed duration, then timer-wake
    WAIT_IPI = "wait_ipi"  # block until another vCPU sends an IPI
    TERMINATE = "terminate"  # the vCPU is done forever


@dataclass(frozen=True)
class BlockSpec:
    """Blocking behaviour at the end of a burst."""

    kind: BlockKind
    duration_ms: float = 0.0

    @staticmethod
    def sleep(duration_ms: float) -> "BlockSpec":
        """Block for ``duration_ms`` then wake via timer."""
        return BlockSpec(BlockKind.SLEEP, duration_ms)

    @staticmethod
    def wait_ipi() -> "BlockSpec":
        """Block until an IPI arrives from a sibling vCPU."""
        return BlockSpec(BlockKind.WAIT_IPI)

    @staticmethod
    def terminate() -> "BlockSpec":
        """Finish: the vCPU never runs again."""
        return BlockSpec(BlockKind.TERMINATE)


@dataclass(frozen=True)
class Burst:
    """One CPU burst: run ``cpu_ms``, optionally IPI siblings, then block."""

    cpu_ms: float
    block: BlockSpec
    #: indices of sibling vCPUs (same domain) to IPI when the burst ends
    ipi_targets: tuple[int, ...] = field(default=())
    #: atomic (bus-locking) memory operations issued per millisecond
    #: while this burst runs. Locked operations stall every other core's
    #: memory accesses — the contention medium of bus covert channels
    #: (Wu et al., cited as [44] in the paper).
    bus_lock_rate: float = 0.0


class Workload(abc.ABC):
    """Base class for burst generators.

    ``bind`` is called once per vCPU when the domain starts, giving the
    workload access to the hypervisor (for the clock and IPIs — used by
    attack workloads that time themselves against scheduler ticks).
    """

    def __init__(self):
        self.hypervisor: Optional["Hypervisor"] = None

    def bind(self, hypervisor: "Hypervisor") -> None:
        """Attach this workload to the hypervisor it runs under."""
        self.hypervisor = hypervisor

    @abc.abstractmethod
    def next_burst(self, vcpu: "VCpu") -> Burst:
        """Produce the next burst for ``vcpu``. Called at each wake-up."""

    def initial_delay_ms(self, vcpu: "VCpu") -> float:
        """Delay before the vCPU first becomes runnable (default: none)."""
        return 0.0

    def on_scheduled(self, vcpu: "VCpu", now: float) -> None:
        """Hook called when ``vcpu`` actually gets the CPU.

        The default does nothing. A workload may adjust
        ``vcpu.burst_remaining`` here — this models code that reads the
        clock while running, which is how the availability attack times
        its bursts against the scheduler's tick grid even when its
        dispatch was delayed.
        """


class CpuBoundWorkload(Workload):
    """Runs forever, never blocking voluntarily.

    Models a compute-saturated service (the paper's Database / Web / App
    cloud benchmarks during their busy phases). The scheduler preempts it
    at timeslice boundaries; it immediately wants the CPU back.
    """

    def next_burst(self, vcpu: "VCpu") -> Burst:
        return Burst(cpu_ms=RUN_FOREVER, block=BlockSpec.sleep(0.0))


class FiniteCpuBoundWorkload(Workload):
    """A CPU-bound program with a total CPU demand, then termination.

    Models the victim's SPEC-like programs (bzip2 / hmmer / astar): the
    program needs ``total_cpu_ms`` of CPU; its wall-clock completion time
    divided by ``total_cpu_ms`` is the relative execution time plotted in
    the paper's Fig. 6.
    """

    def __init__(self, total_cpu_ms: float):
        super().__init__()
        if total_cpu_ms <= 0:
            raise ValueError("total_cpu_ms must be positive")
        self.total_cpu_ms = total_cpu_ms
        self._consumed = 0.0

    def next_burst(self, vcpu: "VCpu") -> Burst:
        remaining = self.total_cpu_ms - vcpu.cumulative_runtime
        if remaining <= 0:
            return Burst(cpu_ms=0.0, block=BlockSpec.terminate())
        return Burst(cpu_ms=remaining, block=BlockSpec.terminate())


class IoBoundWorkload(Workload):
    """Short CPU bursts separated by long blocking waits.

    Models I/O-heavy services (the paper's File / Stream / Mail
    benchmarks): each request costs ``burst_ms`` of CPU then blocks for
    ``wait_ms`` on I/O. With small duty cycles it leaves the CPU almost
    entirely to co-residents, which is why these attacker workloads cause
    no victim slowdown in Fig. 6.
    """

    def __init__(
        self,
        rng: DeterministicRng,
        burst_ms: float = 1.0,
        wait_ms: float = 9.0,
        jitter: float = 0.3,
    ):
        super().__init__()
        if burst_ms <= 0 or wait_ms <= 0:
            raise ValueError("burst and wait durations must be positive")
        self._rng = rng
        self._burst_ms = burst_ms
        self._wait_ms = wait_ms
        self._jitter = jitter

    def next_burst(self, vcpu: "VCpu") -> Burst:
        burst = self._rng.jitter(self._burst_ms, self._jitter)
        wait = self._rng.jitter(self._wait_ms, self._jitter)
        return Burst(cpu_ms=burst, block=BlockSpec.sleep(wait))


class PhasedWorkload(Workload):
    """Alternates CPU phases and I/O phases with a target duty cycle.

    The general model behind the cloud-benchmark table in
    :mod:`repro.workloads.cloud_benchmarks`: ``cpu_fraction`` of wall time
    is CPU demand, issued in ``phase_ms`` chunks.
    """

    def __init__(
        self,
        rng: DeterministicRng,
        cpu_fraction: float,
        phase_ms: float = 10.0,
        jitter: float = 0.2,
    ):
        super().__init__()
        if not 0.0 < cpu_fraction <= 1.0:
            raise ValueError("cpu_fraction must be in (0, 1]")
        if phase_ms <= 0:
            raise ValueError("phase_ms must be positive")
        self._rng = rng
        self._cpu_fraction = cpu_fraction
        self._phase_ms = phase_ms
        self._jitter = jitter

    def next_burst(self, vcpu: "VCpu") -> Burst:
        cpu = self._rng.jitter(self._phase_ms * self._cpu_fraction, self._jitter)
        if self._cpu_fraction >= 1.0:
            return Burst(cpu_ms=RUN_FOREVER, block=BlockSpec.sleep(0.0))
        idle = self._rng.jitter(self._phase_ms * (1.0 - self._cpu_fraction), self._jitter)
        return Burst(cpu_ms=cpu, block=BlockSpec.sleep(idle))


class MemoryStreamingWorkload(Workload):
    """CPU-bound work with a steady rate of atomic memory operations.

    Models a benign memory-intensive service (e.g. a streaming analytics
    job using lock-protected shared structures): its bus-lock rate is
    constant, so its lock-rate distribution is unimodal — distinguishable
    from the alternating pattern a bus covert channel produces.
    """

    def __init__(self, lock_rate_per_ms: float = 8.0, slice_ms: float = 10.0):
        super().__init__()
        if lock_rate_per_ms < 0:
            raise ValueError("lock rate cannot be negative")
        if slice_ms <= 0:
            raise ValueError("slice duration must be positive")
        self.lock_rate_per_ms = lock_rate_per_ms
        self._slice_ms = slice_ms

    def next_burst(self, vcpu: "VCpu") -> Burst:
        return Burst(
            cpu_ms=self._slice_ms,
            block=BlockSpec.sleep(0.01),
            bus_lock_rate=self.lock_rate_per_ms,
        )


class IdleWorkload(Workload):
    """Never wants the CPU: wakes rarely, runs a negligible sliver.

    Models an idle co-resident VM (the paper's "Idle" attacker column).
    """

    def __init__(self, heartbeat_ms: float = 1000.0):
        super().__init__()
        self._heartbeat_ms = heartbeat_ms

    def next_burst(self, vcpu: "VCpu") -> Burst:
        return Burst(cpu_ms=0.01, block=BlockSpec.sleep(self._heartbeat_ms))
