"""Virtual CPU model.

A vCPU is the schedulable unit: it belongs to a domain, is pinned to one
physical CPU (the paper's experiments co-locate attacker and victim on
the same CPU, so no load balancing is modelled), and carries the credit
scheduler's per-vCPU state: credits, boost flag, and run accounting.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.xen.domain import Domain
    from repro.xen.workload import Burst


class VCpuState(enum.Enum):
    """Lifecycle of a vCPU within the scheduler."""

    BLOCKED = "blocked"
    RUNNABLE = "runnable"
    RUNNING = "running"
    DONE = "done"


class VCpu:
    """One virtual CPU pinned to a physical CPU."""

    def __init__(self, domain: "Domain", index: int, pcpu: int):
        self.domain = domain
        self.index = index
        self.pcpu = pcpu
        self.state = VCpuState.BLOCKED
        self.credits: float = 0.0
        self.boosted = False
        #: CPU milliseconds remaining in the current burst
        self.burst_remaining: float = 0.0
        #: the burst being executed (None while blocked with no work queued)
        self.current_burst: Optional["Burst"] = None
        #: sim time at which the current run started (None if not running)
        self.run_start: Optional[float] = None
        #: total CPU time consumed over the vCPU's life, in ms
        self.cumulative_runtime: float = 0.0
        #: sim time at which the vCPU last became RUNNABLE (None if not
        #: currently waiting for the CPU)
        self.wait_start: Optional[float] = None
        #: total time spent runnable-but-not-running ("steal time") —
        #: the denied-demand signal availability monitoring needs to
        #: distinguish a starved VM from one that simply isn't asking
        self.cumulative_wait: float = 0.0
        #: True while blocked waiting for an IPI (vs. a timer)
        self.waiting_for_ipi = False
        #: incremented on every block; stale timer wakes carry an old value
        self.sleep_generation = 0
        #: True while forcibly paused mid-burst (e.g. an intercepting
        #: memory scan); the wake path resumes the burst instead of
        #: fetching a new one
        self.paused = False

    def runtime_until(self, now: float) -> float:
        """Total CPU time consumed by ``now``, including the current run."""
        in_progress = (now - self.run_start) if self.run_start is not None else 0.0
        return self.cumulative_runtime + in_progress

    def wait_until(self, now: float) -> float:
        """Total steal time by ``now``, including the current wait."""
        in_progress = (now - self.wait_start) if self.wait_start is not None else 0.0
        return self.cumulative_wait + in_progress

    @property
    def name(self) -> str:
        """Readable identifier, e.g. ``vm-0002.vcpu1``."""
        return f"{self.domain.vid}.vcpu{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<VCpu {self.name} {self.state.value} credits={self.credits:.0f}>"
