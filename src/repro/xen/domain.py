"""Domain (virtual machine) model for the hypervisor substrate.

A domain groups vCPUs under one scheduling weight and carries the
completion bookkeeping the availability experiments need: when a finite
workload terminates, :attr:`Domain.finished_at` records the wall-clock
completion time, from which slowdown relative to solo execution follows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.common.identifiers import VmId
from repro.xen.vcpu import VCpu, VCpuState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.xen.workload import Workload

DEFAULT_WEIGHT = 256
"""Xen's default credit-scheduler weight; all domains are equal unless set."""


class Domain:
    """A virtual machine as seen by the hypervisor scheduler."""

    def __init__(
        self,
        vid: VmId,
        workload: "Workload",
        num_vcpus: int = 1,
        pcpus: Optional[list[int]] = None,
        weight: int = DEFAULT_WEIGHT,
    ):
        if num_vcpus < 1:
            raise ValueError("a domain needs at least one vCPU")
        if weight <= 0:
            raise ValueError("weight must be positive")
        if pcpus is None:
            pcpus = [0] * num_vcpus
        if len(pcpus) != num_vcpus:
            raise ValueError("one pCPU pin per vCPU required")
        self.vid = vid
        self.workload = workload
        self.weight = weight
        self.vcpus = [VCpu(self, i, pcpus[i]) for i in range(num_vcpus)]
        #: sim time when a finite workload completed (None while running)
        self.finished_at: Optional[float] = None
        #: sim time when the domain was started by the hypervisor
        self.started_at: Optional[float] = None

    @property
    def cumulative_runtime(self) -> float:
        """Total CPU ms consumed across all vCPUs."""
        return sum(vcpu.cumulative_runtime for vcpu in self.vcpus)

    @property
    def live(self) -> bool:
        """True while any vCPU has not terminated."""
        return any(vcpu.state is not VCpuState.DONE for vcpu in self.vcpus)

    def relative_cpu_usage(self, now: float) -> float:
        """CPU time used divided by wall time since start.

        This is exactly the measurement the VMM Profile Tool reports for
        the availability property (paper §4.5.2-4.5.3). A solo CPU-bound
        VM approaches 1.0; a starved victim is close to 0.
        """
        if self.started_at is None or now <= self.started_at:
            return 0.0
        runtime = sum(vcpu.runtime_until(now) for vcpu in self.vcpus)
        return runtime / (now - self.started_at)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Domain {self.vid} vcpus={len(self.vcpus)} weight={self.weight}>"
