"""Hypervisor facade.

Bundles the event engine and the credit scheduler into the object the
rest of the system talks to: create domains, deliver IPIs, attach monitor
hooks, advance time. One :class:`Hypervisor` models one cloud server's
virtualization layer; the cloud-server node object in
:mod:`repro.server.node` owns one of these.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import SchedulingError
from repro.common.identifiers import VmId
from repro.sim.engine import Engine
from repro.xen.domain import DEFAULT_WEIGHT, Domain
from repro.xen.scheduler import CreditScheduler
from repro.xen.workload import Workload


class Hypervisor:
    """A Type-I hypervisor with a credit scheduler (paper Fig. 2).

    The hypervisor hosts guest domains; the host VM (Dom0) entities —
    attestation client, monitor kernel — live at the cloud-server layer
    and reach in through the monitor hooks exposed here.
    """

    def __init__(
        self,
        engine: Optional[Engine] = None,
        num_pcpus: int = 1,
        precise_accounting: bool = False,
        boost_enabled: bool = True,
        telemetry=None,
    ):
        self.engine = engine if engine is not None else Engine()
        self.scheduler = CreditScheduler(
            self.engine,
            num_pcpus=num_pcpus,
            precise_accounting=precise_accounting,
            boost_enabled=boost_enabled,
            telemetry=telemetry,
        )
        self.domains: dict[VmId, Domain] = {}

    @property
    def now(self) -> float:
        """Current simulation time in ms."""
        return self.engine.now

    @property
    def num_pcpus(self) -> int:
        """Number of physical CPUs on this server."""
        return len(self.scheduler.pcpus)

    def create_domain(
        self,
        vid: VmId,
        workload: Workload,
        num_vcpus: int = 1,
        pcpus: Optional[list[int]] = None,
        weight: int = DEFAULT_WEIGHT,
    ) -> Domain:
        """Create and start a guest domain running ``workload``."""
        if vid in self.domains:
            raise SchedulingError(f"domain {vid} already exists")
        domain = Domain(vid, workload, num_vcpus=num_vcpus, pcpus=pcpus, weight=weight)
        workload.bind(self)
        self.domains[vid] = domain
        self.scheduler.add_domain(domain)
        return domain

    def destroy_domain(self, vid: VmId) -> Domain:
        """Stop and remove a guest domain (termination or migration-out)."""
        if vid not in self.domains:
            raise SchedulingError(f"no such domain {vid}")
        domain = self.domains.pop(vid)
        self.scheduler.remove_domain(domain)
        return domain

    def send_ipi(self, vid: VmId, vcpu_index: int) -> None:
        """Deliver an inter-processor interrupt to a domain's vCPU.

        Waking a blocked vCPU through this path exercises the boost
        mechanism exactly as the paper's attacks do.
        """
        domain = self.domains.get(vid)
        if domain is None:
            raise SchedulingError(f"IPI to unknown domain {vid}")
        if not 0 <= vcpu_index < len(domain.vcpus):
            raise SchedulingError(f"IPI to unknown vCPU {vcpu_index} of {vid}")
        self.scheduler.wake(domain.vcpus[vcpu_index], via_ipi=True)

    def pause_domain(self, vid: VmId, duration_ms: float) -> None:
        """Hold all of a domain's vCPUs off the CPU for ``duration_ms``.

        Used by intercepting measurement collection (a consistent-state
        memory scan); the vCPUs resume their interrupted bursts after.
        """
        domain = self.domains.get(vid)
        if domain is None:
            raise SchedulingError(f"no such domain {vid}")
        for vcpu in domain.vcpus:
            self.scheduler.pause(vcpu, duration_ms)

    def add_monitor(self, listener: object) -> None:
        """Attach a monitor hook (see :class:`CreditScheduler` docs)."""
        self.scheduler.add_listener(listener)

    def remove_monitor(self, listener: object) -> None:
        """Detach a previously attached monitor hook."""
        self.scheduler.remove_listener(listener)

    def run_for(self, duration_ms: float) -> None:
        """Advance simulation time by ``duration_ms``."""
        self.engine.run_until(self.engine.now + duration_ms)

    def run_until_domain_finishes(
        self, vid: VmId, max_ms: float = 10_000_000.0
    ) -> float:
        """Run until the domain's workload terminates; return completion time.

        Used by the availability experiments: the victim's finite program
        finishes at some wall-clock time, and slowdown is that time
        divided by the program's CPU demand.
        """
        domain = self.domains.get(vid)
        if domain is None:
            raise SchedulingError(f"no such domain {vid}")
        step = 1000.0
        deadline = self.engine.now + max_ms
        while domain.finished_at is None:
            if self.engine.now >= deadline:
                raise SchedulingError(
                    f"domain {vid} did not finish within {max_ms} ms"
                )
            self.engine.run_until(min(self.engine.now + step, deadline))
        return domain.finished_at
