"""The Xen credit scheduler, as a discrete-event model.

Faithfully models the mechanisms the paper's two attacks exploit
(§4.4-4.5, citing the Xen credit scheduler [5] and the scheduler
vulnerabilities of Zhou et al. [48]):

- **Credits and priorities.** Every vCPU holds a credit balance. Every
  ``TICK_MS`` (10 ms) the vCPU *running at the tick instant* is debited
  ``CREDITS_PER_TICK`` (100). Every ``ACCOUNTING_PERIOD_MS`` (30 ms) the
  total debited capacity is redistributed to live domains in proportion
  to their weights. Priority is UNDER while credits are non-negative,
  OVER otherwise.
- **Boost.** A vCPU that wakes (timer or IPI) while UNDER is given BOOST
  priority, preempting any lower-priority vCPU immediately. Boost is
  cleared at the first tick that catches the vCPU running.
- **Timeslice.** A running vCPU is rotated behind equal-priority peers
  after ``TIMESLICE_MS`` (30 ms) — this is why a benign CPU-bound VM's
  run-interval histogram peaks at 30 ms (paper Fig. 5, bottom).

The two vulnerabilities follow directly: credit debiting is *sampled*,
so a vCPU that sleeps across tick instants is never charged and stays
UNDER forever; and the boost path lets such a vCPU seize the CPU the
moment it wakes. The availability attack combines both; the covert
channel uses boost wake-ups to place precisely-sized run intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Optional

from repro.common.errors import SchedulingError
from repro.sim.engine import Engine, EventHandle
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.xen.domain import Domain
from repro.xen.vcpu import VCpu, VCpuState
from repro.xen.workload import RUN_FOREVER, BlockKind, Burst

TICK_MS = 10.0
TIMESLICE_MS = 30.0
ACCOUNTING_PERIOD_MS = 30.0
CREDITS_PER_TICK = 100.0
CREDIT_CAP = 300.0


class Priority(IntEnum):
    """Scheduler priorities; lower value runs first."""

    BOOST = 0
    UNDER = 1
    OVER = 2


def vcpu_priority(vcpu: VCpu) -> Priority:
    """Effective priority from boost flag and credit balance."""
    if vcpu.boosted:
        return Priority.BOOST
    return Priority.UNDER if vcpu.credits >= 0 else Priority.OVER


@dataclass
class _PCpu:
    """Per-physical-CPU scheduler state."""

    index: int
    runqueue: list[VCpu] = field(default_factory=list)
    running: Optional[VCpu] = None
    burst_end_handle: Optional[EventHandle] = None
    timeslice_handle: Optional[EventHandle] = None
    #: the vCPU taken off the core most recently (for switch events)
    last_descheduled: Optional[VCpu] = None


class CreditScheduler:
    """Credit scheduler over ``num_pcpus`` physical CPUs.

    Listeners (monitor hooks) may implement any of::

        on_run_interval(vcpu, start_ms, end_ms)  # continuous occupancy
        on_switch(time_ms, pcpu_index, prev_vcpu, next_vcpu)
        on_wake(time_ms, vcpu, boosted)
        on_tick(time_ms, pcpu_index, running_vcpu)

    The run-interval hook is what the Trust Evidence Register monitors
    consume for covert-channel detection; the VMM Profile Tool derives
    CPU usage from the same accounting the scheduler keeps per vCPU.
    """

    def __init__(
        self,
        engine: Engine,
        num_pcpus: int = 1,
        precise_accounting: bool = False,
        boost_enabled: bool = True,
        telemetry: Optional[Telemetry] = None,
    ):
        if num_pcpus < 1:
            raise SchedulingError("need at least one physical CPU")
        self.engine = engine
        self.telemetry = telemetry or NULL_TELEMETRY
        self.pcpus = [_PCpu(i) for i in range(num_pcpus)]
        self.domains: list[Domain] = []
        self.listeners: list[object] = []
        self._started = False
        self._tick_epoch = 0.0
        #: defense ablation — charge credits for *actual* run time at
        #: deschedule instead of sampling whoever holds the core at tick
        #: instants. Removes the tick-evasion hole the availability
        #: attack exploits (the fix later Xen schedulers adopted).
        self.precise_accounting = precise_accounting
        #: defense ablation — disable the wake-up BOOST priority. Removes
        #: the instant-preemption lever of both paper attacks, at the
        #: cost of I/O latency (the trade-off boost exists to make).
        self.boost_enabled = boost_enabled

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    def add_listener(self, listener: object) -> None:
        """Register a monitor hook object (see class docstring)."""
        self.listeners.append(listener)

    def remove_listener(self, listener: object) -> None:
        """Unregister a previously added listener."""
        self.listeners.remove(listener)

    def add_domain(self, domain: Domain) -> None:
        """Register a domain and make its vCPUs runnable.

        Each vCPU may start after a workload-defined initial delay, which
        attack workloads use to phase themselves against the tick clock.
        """
        for vcpu in domain.vcpus:
            if not 0 <= vcpu.pcpu < len(self.pcpus):
                raise SchedulingError(
                    f"vCPU {vcpu.name} pinned to nonexistent pCPU {vcpu.pcpu}"
                )
        self.domains.append(domain)
        domain.started_at = self.engine.now
        self._ensure_started()
        for vcpu in domain.vcpus:
            delay = domain.workload.initial_delay_ms(vcpu)
            self.engine.schedule(delay, self._vcpu_ready, vcpu)

    def remove_domain(self, domain: Domain) -> None:
        """Tear a domain out of the scheduler (VM termination/migration).

        Running or queued vCPUs are stopped immediately.
        """
        if domain not in self.domains:
            raise SchedulingError(f"domain {domain.vid} not scheduled here")
        for vcpu in domain.vcpus:
            pcpu = self.pcpus[vcpu.pcpu]
            if pcpu.running is vcpu:
                self._deschedule(pcpu)
                vcpu.state = VCpuState.DONE
                self._dispatch(pcpu)
            elif vcpu in pcpu.runqueue:
                pcpu.runqueue.remove(vcpu)
                vcpu.wait_start = None
                vcpu.state = VCpuState.DONE
            else:
                vcpu.state = VCpuState.DONE
        self.domains.remove(domain)

    # ------------------------------------------------------------------
    # periodic machinery: ticks and accounting
    # ------------------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._started:
            return
        self._started = True
        self._tick_epoch = self.engine.now
        for pcpu in self.pcpus:
            self.engine.schedule(TICK_MS, self._on_tick, pcpu)
        self.engine.schedule(ACCOUNTING_PERIOD_MS, self._on_accounting)

    def _on_tick(self, pcpu: _PCpu) -> None:
        """Debit the vCPU caught running at the tick; clear its boost.

        Under precise accounting the debit happens per-run-interval in
        :meth:`_deschedule` instead, and the tick only clears boost.
        """
        vcpu = pcpu.running
        if vcpu is not None:
            if not self.precise_accounting:
                vcpu.credits = max(vcpu.credits - CREDITS_PER_TICK, -CREDIT_CAP)
            vcpu.boosted = False
        self._emit("on_tick", self.engine.now, pcpu.index, vcpu)
        self.engine.schedule(TICK_MS, self._on_tick, pcpu)
        # NOTE: the tick does not trigger a reschedule. As in Xen, credit
        # changes take effect at the next scheduling point (timeslice
        # expiry, block, or wake-up); only boost wake-ups preempt. This is
        # why a benign CPU-bound VM's run intervals sit at the full 30 ms
        # timeslice (paper Fig. 5, bottom).

    def _on_accounting(self) -> None:
        """Redistribute credits to live domains in proportion to weight."""
        live = [d for d in self.domains if d.live]
        total_weight = sum(d.weight for d in live)
        if total_weight > 0:
            period_credits = (
                CREDITS_PER_TICK * (ACCOUNTING_PERIOD_MS / TICK_MS) * len(self.pcpus)
            )
            for domain in live:
                live_vcpus = [v for v in domain.vcpus if v.state is not VCpuState.DONE]
                share = period_credits * domain.weight / total_weight / len(live_vcpus)
                for vcpu in live_vcpus:
                    vcpu.credits = min(vcpu.credits + share, CREDIT_CAP)
        self.engine.schedule(ACCOUNTING_PERIOD_MS, self._on_accounting)

    # ------------------------------------------------------------------
    # vCPU state transitions
    # ------------------------------------------------------------------

    def _vcpu_ready(self, vcpu: VCpu) -> None:
        """First activation of a vCPU: fetch work and enter the run queue."""
        if vcpu.state is VCpuState.DONE:
            return
        self._fetch_burst(vcpu)

    def _timer_wake(self, vcpu: VCpu, generation: int) -> None:
        """Timer expiry for a sleep. Ignores stale timers: if the vCPU was
        woken early (e.g. by an IPI) and has since blocked again, the old
        timer must not cut the new sleep short."""
        if vcpu.sleep_generation != generation:
            return
        self.wake(vcpu)

    def wake(self, vcpu: VCpu, *, via_ipi: bool = False) -> None:
        """Wake a blocked vCPU (timer expiry or IPI delivery).

        Implements the boost path: waking while UNDER grants BOOST
        priority and triggers an immediate preemption check. IPIs to
        vCPUs that are not blocked are ignored (as in hardware, the
        interrupt is absorbed by a running vCPU).
        """
        if vcpu.state is not VCpuState.BLOCKED:
            return
        if via_ipi and not vcpu.waiting_for_ipi:
            # a vCPU in a timed sleep absorbs IPIs: its guest handles the
            # interrupt at the pending timer wake, not before
            return
        vcpu.waiting_for_ipi = False
        boosted = self.boost_enabled and vcpu.credits >= 0
        vcpu.boosted = boosted
        if boosted and self.telemetry.enabled:
            self.telemetry.counter("xen.boost_promotions").inc()
        self._emit("on_wake", self.engine.now, vcpu, boosted)
        if vcpu.paused:
            # resuming a forcibly paused vCPU: continue the interrupted
            # burst rather than asking the workload for a new one
            vcpu.paused = False
            vcpu.state = VCpuState.RUNNABLE
            pcpu = self.pcpus[vcpu.pcpu]
            self._enqueue(pcpu, vcpu)
            self._dispatch(pcpu)
            return
        self._fetch_burst(vcpu)

    def _fetch_burst(self, vcpu: VCpu) -> None:
        """Pull the next burst from the workload and act on it."""
        burst = vcpu.domain.workload.next_burst(vcpu)
        vcpu.current_burst = burst
        vcpu.burst_remaining = burst.cpu_ms
        if burst.cpu_ms <= 0:
            self._complete_burst(vcpu, burst)
            return
        vcpu.state = VCpuState.RUNNABLE
        pcpu = self.pcpus[vcpu.pcpu]
        self._enqueue(pcpu, vcpu)
        self._dispatch(pcpu)

    def _complete_burst(self, vcpu: VCpu, burst: Burst) -> None:
        """Burst CPU demand satisfied: deliver IPIs, then block/terminate."""
        for target_index in burst.ipi_targets:
            if 0 <= target_index < len(vcpu.domain.vcpus):
                target = vcpu.domain.vcpus[target_index]
                if target is not vcpu:
                    self.wake(target, via_ipi=True)
        block = burst.block
        if block.kind is BlockKind.TERMINATE:
            vcpu.state = VCpuState.DONE
            if not vcpu.domain.live and vcpu.domain.finished_at is None:
                vcpu.domain.finished_at = self.engine.now
        elif block.kind is BlockKind.SLEEP:
            if burst.cpu_ms <= 0 and block.duration_ms <= 0:
                raise SchedulingError(
                    f"workload for {vcpu.name} produced a zero-length spin"
                )
            vcpu.state = VCpuState.BLOCKED
            vcpu.sleep_generation += 1
            self.engine.schedule(
                max(block.duration_ms, 0.0),
                self._timer_wake,
                vcpu,
                vcpu.sleep_generation,
            )
        elif block.kind is BlockKind.WAIT_IPI:
            vcpu.state = VCpuState.BLOCKED
            vcpu.sleep_generation += 1
            vcpu.waiting_for_ipi = True
        else:  # pragma: no cover - enum is exhaustive
            raise SchedulingError(f"unknown block kind {block.kind}")

    def pause(self, vcpu: VCpu, duration_ms: float) -> None:
        """Forcibly hold a vCPU off the CPU for ``duration_ms``.

        Models intercepting measurement collection (e.g. a VMI memory
        scan that pauses the guest for a consistent snapshot, as some
        introspection tools must). Running and runnable vCPUs are
        blocked mid-burst and resume where they left off; vCPUs already
        blocked are left alone (their own wake-ups are unaffected —
        adequate for the short scan pauses modelled here).
        """
        if duration_ms <= 0:
            raise SchedulingError("pause duration must be positive")
        if vcpu.state is VCpuState.RUNNING:
            pcpu = self.pcpus[vcpu.pcpu]
            self._deschedule(pcpu)
            self._block_for_pause(vcpu, duration_ms)
            self._dispatch(pcpu)
        elif vcpu.state is VCpuState.RUNNABLE:
            pcpu = self.pcpus[vcpu.pcpu]
            if vcpu in pcpu.runqueue:
                pcpu.runqueue.remove(vcpu)
            self._block_for_pause(vcpu, duration_ms)

    def _block_for_pause(self, vcpu: VCpu, duration_ms: float) -> None:
        if vcpu.wait_start is not None:
            vcpu.cumulative_wait += self.engine.now - vcpu.wait_start
            vcpu.wait_start = None
        vcpu.state = VCpuState.BLOCKED
        vcpu.paused = True
        vcpu.sleep_generation += 1
        self.engine.schedule(
            duration_ms, self._timer_wake, vcpu, vcpu.sleep_generation
        )

    # ------------------------------------------------------------------
    # dispatching
    # ------------------------------------------------------------------

    def _enqueue(self, pcpu: _PCpu, vcpu: VCpu) -> None:
        """Insert into the run queue: before lower priorities, after equals."""
        vcpu.wait_start = self.engine.now
        priority = vcpu_priority(vcpu)
        if self.telemetry.enabled:
            self.telemetry.gauge("xen.runqueue_depth").set(
                len(pcpu.runqueue) + 1, pcpu=pcpu.index
            )
        for position, queued in enumerate(pcpu.runqueue):
            if vcpu_priority(queued) > priority:
                pcpu.runqueue.insert(position, vcpu)
                return
        pcpu.runqueue.append(vcpu)

    def _dispatch(self, pcpu: _PCpu) -> None:
        """Ensure the highest-priority runnable vCPU holds the pCPU."""
        if not pcpu.runqueue:
            return
        head = min(pcpu.runqueue, key=vcpu_priority)
        if pcpu.running is None:
            self._start(pcpu, head)
            return
        if vcpu_priority(head) < vcpu_priority(pcpu.running):
            preempted = self._deschedule(pcpu)
            preempted.state = VCpuState.RUNNABLE
            self._enqueue(pcpu, preempted)
            self._start(pcpu, head)

    def _start(self, pcpu: _PCpu, vcpu: VCpu) -> None:
        """Give the pCPU to ``vcpu`` and arm burst-end/timeslice events."""
        pcpu.runqueue.remove(vcpu)
        if vcpu.wait_start is not None:
            vcpu.cumulative_wait += self.engine.now - vcpu.wait_start
            vcpu.wait_start = None
        prev = pcpu.last_descheduled
        pcpu.last_descheduled = None
        pcpu.running = vcpu
        vcpu.state = VCpuState.RUNNING
        vcpu.run_start = self.engine.now
        vcpu.domain.workload.on_scheduled(vcpu, self.engine.now)
        if vcpu.burst_remaining != RUN_FOREVER:
            pcpu.burst_end_handle = self.engine.schedule(
                vcpu.burst_remaining, self._on_burst_end, pcpu, vcpu
            )
        else:
            pcpu.burst_end_handle = None
        pcpu.timeslice_handle = self.engine.schedule(
            TIMESLICE_MS, self._on_timeslice, pcpu, vcpu
        )
        if self.telemetry.enabled:
            self.telemetry.counter("xen.context_switches").inc(pcpu=pcpu.index)
        self._emit("on_switch", self.engine.now, pcpu.index, prev, vcpu)

    def _deschedule(self, pcpu: _PCpu) -> VCpu:
        """Take the running vCPU off the pCPU, accounting its run time."""
        vcpu = pcpu.running
        if vcpu is None:
            raise SchedulingError("deschedule with no running vCPU")
        start = vcpu.run_start
        now = self.engine.now
        elapsed = now - start
        vcpu.cumulative_runtime += elapsed
        if self.precise_accounting and elapsed > 0:
            # pay for exactly what was consumed: no tick evasion possible
            charge = CREDITS_PER_TICK * (elapsed / TICK_MS)
            vcpu.credits = max(vcpu.credits - charge, -CREDIT_CAP)
        if vcpu.burst_remaining != RUN_FOREVER:
            vcpu.burst_remaining = max(vcpu.burst_remaining - elapsed, 0.0)
        vcpu.run_start = None
        pcpu.running = None
        pcpu.last_descheduled = vcpu
        if pcpu.burst_end_handle is not None:
            self.engine.cancel(pcpu.burst_end_handle)
            pcpu.burst_end_handle = None
        if pcpu.timeslice_handle is not None:
            self.engine.cancel(pcpu.timeslice_handle)
            pcpu.timeslice_handle = None
        if elapsed > 0:
            self._emit("on_run_interval", vcpu, start, now)
        return vcpu

    def _on_burst_end(self, pcpu: _PCpu, vcpu: VCpu) -> None:
        """The running vCPU consumed its burst's CPU demand."""
        if pcpu.running is not vcpu:
            return  # stale event (handle races are also cancelled, belt+braces)
        self._deschedule(pcpu)
        burst = vcpu.current_burst
        self._complete_burst(vcpu, burst)
        self._dispatch(pcpu)

    def _on_timeslice(self, pcpu: _PCpu, vcpu: VCpu) -> None:
        """Timeslice expiry: rotate behind equal-priority peers."""
        if pcpu.running is not vcpu:
            return
        self._deschedule(pcpu)
        vcpu.state = VCpuState.RUNNABLE
        self._enqueue(pcpu, vcpu)
        self._dispatch(pcpu)

    # ------------------------------------------------------------------
    # introspection helpers (used by monitors and tests)
    # ------------------------------------------------------------------

    def running_on(self, pcpu_index: int) -> Optional[VCpu]:
        """The vCPU currently holding the given pCPU, if any."""
        return self.pcpus[pcpu_index].running

    def next_tick_time(self) -> float:
        """The next tick instant (attackers calibrate against this).

        Ticks fire every ``TICK_MS`` from the moment the scheduler
        started, which is generally *not* aligned to absolute multiples
        of the tick period — the phase matters to tick-evading attacks.
        """
        now = self.engine.now
        elapsed = now - self._tick_epoch
        return self._tick_epoch + (elapsed // TICK_MS + 1) * TICK_MS

    def _emit(self, hook: str, *args) -> None:
        for listener in self.listeners:
            method = getattr(listener, hook, None)
            if method is not None:
                method(*args)
