"""Xen-like hypervisor substrate.

A discrete-event model of the Xen credit scheduler (paper §4.4-4.5 rely
on its semantics): per-pCPU run queues with BOOST/UNDER/OVER priorities,
10 ms accounting ticks that debit credits from whoever is running, 30 ms
timeslices with round-robin rotation, credit redistribution every 30 ms,
and the wake-up boost path (a vCPU waking with non-negative credits gets
BOOST priority and preempts lower-priority vCPUs immediately — including
wakes caused by Inter-Processor Interrupts).

Both cloud attacks the paper designs live on these semantics:

- the **CPU covert channel** (Fig. 4/5) modulates the sender's run-interval
  durations, and
- the **CPU availability attack** (Fig. 6/7) uses IPI wake-ups and
  tick-evasion to hold BOOST priority and starve a co-resident victim.
"""

from repro.xen.domain import Domain
from repro.xen.hypervisor import Hypervisor
from repro.xen.scheduler import (
    ACCOUNTING_PERIOD_MS,
    CREDIT_CAP,
    CREDITS_PER_TICK,
    TICK_MS,
    TIMESLICE_MS,
    CreditScheduler,
    Priority,
)
from repro.xen.vcpu import VCpu, VCpuState
from repro.xen.workload import (
    BlockSpec,
    Burst,
    CpuBoundWorkload,
    FiniteCpuBoundWorkload,
    IdleWorkload,
    IoBoundWorkload,
    MemoryStreamingWorkload,
    PhasedWorkload,
    Workload,
)

__all__ = [
    "ACCOUNTING_PERIOD_MS",
    "BlockSpec",
    "Burst",
    "CREDITS_PER_TICK",
    "CREDIT_CAP",
    "CpuBoundWorkload",
    "CreditScheduler",
    "Domain",
    "FiniteCpuBoundWorkload",
    "Hypervisor",
    "IdleWorkload",
    "IoBoundWorkload",
    "MemoryStreamingWorkload",
    "PhasedWorkload",
    "Priority",
    "TICK_MS",
    "TIMESLICE_MS",
    "VCpu",
    "VCpuState",
    "Workload",
]
