"""Baseline attestation schemes the paper compares against (§2.2).

- :mod:`repro.baselines.vtpm_attestation` — vTPM-based attestation: a
  per-VM virtual TPM plus an **in-guest** monitoring agent, so the
  customer attests directly with their VM. The paper's critique, which
  the comparison tests demonstrate concretely: "it cannot monitor the
  security conditions of the VM's environment. Furthermore, the
  monitoring tool resides in the guest OS... and commodity OSes are
  also highly susceptible to attacks."
- :mod:`repro.baselines.binary_attestation` — plain TCG-style binary
  attestation: boot-time hash comparison only, no runtime properties,
  no property interpretation (what [36]/[34] build on).
"""

from repro.baselines.binary_attestation import BinaryAttestationVerifier
from repro.baselines.vtpm_attestation import GuestAgent, VTpm, VTpmAttestor

__all__ = ["BinaryAttestationVerifier", "GuestAgent", "VTpm", "VTpmAttestor"]
