"""Binary attestation baseline (paper §2.2, TCG-style).

"TPM-based attestation... can verify the platform integrity of a remote
server. The targeted server uses the TPM to calculate the binary hash
values of the platform configurations and send them to the customer.
The customer compares these values with reference configurations."

This is the classical scheme the centralized systems [36]/[34] build
on, and the scheme CloudMonatt generalizes: it answers exactly one
question — *is the boot-time software state a known-good binary image?*
— and nothing about runtime behaviour, confidentiality or availability.

The comparison tests show the consequence: binary attestation verifies
a pristine platform correctly, flags a tampered one correctly, and is
structurally silent about every runtime property the paper's case
studies II-IV cover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SignatureError, StateError
from repro.tpm.tpm_emulator import Quote, TpmEmulator, verify_quote


@dataclass(frozen=True)
class BinaryVerdict:
    """Outcome of a binary attestation: match / mismatch, nothing else."""

    matches_reference: bool
    pcr_value: bytes


class BinaryAttestationVerifier:
    """A customer-side verifier holding reference PCR values.

    The verifier can only answer boot-time integrity; asking it about a
    runtime property raises, making the scheme's scope explicit in code.
    """

    RUNTIME_PROPERTIES = (
        "runtime_integrity",
        "covert_channel_freedom",
        "cpu_availability",
    )

    def __init__(self):
        self._references: set[bytes] = set()

    def add_reference(self, pcr_value: bytes) -> None:
        """Whitelist a known-good platform configuration value."""
        self._references.add(pcr_value)

    def challenge(self, tpm: TpmEmulator, pcr_index: int, nonce: bytes) -> Quote:
        """Issue the challenge and obtain the signed quote."""
        return tpm.quote([pcr_index], nonce)

    def appraise(
        self,
        quote: Quote,
        aik_public,
        pcr_index: int,
        expected_nonce: bytes,
    ) -> BinaryVerdict:
        """Verify the quote and compare against the reference set."""
        verify_quote(aik_public, quote, expected_nonce)
        value = quote.pcr_values.get(str(pcr_index))
        if value is None:
            raise SignatureError(f"quote does not cover PCR {pcr_index}")
        return BinaryVerdict(
            matches_reference=value in self._references, pcr_value=value
        )

    def appraise_runtime_property(self, prop: str) -> None:
        """The structural gap: binary attestation has no runtime scope."""
        if prop in self.RUNTIME_PROPERTIES:
            raise StateError(
                f"binary attestation cannot appraise {prop!r}: it verifies "
                "boot-time binary state only (the gap property-based "
                "attestation closes)"
            )
        raise StateError(f"unknown property {prop!r}")
