"""vTPM-based attestation baseline (paper §2.2).

"The virtual Trusted Platform Module (vTPM) was designed to provide the
same usage model and services to the VMs as the hardware TPM. Then,
remote attestation can be carried out directly between the customers
and their virtual machines by the vTPM instances."

Faithfully modelled *including its blind spots*:

1. the monitoring agent runs **inside** the guest, so it reports the
   guest OS's own (inside) view — a rootkit that filters the task list
   fools it completely;
2. the vTPM vouches only for the VM's own software state — it has no
   visibility into the platform, the hypervisor, co-resident VMs, CPU
   starvation, or covert channels.

The quotes themselves are cryptographically sound (signed, nonce-bound):
the baseline fails at the *measurement* layer, not the crypto layer —
exactly the paper's point.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.common.errors import SignatureError, StateError
from repro.common.identifiers import VmId
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import KeyPair, RsaPublicKey
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import sign, verify
from repro.guest.os_model import GuestOS


@dataclass(frozen=True)
class VTpmQuote:
    """A vTPM quote over in-guest measurements, bound to a nonce."""

    vid: str
    measurements: dict
    nonce: bytes
    signature: bytes

    def tbs(self) -> dict:
        """The to-be-signed structure."""
        return {
            "vid": self.vid,
            "measurements": self.measurements,
            "nonce": self.nonce,
        }


class VTpm:
    """A per-VM virtual TPM instance: its own AIK and quote operation."""

    def __init__(self, vid: VmId, drbg: HmacDrbg, key_bits: int = 512):
        self.vid = vid
        self._aik: KeyPair = generate_keypair(drbg.fork(f"vtpm-{vid}"), key_bits)

    @property
    def aik_public(self) -> RsaPublicKey:
        """The vTPM's attestation identity key (customer-verifiable)."""
        return self._aik.public

    def quote(self, measurements: dict, nonce: bytes) -> VTpmQuote:
        """Sign in-guest measurements with the vTPM AIK."""
        tbs = {"vid": str(self.vid), "measurements": measurements, "nonce": nonce}
        return VTpmQuote(
            vid=str(self.vid),
            measurements=measurements,
            nonce=nonce,
            signature=sign(self._aik.private, tbs),
        )


class GuestAgent:
    """The in-guest monitoring agent.

    Collects measurements by asking the guest OS — i.e. it gets the
    *inside* view. If the guest is compromised, the agent faithfully
    signs the attacker's lies.
    """

    def __init__(self, guest: GuestOS):
        self._guest = guest

    def collect(self) -> dict:
        """In-guest measurements: task list, modules, guest image hash."""
        return {
            "task_list": [
                {"pid": p.pid, "name": p.name} for p in self._guest.query_tasks()
            ],
            "kernel_modules": list(self._guest.kernel_modules),
            "os_name_digest": hashlib.sha256(
                self._guest.name.encode()
            ).hexdigest(),
        }


class VTpmAttestor:
    """The baseline service: per-VM vTPM + agent, direct customer access.

    The deliberately missing surface *is* the comparison: there is no
    platform attestation, no co-resident visibility, no availability or
    covert-channel monitoring — requesting them raises.
    """

    def __init__(self, drbg: HmacDrbg, key_bits: int = 512):
        self._drbg = drbg
        self._key_bits = key_bits
        self._vtpms: dict[VmId, VTpm] = {}
        self._agents: dict[VmId, GuestAgent] = {}

    def provision(self, vid: VmId, guest: GuestOS) -> VTpm:
        """Create a vTPM instance and install the agent in the guest."""
        vtpm = VTpm(vid, self._drbg.fork(str(vid)), self._key_bits)
        self._vtpms[vid] = vtpm
        self._agents[vid] = GuestAgent(guest)
        return vtpm

    def aik_for(self, vid: VmId) -> RsaPublicKey:
        """The verification key the customer pins for their VM."""
        if vid not in self._vtpms:
            raise StateError(f"no vTPM provisioned for {vid}")
        return self._vtpms[vid].aik_public

    def attest(self, vid: VmId, nonce: bytes) -> VTpmQuote:
        """One attestation round: agent collects, vTPM signs."""
        if vid not in self._vtpms:
            raise StateError(f"no vTPM provisioned for {vid}")
        measurements = self._agents[vid].collect()
        return self._vtpms[vid].quote(measurements, nonce)

    def attest_environment(self, vid: VmId) -> None:
        """The structural gap: vTPM attestation has no environment view.

        Always raises — there is no mechanism to measure the platform,
        co-resident VMs, CPU availability, or covert channels from
        inside one VM's trust boundary.
        """
        raise StateError(
            "vTPM-based attestation cannot measure the VM's environment "
            "(platform integrity, co-residents, availability, covert "
            "channels) — the gap CloudMonatt closes"
        )


def verify_vtpm_quote(
    aik: RsaPublicKey, quote: VTpmQuote, expected_nonce: bytes
) -> dict:
    """Customer-side verification; returns the measurements on success."""
    if quote.nonce != expected_nonce:
        raise SignatureError("vTPM quote nonce does not match the challenge")
    verify(aik, quote.tbs(), quote.signature)
    return quote.measurements
