"""Modular-exponentiation variants for the RSA hot paths.

The raw private op is the crypto floor of every attestation round, so
this module implements the classic speed ladder explicitly rather than
leaning on ``pow`` alone:

- **Fixed-window (k-ary) exponentiation** — scan the exponent in
  ``WINDOW_BITS``-bit digits, precomputing ``base^0 .. base^(2^k - 1)``
  once per call; the *digit decomposition of the exponent* is fixed per
  key, so :class:`ExponentWindows` is computed once at key construction
  and reused for every sign.
- **Montgomery-form exponentiation** — the same window walk performed in
  the Montgomery domain, where each reduction is a multiply/shift/mask
  instead of a division. :class:`MontgomeryContext` holds the per-modulus
  constants (``n'``, ``R^2 mod n``) and is precomputed per key.

Both variants compute exactly ``pow(base, exp, mod)`` — they exist so
the benchmark sweep in ``benchmarks/bench_crypto_floor.py`` can compare
the algorithmic ladder honestly against CPython's built-in (itself a
C sliding-window) and against the GMP backend in
:mod:`repro.crypto.accel`. None of them is constant-time; the whole
repository is a deterministic simulation, not a production signer.

Selection happens in :mod:`repro.crypto.rsa` via
``fastpath.config()``: ``accel_backend`` > ``modexp_montgomery`` >
``modexp_fixed_window`` > built-in ``pow``.
"""

from __future__ import annotations

WINDOW_BITS = 5
"""Window width for the k-ary walks. 5 bits ≈ optimal for 512–2048-bit
exponents (32-entry table, one multiply per 5 squarings); fixed rather
than configurable so per-key window tables can never go stale against a
reconfigured width."""


class ExponentWindows:
    """A fixed exponent decomposed into most-significant-first k-bit digits.

    RSA exponents (``d``, ``dp``, ``dq``) never change over a key's
    lifetime, so the digit scan — ~200 shift/mask pairs for a 1024-bit
    exponent — is hoisted out of every exponentiation and attached to
    the key (see ``RsaPrivateKey.__post_init__``).
    """

    __slots__ = ("exponent", "digits")

    def __init__(self, exponent: int, width: int = WINDOW_BITS):
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self.exponent = exponent
        digits = []
        bits = exponent.bit_length()
        # top digit may be narrower than ``width``; remaining are exact
        top = bits % width or (width if bits else 0)
        shift = bits - top
        if bits:
            digits.append(exponent >> shift)
        mask = (1 << width) - 1
        while shift > 0:
            shift -= width
            digits.append((exponent >> shift) & mask)
        self.digits = tuple(digits)


class MontgomeryContext:
    """Per-modulus constants for Montgomery multiplication mod an odd ``n``.

    With ``R = 2^shift`` (``shift = n.bit_length()``), a Montgomery
    product ``mont_mul(a, b) = a·b·R⁻¹ mod n`` costs one wide multiply,
    one masked multiply by ``n'`` and a shift — no trial division. The
    two derived constants are ``n' = -n⁻¹ mod R`` and ``R² mod n`` (for
    entering the domain).
    """

    __slots__ = ("n", "shift", "mask", "n_prime", "r2", "one")

    def __init__(self, n: int):
        if n <= 0 or n % 2 == 0:
            raise ValueError("Montgomery form requires a positive odd modulus")
        self.n = n
        self.shift = n.bit_length()
        r = 1 << self.shift
        self.mask = r - 1
        self.n_prime = (-pow(n, -1, r)) & self.mask
        self.r2 = r * r % n
        self.one = r % n  # 1 in the Montgomery domain

    def mul(self, a: int, b: int) -> int:
        """Montgomery product ``a·b·R⁻¹ mod n`` (REDC)."""
        t = a * b
        m = ((t & self.mask) * self.n_prime) & self.mask
        u = (t + m * self.n) >> self.shift
        return u - self.n if u >= self.n else u

    def to_mont(self, a: int) -> int:
        """Map ``a`` into the Montgomery domain (``a·R mod n``)."""
        return self.mul(a, self.r2)

    def from_mont(self, a: int) -> int:
        """Map back out of the domain (``a·R⁻¹ mod n``)."""
        m = ((a & self.mask) * self.n_prime) & self.mask
        u = (a + m * self.n) >> self.shift
        return u - self.n if u >= self.n else u

    def powm(self, base: int, windows: ExponentWindows) -> int:
        """``base ** windows.exponent mod n`` via a windowed Montgomery walk."""
        digits = windows.digits
        if not digits:
            return 1 % self.n
        mul = self.mul
        # table[i] = base^i in the Montgomery domain
        table = [self.one] * (1 << WINDOW_BITS)
        table[1] = mb = self.to_mont(base % self.n)
        for i in range(2, 1 << WINDOW_BITS):
            table[i] = mul(table[i - 1], mb)
        acc = table[digits[0]]
        for digit in digits[1:]:
            for _ in range(WINDOW_BITS):
                acc = mul(acc, acc)
            if digit:
                acc = mul(acc, table[digit])
        return self.from_mont(acc)


def powmod_window(base: int, mod: int, windows: ExponentWindows) -> int:
    """Fixed-window exponentiation in the plain domain (no Montgomery).

    Identical walk to :meth:`MontgomeryContext.powm` but each step pays
    a real ``% mod``; kept separate so the benchmark can attribute the
    Montgomery saving precisely.
    """
    digits = windows.digits
    if not digits:
        return 1 % mod
    base %= mod
    table = [1] * (1 << WINDOW_BITS)
    table[1] = base
    for i in range(2, 1 << WINDOW_BITS):
        table[i] = table[i - 1] * base % mod
    acc = table[digits[0]]
    for digit in digits[1:]:
        for _ in range(WINDOW_BITS):
            acc = acc * acc % mod
        if digit:
            acc = acc * table[digit] % mod
    return acc


def powmod_montgomery(base: int, ctx: MontgomeryContext,
                      windows: ExponentWindows) -> int:
    """Module-level convenience over :meth:`MontgomeryContext.powm`."""
    return ctx.powm(base, windows)
