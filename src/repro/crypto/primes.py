"""Prime generation for RSA key material.

Implements Miller-Rabin probabilistic primality testing with a
deterministic small-prime pre-sieve, driven by the :class:`HmacDrbg` so
that key generation is reproducible under a seed.

Performance notes (the crypto-floor PR):

- The pre-sieve is a single ``gcd`` against the product of the small
  primes instead of 46 separate trial divisions — mathematically the
  same accept/reject set, so the DRBG draw sequence (and therefore
  every generated key) is unchanged.
- The Miller-Rabin exponentiations go through the accelerated backend
  when ``fastpath.config().accel_backend`` is on (GMP, bit-exact with
  ``pow``). Keygen is ~40 half-width modexps per key, so this is where
  the key-generation floor actually moves.
- Base selection stays DRBG-drawn and the round count stays fixed:
  both are part of the determinism contract — skipping or reordering a
  draw would shift the stream and change every subsequent key.
"""

from __future__ import annotations

import math

from repro.crypto import accel, fastpath
from repro.crypto.drbg import HmacDrbg

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]

_SMALL_PRIME_SET = frozenset(_SMALL_PRIMES)

#: product of the sieve primes: one gcd replaces 46 trial divisions
_SMALL_PRIME_PRODUCT = math.prod(_SMALL_PRIMES)


def is_probable_prime(n: int, drbg: HmacDrbg, rounds: int = 24) -> bool:
    """Miller-Rabin primality test.

    ``rounds`` random bases give a false-positive probability below
    ``4**-rounds``; 24 rounds is far beyond what the simulation needs.
    """
    if n < 2:
        return False
    if n in _SMALL_PRIME_SET:
        return True
    if math.gcd(n, _SMALL_PRIME_PRODUCT) != 1:
        return False
    # write n - 1 as d * 2^r with d odd
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if accel.AVAILABLE and fastpath.config().accel_backend:
        # fused witness rounds: the whole x^d / squaring chain stays in
        # GMP; base draws are identical, so the keys are too
        for _ in range(rounds):
            a = 2 + drbg.randint_below(n - 3)
            if not accel.mr_witness_passes(a, d, n, r):
                return False
        return True
    for _ in range(rounds):
        a = 2 + drbg.randint_below(n - 3)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, drbg: HmacDrbg) -> int:
    """Generate a probable prime with exactly ``bits`` bits.

    The top two bits are forced to 1 so that the product of two such
    primes has exactly ``2 * bits`` bits, and the bottom bit is forced to
    1 so the candidate is odd.
    """
    if bits < 8:
        raise ValueError("prime size too small for RSA")
    while True:
        candidate = drbg.randint_bits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, drbg):
            return candidate
