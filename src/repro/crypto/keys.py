"""Key containers.

RSA keys are plain frozen dataclasses; what matters architecturally is who
*holds* them (paper Fig. 3): each entity owns a long-term identity key
pair, and the Trust Module mints a fresh attestation key pair {AVKs, ASKs}
per attestation session so the cloud server stays anonymous to observers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

from repro.crypto.hashing import sha256_hex


@dataclass(frozen=True)
class RsaPublicKey:
    """Public half of an RSA key pair: modulus ``n`` and exponent ``e``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()

    def fingerprint(self) -> str:
        """Stable short identifier for logs, reports and certificates."""
        return sha256_hex({"n": self.n, "e": self.e})[:16]

    def to_dict(self) -> dict:
        """Serializable form, used inside certificates and messages."""
        return {"n": self.n, "e": self.e}

    @staticmethod
    def from_dict(data: dict) -> "RsaPublicKey":
        """Inverse of :meth:`to_dict`."""
        return RsaPublicKey(n=int(data["n"]), e=int(data["e"]))


@dataclass(frozen=True)
class RsaPrivateKey:
    """Private half of an RSA key pair.

    ``p`` and ``q`` are retained so signing can use the CRT speed-up;
    ``d`` is the private exponent.
    """

    n: int
    d: int
    p: int = field(repr=False, default=0)
    q: int = field(repr=False, default=0)

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()

    @cached_property
    def crt(self) -> Optional[tuple[int, int, int]]:
        """CRT constants ``(dp, dq, q_inv)``, computed once per key.

        ``None`` when the prime factors are absent (imported keys); the
        raw op then falls back to a full-width exponentiation. Cached
        because every ``private_op`` call needs them and the two modular
        reductions plus the inverse are a measurable slice of each sign.
        """
        if not (self.p and self.q):
            return None
        return (
            self.d % (self.p - 1),
            self.d % (self.q - 1),
            pow(self.q, -1, self.p),
        )


@dataclass(frozen=True)
class KeyPair:
    """A matched public/private key pair owned by one entity."""

    public: RsaPublicKey
    private: RsaPrivateKey

    def fingerprint(self) -> str:
        """Fingerprint of the public half."""
        return self.public.fingerprint()
