"""Key containers.

RSA keys are plain frozen dataclasses; what matters architecturally is who
*holds* them (paper Fig. 3): each entity owns a long-term identity key
pair, and the Trust Module mints a fresh attestation key pair {AVKs, ASKs}
per attestation session so the cloud server stays anonymous to observers.

**Eager precompute.** Everything a private key can hoist out of its hot
path — the CRT constants, the Montgomery contexts for its moduli, the
fixed-window digit decomposition of its exponents — is computed at
construction time in ``__post_init__``, not lazily on first use. Two
fresh keys therefore take the *same* code path on their very first
operation (a plain ``__dict__`` hit, no one-time-setup branch), which
keeps first-round pooled timings free of setup jitter; the regression
test in ``tests/test_crypto_modexp.py`` pins this. The public key keeps
its Montgomery context lazy on purpose: public ops use ``e = 65537``,
where a windowed walk never pays, and public keys are reconstructed on
every wire decode where an eager ``R² mod n`` would be pure overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

from repro.crypto.hashing import sha256_hex
from repro.crypto.modexp import ExponentWindows, MontgomeryContext


@dataclass(frozen=True)
class RsaPublicKey:
    """Public half of an RSA key pair: modulus ``n`` and exponent ``e``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()

    @cached_property
    def mont(self) -> MontgomeryContext:
        """Montgomery context for ``n`` (lazy — see module docstring)."""
        return MontgomeryContext(self.n)

    @cached_property
    def windows(self) -> ExponentWindows:
        """Fixed-window digits of ``e`` (lazy, for the bench sweep)."""
        return ExponentWindows(self.e)

    def fingerprint(self) -> str:
        """Stable short identifier for logs, reports and certificates."""
        return sha256_hex({"n": self.n, "e": self.e})[:16]

    def to_dict(self) -> dict:
        """Serializable form, used inside certificates and messages."""
        return {"n": self.n, "e": self.e}

    @staticmethod
    def from_dict(data: dict) -> "RsaPublicKey":
        """Inverse of :meth:`to_dict`."""
        return RsaPublicKey(n=int(data["n"]), e=int(data["e"]))


@dataclass(frozen=True)
class RsaPrivateKey:
    """Private half of an RSA key pair.

    ``p`` and ``q`` are retained so signing can use the CRT speed-up;
    ``d`` is the private exponent.
    """

    n: int
    d: int
    p: int = field(repr=False, default=0)
    q: int = field(repr=False, default=0)

    def __post_init__(self):
        # eager precompute (module docstring): touch every cached
        # property the raw ops consult, so no op ever hits a lazy branch
        if self.crt is not None:
            self.mont_crt
            self.windows_crt
        else:
            self.mont_n
            self.windows_d

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()

    @cached_property
    def crt(self) -> Optional[tuple[int, int, int]]:
        """CRT constants ``(dp, dq, q_inv)``, computed once per key.

        ``None`` when the prime factors are absent (imported keys); the
        raw op then falls back to a full-width exponentiation.
        """
        if not (self.p and self.q):
            return None
        return (
            self.d % (self.p - 1),
            self.d % (self.q - 1),
            pow(self.q, -1, self.p),
        )

    @cached_property
    def mont_crt(self) -> Optional[tuple[MontgomeryContext, MontgomeryContext]]:
        """Montgomery contexts for ``p`` and ``q`` (CRT half-width ops)."""
        if not (self.p and self.q):
            return None
        return (MontgomeryContext(self.p), MontgomeryContext(self.q))

    @cached_property
    def windows_crt(self) -> Optional[tuple[ExponentWindows, ExponentWindows]]:
        """Fixed-window digits of ``dp`` and ``dq``."""
        crt = self.crt
        if crt is None:
            return None
        return (ExponentWindows(crt[0]), ExponentWindows(crt[1]))

    @cached_property
    def mont_n(self) -> MontgomeryContext:
        """Montgomery context for ``n`` (factorless fallback path)."""
        return MontgomeryContext(self.n)

    @cached_property
    def windows_d(self) -> ExponentWindows:
        """Fixed-window digits of ``d`` (factorless fallback path)."""
        return ExponentWindows(self.d)


@dataclass(frozen=True)
class KeyPair:
    """A matched public/private key pair owned by one entity."""

    public: RsaPublicKey
    private: RsaPrivateKey

    def fingerprint(self) -> str:
        """Fingerprint of the public half."""
        return self.public.fingerprint()
