"""RSA key generation and raw modular operations.

Textbook RSA with CRT private operations. Padding and hashing live in
:mod:`repro.crypto.signatures`; nothing should call the raw ops directly
except that module and the tests.

**Modexp dispatch.** The raw ops select an exponentiation engine from
``fastpath.config()`` — every engine computes the identical integer, so
the choice can never move a protocol byte:

1. ``accel_backend`` → GMP ``mpz_powm`` via :mod:`repro.crypto.accel`
   (the raw-speed floor; silently unavailable → next rung);
2. ``modexp_montgomery`` → per-key Montgomery contexts + fixed-window
   walk (:mod:`repro.crypto.modexp`);
3. ``modexp_fixed_window`` → plain k-ary walk with per-key exponent
   digits;
4. default → CPython's built-in ``pow``.

The pure-python rungs apply to *private* ops only: the public exponent
is 65537, where any windowed walk is strictly worse than ``pow``, so
``public_op`` uses only the accel/pow rungs.
"""

from __future__ import annotations

from repro.common.errors import CryptoError
from repro.crypto import accel, fastpath
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import KeyPair, RsaPrivateKey, RsaPublicKey
from repro.crypto.modexp import powmod_window
from repro.crypto.primes import generate_prime

DEFAULT_KEY_BITS = 1024
"""Default modulus size. The simulation config may lower this (e.g. to 512)
to keep large sweeps fast; the protocol logic is size-independent."""

_PUBLIC_EXPONENT = 65537


def generate_keypair(drbg: HmacDrbg, bits: int = DEFAULT_KEY_BITS) -> KeyPair:
    """Generate an RSA key pair with a ``bits``-bit modulus.

    Primes are drawn from the supplied DRBG, so key generation is
    deterministic per seed. Regenerates primes in the (astronomically
    unlikely) event that ``e`` is not invertible mod ``λ(n)``.
    """
    if bits < 128 or bits % 2 != 0:
        raise CryptoError("modulus size must be an even number of bits >= 128")
    half = bits // 2
    while True:
        p = generate_prime(half, drbg)
        q = generate_prime(half, drbg)
        if p == q:
            continue
        n = p * q
        lam = (p - 1) * (q - 1)
        if lam % _PUBLIC_EXPONENT == 0:
            continue
        d = pow(_PUBLIC_EXPONENT, -1, lam)
        return KeyPair(
            public=RsaPublicKey(n=n, e=_PUBLIC_EXPONENT),
            private=RsaPrivateKey(n=n, d=d, p=p, q=q),
        )


def _private_crt(key: RsaPrivateKey, value: int) -> int:
    """CRT recombination with the configured half-width engine."""
    dp, dq, q_inv = key.crt
    config = fastpath.config()
    if config.accel_backend and accel.AVAILABLE:
        m1 = accel.powmod(value % key.p, dp, key.p)
        m2 = accel.powmod(value % key.q, dq, key.q)
    elif config.modexp_montgomery:
        ctx_p, ctx_q = key.mont_crt
        win_p, win_q = key.windows_crt
        m1 = ctx_p.powm(value % key.p, win_p)
        m2 = ctx_q.powm(value % key.q, win_q)
    elif config.modexp_fixed_window:
        win_p, win_q = key.windows_crt
        m1 = powmod_window(value % key.p, key.p, win_p)
        m2 = powmod_window(value % key.q, key.q, win_q)
    else:
        m1 = pow(value % key.p, dp, key.p)
        m2 = pow(value % key.q, dq, key.q)
    h = (q_inv * (m1 - m2)) % key.p
    return m2 + h * key.q


def private_op(key: RsaPrivateKey, value: int) -> int:
    """Raw private-key operation ``value^d mod n`` (CRT accelerated)."""
    if not 0 <= value < key.n:
        raise CryptoError("value out of range for RSA modulus")
    if key.crt is not None:
        # Chinese Remainder Theorem: two half-width exponentiations,
        # ~4x cheaper than one full-width; constants precomputed at key
        # construction (RsaPrivateKey.__post_init__)
        return _private_crt(key, value)
    config = fastpath.config()
    if config.accel_backend and accel.AVAILABLE:
        return accel.powmod(value, key.d, key.n)
    if config.modexp_montgomery:
        return key.mont_n.powm(value, key.windows_d)
    if config.modexp_fixed_window:
        return powmod_window(value, key.n, key.windows_d)
    return pow(value, key.d, key.n)


def public_op(key: RsaPublicKey, value: int) -> int:
    """Raw public-key operation ``value^e mod n``."""
    if not 0 <= value < key.n:
        raise CryptoError("value out of range for RSA modulus")
    config = fastpath.config()
    if config.accel_backend and accel.AVAILABLE:
        return accel.powmod(value, key.e, key.n)
    return pow(value, key.e, key.n)
