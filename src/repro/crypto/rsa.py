"""RSA key generation and raw modular operations.

Textbook RSA with CRT private operations. Padding and hashing live in
:mod:`repro.crypto.signatures`; nothing should call the raw ops directly
except that module and the tests.
"""

from __future__ import annotations

from repro.common.errors import CryptoError
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import KeyPair, RsaPrivateKey, RsaPublicKey
from repro.crypto.primes import generate_prime

DEFAULT_KEY_BITS = 1024
"""Default modulus size. The simulation config may lower this (e.g. to 512)
to keep large sweeps fast; the protocol logic is size-independent."""

_PUBLIC_EXPONENT = 65537


def generate_keypair(drbg: HmacDrbg, bits: int = DEFAULT_KEY_BITS) -> KeyPair:
    """Generate an RSA key pair with a ``bits``-bit modulus.

    Primes are drawn from the supplied DRBG, so key generation is
    deterministic per seed. Regenerates primes in the (astronomically
    unlikely) event that ``e`` is not invertible mod ``λ(n)``.
    """
    if bits < 128 or bits % 2 != 0:
        raise CryptoError("modulus size must be an even number of bits >= 128")
    half = bits // 2
    while True:
        p = generate_prime(half, drbg)
        q = generate_prime(half, drbg)
        if p == q:
            continue
        n = p * q
        lam = (p - 1) * (q - 1)
        if lam % _PUBLIC_EXPONENT == 0:
            continue
        d = pow(_PUBLIC_EXPONENT, -1, lam)
        return KeyPair(
            public=RsaPublicKey(n=n, e=_PUBLIC_EXPONENT),
            private=RsaPrivateKey(n=n, d=d, p=p, q=q),
        )


def private_op(key: RsaPrivateKey, value: int) -> int:
    """Raw private-key operation ``value^d mod n`` (CRT accelerated)."""
    if not 0 <= value < key.n:
        raise CryptoError("value out of range for RSA modulus")
    crt = key.crt
    if crt is not None:
        # Chinese Remainder Theorem: ~4x faster than a full pow; the
        # constants are computed once per key (RsaPrivateKey.crt)
        dp, dq, q_inv = crt
        m1 = pow(value % key.p, dp, key.p)
        m2 = pow(value % key.q, dq, key.q)
        h = (q_inv * (m1 - m2)) % key.p
        return m2 + h * key.q
    return pow(value, key.d, key.n)


def public_op(key: RsaPublicKey, value: int) -> int:
    """Raw public-key operation ``value^e mod n``."""
    if not 0 <= value < key.n:
        raise CryptoError("value out of range for RSA modulus")
    return pow(value, key.e, key.n)
