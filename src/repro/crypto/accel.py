"""Optional accelerated modular-exponentiation backend (ctypes + GMP).

Every hot crypto path in the reproduction bottoms out on ``x^e mod n``:
CRT signing, Miller-Rabin keygen, signature verification. CPython's
built-in ``pow`` is already C, but GMP's ``mpz_powm`` is ~an order of
magnitude faster at RSA sizes (assembly multiplication, dedicated
Montgomery reduction). When ``libgmp`` is loadable this module exposes
it through :func:`powmod`, a drop-in for the three-argument ``pow``.

Design constraints, in order:

- **Bit-exact by construction.** ``mpz_powm`` computes the same integer
  as ``pow``; an import-time self-test cross-checks a few values against
  ``pow`` and refuses the backend on any mismatch. Because the *result*
  is identical, the accelerated paths are excluded from the
  transcript/audit-hash equivalence concerns by construction — there is
  no behaviour to gate, only speed (see ``fastpath.accel_backend``).
- **No new dependencies.** ``gmpy2`` is not assumed; the shared library
  is reached through :mod:`ctypes` and its absence simply leaves
  :data:`AVAILABLE` false, with every caller falling back to ``pow``.
- **Allocation-free steady state.** Each thread keeps four reusable
  ``mpz_t`` structs (thread-local, so the key-pool worker thread and
  keygen-farm processes never share GMP state); imports reuse the limb
  buffers, so a sign is three imports, one ``powm`` and one export.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import threading
from typing import Optional


class _MpzT(ctypes.Structure):
    """Layout of GMP's ``__mpz_struct`` (stable across GMP 4/5/6)."""

    _fields_ = [
        ("_mp_alloc", ctypes.c_int),
        ("_mp_size", ctypes.c_int),
        ("_mp_d", ctypes.POINTER(ctypes.c_ulong)),
    ]


def _load_gmp() -> Optional[ctypes.CDLL]:
    """Locate and bind libgmp; ``None`` if unavailable or unusable."""
    candidates = []
    found = ctypes.util.find_library("gmp")
    if found:
        candidates.append(found)
    candidates += ["libgmp.so.10", "libgmp.so", "libgmp.dylib"]
    for name in candidates:
        try:
            lib = ctypes.CDLL(name)
        except OSError:
            continue
        try:
            lib.__gmpz_init.argtypes = [ctypes.POINTER(_MpzT)]
            lib.__gmpz_import.argtypes = [
                ctypes.POINTER(_MpzT), ctypes.c_size_t, ctypes.c_int,
                ctypes.c_size_t, ctypes.c_int, ctypes.c_size_t,
                ctypes.c_char_p,
            ]
            lib.__gmpz_export.restype = ctypes.c_void_p
            lib.__gmpz_export.argtypes = [
                ctypes.c_char_p, ctypes.POINTER(ctypes.c_size_t),
                ctypes.c_int, ctypes.c_size_t, ctypes.c_int,
                ctypes.c_size_t, ctypes.POINTER(_MpzT),
            ]
            lib.__gmpz_powm.argtypes = [ctypes.POINTER(_MpzT)] * 4
            lib.__gmpz_mul.argtypes = [ctypes.POINTER(_MpzT)] * 3
            lib.__gmpz_tdiv_r.argtypes = [ctypes.POINTER(_MpzT)] * 3
            lib.__gmpz_sub_ui.argtypes = [
                ctypes.POINTER(_MpzT), ctypes.POINTER(_MpzT), ctypes.c_ulong,
            ]
            lib.__gmpz_cmp.restype = ctypes.c_int
            lib.__gmpz_cmp.argtypes = [ctypes.POINTER(_MpzT)] * 2
            lib.__gmpz_cmp_ui.restype = ctypes.c_int
            lib.__gmpz_cmp_ui.argtypes = [
                ctypes.POINTER(_MpzT), ctypes.c_ulong,
            ]
        except AttributeError:
            continue
        return lib
    return None


_GMP = _load_gmp()

# plain-name aliases: ``lib.__gmpz_*`` cannot be spelled inside a class
# body (Python name mangling), and local names are faster anyway
if _GMP is not None:
    _mpz_init = _GMP.__gmpz_init
    _mpz_import = _GMP.__gmpz_import
    _mpz_export = _GMP.__gmpz_export
    _mpz_powm = _GMP.__gmpz_powm
    _mpz_mul = _GMP.__gmpz_mul
    _mpz_tdiv_r = _GMP.__gmpz_tdiv_r
    _mpz_sub_ui = _GMP.__gmpz_sub_ui
    _mpz_cmp = _GMP.__gmpz_cmp
    _mpz_cmp_ui = _GMP.__gmpz_cmp_ui


class _ThreadMpz(threading.local):
    """Per-thread reusable mpz registers.

    Four for :func:`powmod` (base, exponent, modulus, result) plus three
    scratch registers for the fused Miller-Rabin witness loop.
    """

    def __init__(self):
        self.regs = tuple(_MpzT() for _ in range(7))
        for reg in self.regs:
            _mpz_init(ctypes.byref(reg))


_LOCAL: Optional[_ThreadMpz] = _ThreadMpz() if _GMP is not None else None


def _gmp_powmod(base: int, exp: int, mod: int) -> int:
    """``base ** exp % mod`` through GMP. All operands non-negative."""
    zb, ze, zn, zr = _LOCAL.regs[:4]  # type: ignore[union-attr]
    for reg, value in ((zb, base), (ze, exp), (zn, mod)):
        raw = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
        _mpz_import(ctypes.byref(reg), len(raw), 1, 1, 0, 0, raw)
    _mpz_powm(
        ctypes.byref(zr), ctypes.byref(zb), ctypes.byref(ze), ctypes.byref(zn)
    )
    out = ctypes.create_string_buffer((mod.bit_length() + 7) // 8 + 8)
    count = ctypes.c_size_t()
    _mpz_export(out, ctypes.byref(count), 1, 1, 0, 0, ctypes.byref(zr))
    return int.from_bytes(out.raw[: count.value], "big")


def _gmp_mr_witness_passes(a: int, d: int, n: int, r: int) -> bool:
    """One Miller-Rabin witness round for odd ``n - 1 = d * 2^r``.

    Returns True when base ``a`` does **not** witness compositeness
    (i.e. the round passes), matching the pure-python round in
    :func:`repro.crypto.primes.is_probable_prime` exactly. The whole
    ``x^d`` / repeated-squaring chain stays inside GMP — keygen makes
    ~40 of these per key, and the per-squaring import/export round-trip
    is what the fused loop removes.
    """
    regs = _LOCAL.regs  # type: ignore[union-attr]
    za, zd, zn, zx, znm1, zt = (
        regs[0], regs[1], regs[2], regs[3], regs[4], regs[5],
    )
    for reg, value in ((za, a), (zd, d), (zn, n)):
        raw = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
        _mpz_import(ctypes.byref(reg), len(raw), 1, 1, 0, 0, raw)
    _mpz_powm(ctypes.byref(zx), ctypes.byref(za), ctypes.byref(zd),
              ctypes.byref(zn))
    _mpz_sub_ui(ctypes.byref(znm1), ctypes.byref(zn), 1)
    if (_mpz_cmp_ui(ctypes.byref(zx), 1) == 0
            or _mpz_cmp(ctypes.byref(zx), ctypes.byref(znm1)) == 0):
        return True
    for _ in range(r - 1):
        _mpz_mul(ctypes.byref(zt), ctypes.byref(zx), ctypes.byref(zx))
        _mpz_tdiv_r(ctypes.byref(zx), ctypes.byref(zt), ctypes.byref(zn))
        if _mpz_cmp(ctypes.byref(zx), ctypes.byref(znm1)) == 0:
            return True
    return False


def _py_mr_witness_passes(a: int, d: int, n: int, r: int) -> bool:
    """Reference witness round (``pow``-based), shared with the self-test."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(r - 1):
        x = pow(x, 2, n)
        if x == n - 1:
            return True
    return False


def _self_test() -> bool:
    """Cross-check the backend against ``pow`` before trusting it."""
    samples = [
        (0, 5, 7), (1, 0, 9), (2, 10, 1), (3, 65537, (1 << 64) + 13),
        (0xDEADBEEF, 0xC0FFEE, (1 << 255) + 95),
        ((1 << 511) + 7, (1 << 500) + 3, (1 << 512) + 569),
    ]
    # witness rounds over a known prime (all pass) and composite
    # (overwhelmingly fail): n - 1 = d * 2^r decomposed as in primes.py
    witnesses = []
    for n in ((1 << 127) - 1, (1 << 128) + 1):
        d, r = n - 1, 0
        while d % 2 == 0:
            d, r = d // 2, r + 1
        witnesses += [(a, d, n, r) for a in (2, 3, 5, 7, 0xFEDCBA)]
    try:
        return all(
            _gmp_powmod(b, e, n) == pow(b, e, n) for b, e, n in samples
        ) and all(
            _gmp_mr_witness_passes(a, d, n, r)
            == _py_mr_witness_passes(a, d, n, r)
            for a, d, n, r in witnesses
        )
    except Exception:
        return False


#: True when libgmp loaded and passed the import-time self-test.
AVAILABLE: bool = _GMP is not None and _self_test()


def powmod(base: int, exp: int, mod: int) -> int:
    """Accelerated ``pow(base, exp, mod)``; falls back to ``pow`` itself.

    Only non-negative operands with ``mod >= 1`` are supported — exactly
    the domain RSA and Miller-Rabin use.
    """
    if AVAILABLE:
        return _gmp_powmod(base, exp, mod)
    return pow(base, exp, mod)


def mr_witness_passes(a: int, d: int, n: int, r: int) -> bool:
    """Accelerated Miller-Rabin witness round; ``pow``-based fallback.

    Semantics documented on :func:`_gmp_mr_witness_passes`; bit-exact
    with the pure round either way.
    """
    if AVAILABLE:
        return _gmp_mr_witness_passes(a, d, n, r)
    return _py_mr_witness_passes(a, d, n, r)


def backend_name() -> str:
    """Human-readable backend identifier for benchmarks and docs."""
    return "gmp-ctypes" if AVAILABLE else "python-pow"
