"""Deterministic random bit generator (HMAC-DRBG, simplified).

Key generation must be reproducible under a seed for the figures to
regenerate identically, yet unpredictable-looking enough to exercise the
real code paths (distinct servers get distinct keys; nonces never repeat).
This is a compact HMAC-SHA256 construction in the spirit of NIST SP
800-90A's HMAC_DRBG: state ``(K, V)`` updated through HMAC invocations.
"""

from __future__ import annotations

import hashlib
import hmac


class HmacDrbg:
    """HMAC-SHA256 based deterministic byte stream.

    Not certified randomness — deterministic by design. Within the
    simulation it plays the role of the Trust Module's hardware RNG.
    """

    def __init__(self, seed: bytes | int, personalization: str = ""):
        if isinstance(seed, int):
            seed = seed.to_bytes(16, "big", signed=False)
        self._key = b"\x00" * 32
        self._value = b"\x01" * 32
        self._reseed(seed + personalization.encode("utf-8"))

    def _hmac(self, key: bytes, data: bytes) -> bytes:
        return hmac.new(key, data, hashlib.sha256).digest()

    def _reseed(self, data: bytes) -> None:
        self._key = self._hmac(self._key, self._value + b"\x00" + data)
        self._value = self._hmac(self._key, self._value)
        self._key = self._hmac(self._key, self._value + b"\x01" + data)
        self._value = self._hmac(self._key, self._value)

    def generate(self, n: int) -> bytes:
        """Produce ``n`` pseudo-random bytes and advance the state."""
        output = b""
        while len(output) < n:
            self._value = self._hmac(self._key, self._value)
            output += self._value
        self._reseed(b"")
        return output[:n]

    def randint_bits(self, bits: int) -> int:
        """Return a uniformly distributed integer with at most ``bits`` bits."""
        nbytes = (bits + 7) // 8
        raw = int.from_bytes(self.generate(nbytes), "big")
        excess = nbytes * 8 - bits
        return raw >> excess

    def randint_below(self, bound: int) -> int:
        """Return an integer uniform in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        bits = bound.bit_length()
        while True:
            candidate = self.randint_bits(bits)
            if candidate < bound:
                return candidate

    def fork(self, label: str) -> "HmacDrbg":
        """Derive an independent child generator keyed by ``label``."""
        return HmacDrbg(self.generate(32), personalization=label)
