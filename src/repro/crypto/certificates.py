"""Public-key certificates and the privacy Certificate Authority.

Paper §3.4.2: each attestation session, the Trust Module mints a fresh
attestation key pair {AVKs, ASKs}; the public half is signed by the cloud
server's long-term identity key and sent to the privacy CA (pCA), which
verifies the binding and issues a certificate for AVKs. The certificate
lets the Attestation Server authenticate the cloud server *anonymously* —
it proves "some enrolled CloudMonatt server vouches for this key" without
naming the server, so observers cannot learn which host runs a VM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SignatureError
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import KeyPair, RsaPublicKey
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import sign, verify


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject name to a public key.

    ``subject`` is a display name only; for anonymous attestation
    certificates the pCA sets it to a session-scoped pseudonym rather
    than the server's identity.
    """

    subject: str
    public_key: RsaPublicKey
    issuer: str
    serial: int
    signature: bytes

    def tbs(self) -> dict:
        """The *to-be-signed* structure covered by the signature."""
        return {
            "subject": self.subject,
            "public_key": self.public_key.to_dict(),
            "issuer": self.issuer,
            "serial": self.serial,
        }


class CertificateAuthority:
    """Issues and verifies certificates; plays the pCA role.

    Enrollment is explicit: :meth:`enroll` registers a server's identity
    public key; :meth:`certify_attestation_key` checks that a fresh
    attestation key is vouched for by *some* enrolled identity key before
    issuing an anonymous certificate for it.
    """

    def __init__(self, name: str, drbg: HmacDrbg, key_bits: int = 1024):
        self.name = name
        self._keypair: KeyPair = generate_keypair(drbg.fork("ca-key"), key_bits)
        self._serial = 0
        self._enrolled: dict[str, RsaPublicKey] = {}

    @property
    def public_key(self) -> RsaPublicKey:
        """CA verification key, distributed to all relying parties."""
        return self._keypair.public

    def enroll(self, server_name: str, identity_key: RsaPublicKey) -> None:
        """Register a cloud server's long-term identity key with the CA.

        In a deployment this happens once, out of band, when the server
        is installed in the data center (paper §3.4.2).
        """
        self._enrolled[server_name] = identity_key

    def is_enrolled(self, server_name: str) -> bool:
        """Whether the named server has an enrolled identity key."""
        return server_name in self._enrolled

    def issue(self, subject: str, public_key: RsaPublicKey) -> Certificate:
        """Issue a certificate directly (used for controller / attestation
        server identity certificates, where anonymity is not needed)."""
        self._serial += 1
        tbs = {
            "subject": subject,
            "public_key": public_key.to_dict(),
            "issuer": self.name,
            "serial": self._serial,
        }
        return Certificate(
            subject=subject,
            public_key=public_key,
            issuer=self.name,
            serial=self._serial,
            signature=sign(self._keypair.private, tbs),
        )

    def certify_attestation_key(
        self,
        server_name: str,
        attestation_key: RsaPublicKey,
        endorsement: bytes,
    ) -> Certificate:
        """Issue an **anonymous** certificate for a session attestation key.

        ``endorsement`` must be the server's identity-key signature over
        the attestation public key; the CA verifies it against the
        enrolled identity key and then issues a certificate whose subject
        is a pseudonym, deliberately not naming the server.
        """
        if server_name not in self._enrolled:
            raise SignatureError(f"server {server_name!r} not enrolled with pCA")
        identity_key = self._enrolled[server_name]
        verify(identity_key, attestation_key.to_dict(), endorsement)
        pseudonym = f"anon-attester-{attestation_key.fingerprint()}"
        return self.issue(pseudonym, attestation_key)

    def check(self, certificate: Certificate) -> None:
        """Verify a certificate chain of depth one against this CA.

        Raises :class:`SignatureError` if the certificate was not issued
        by this CA or has been altered.
        """
        if certificate.issuer != self.name:
            raise SignatureError(
                f"certificate issued by {certificate.issuer!r}, not {self.name!r}"
            )
        verify(self._keypair.public, certificate.tbs(), certificate.signature)


def certificate_to_dict(certificate: Certificate) -> dict:
    """Serialize a certificate for transport in protocol messages."""
    return {
        "subject": certificate.subject,
        "public_key": certificate.public_key.to_dict(),
        "issuer": certificate.issuer,
        "serial": certificate.serial,
        "signature": certificate.signature,
    }


def certificate_from_dict(data: dict) -> Certificate:
    """Inverse of :func:`certificate_to_dict`."""
    return Certificate(
        subject=str(data["subject"]),
        public_key=RsaPublicKey.from_dict(data["public_key"]),
        issuer=str(data["issuer"]),
        serial=int(data["serial"]),
        signature=bytes(data["signature"]),
    )


def verify_certificate(ca_key: RsaPublicKey, certificate: Certificate) -> None:
    """Verify a certificate given only the CA public key.

    Relying parties that hold the CA key but not the CA object (i.e.
    everyone except the CA itself) use this form.
    """
    verify(ca_key, certificate.tbs(), certificate.signature)
