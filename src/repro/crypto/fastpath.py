"""Process-wide configuration for the crypto fast paths.

Every optimisation the crypto layer performs — attestation-key pooling,
the signature-verification memo, derived-subkey caching, cached wire
encodings — is transparent by construction: it may change *when* work
happens, never *what* bytes the protocol produces. This module is the
single switchboard that turns each fast path on or off, so the
transcript-equivalence tests can run the same seed with everything
disabled and prove byte-for-byte identical quotes, signatures and audit
logs (see ``tests/test_fastpath_determinism.py``).

The config is process-global on purpose: the caches it governs
(notably the verification memo) are shared across endpoints, and the
simulation never runs two differently-configured clouds that must
disagree about whether a pure memo is allowed.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Iterator

from repro.common.errors import ConfigurationError


@dataclass
class FastPathConfig:
    """Feature flags and sizing knobs for the crypto fast paths."""

    #: pre-generate attestation session keypairs in the Trust Module
    #: (same DRBG fork streams, pop order = session order)
    key_pool: bool = True
    #: how many session keys a pool refill pre-generates at once; 1 keeps
    #: steady-state cost identical to the unpooled path (generate on
    #: demand), larger batches amortise — benches and soak runs raise it
    key_pool_batch: int = 1
    #: generate pooled keys on a background worker thread (the DRBG fork
    #: itself always happens on the caller's thread, so determinism is
    #: unaffected by thread timing)
    key_pool_background: bool = False
    #: pre-generate pooled keys on a multiprocess worker farm (fork
    #: order still fixed on the caller's thread, results re-assembled in
    #: fork order, so pool contents are byte-identical to serial); on a
    #: single-core host the farm degrades to the serial path
    keygen_farm: bool = False
    #: farm size; 0 means one worker per available CPU
    keygen_farm_workers: int = 0
    #: raw modular exponentiation through the optional accelerated
    #: backend (GMP via ctypes when loadable — see repro.crypto.accel);
    #: bit-exact with ``pow`` by construction, so transcripts never move
    accel_backend: bool = False
    #: private-key ops via the pure-python Montgomery-form windowed walk
    #: (per-key precomputed constants; reference implementation for the
    #: bench sweep — CPython's C ``pow`` usually still wins)
    modexp_montgomery: bool = False
    #: private-key ops via plain fixed-window (k-ary) exponentiation
    #: with per-key precomputed exponent digits
    modexp_fixed_window: bool = False
    #: run each control-plane shard's deployment in a persistent forked
    #: worker process (repro.shard.parallel); the coordinator merges
    #: results and telemetry deltas in sorted shard-name order, so
    #: reports, cross-shard roots and flight records stay byte-identical
    #: to the serial in-process plane at any worker count
    shard_parallel: bool = False
    #: shard-executor worker count; 0 disables the forked path (serial
    #: in-process plane), N > 0 runs min(N, shards) workers with shards
    #: assigned round-robin in sorted name order
    shard_parallel_workers: int = 0
    #: memoise *successful* signature verifications keyed by
    #: (modulus, exponent, message digest, signature)
    verify_memo: bool = True
    #: bound on the verification memo (entries, LRU eviction)
    verify_memo_size: int = 4096
    #: cache the HKDF-derived enc/MAC subkeys on each SymmetricKey
    cache_symmetric_subkeys: bool = True
    #: cache per-endpoint encoded certificates / hello frames
    cache_wire_encodings: bool = True


_CONFIG = FastPathConfig()

#: process-global cache statistics (the verification memo has no
#: telemetry hub in scope; the Trust Module's key pool additionally
#: reports per-cloud counters through its own hub)
_STATS: dict[str, int] = {}


def config() -> FastPathConfig:
    """The active fast-path configuration."""
    return _CONFIG


def configure(**overrides: object) -> FastPathConfig:
    """Update fields of the active configuration in place.

    Disabling or resizing the verification memo clears it, so stale
    entries never outlive the policy that admitted them.
    """
    valid = {f.name for f in fields(FastPathConfig)}
    for name, value in overrides.items():
        if name not in valid:
            raise ConfigurationError(f"unknown fast-path option {name!r}")
        setattr(_CONFIG, name, value)
    if "verify_memo" in overrides or "verify_memo_size" in overrides:
        from repro.crypto import signatures

        signatures.clear_verify_memo()
    return _CONFIG


@contextmanager
def overridden(**overrides: object) -> Iterator[FastPathConfig]:
    """Temporarily reconfigure; restores the previous values on exit."""
    previous = {name: getattr(_CONFIG, name) for name in overrides}
    configure(**overrides)
    try:
        yield _CONFIG
    finally:
        configure(**previous)


def all_disabled(**extra: object):
    """Context manager: every fast path off (the pre-optimisation path)."""
    return overridden(
        key_pool=False,
        verify_memo=False,
        cache_symmetric_subkeys=False,
        cache_wire_encodings=False,
        keygen_farm=False,
        shard_parallel=False,
        accel_backend=False,
        modexp_montgomery=False,
        modexp_fixed_window=False,
        **extra,
    )


def record(stat: str, amount: int = 1) -> None:
    """Bump one process-global cache statistic."""
    _STATS[stat] = _STATS.get(stat, 0) + amount


def stats() -> dict[str, int]:
    """Sorted copy of the process-global cache statistics."""
    return dict(sorted(_STATS.items()))


def reset_stats() -> None:
    """Zero the statistics (benchmark harness bookends)."""
    _STATS.clear()
