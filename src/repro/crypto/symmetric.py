"""Authenticated symmetric encryption.

The SSL-like channels of paper Fig. 3 protect message bodies with
symmetric session keys (Kx, Ky, Kz). We build an authenticated cipher from
HMAC-SHA256 alone:

- **Keystream**: ``HMAC(enc_key, nonce || counter)`` blocks XORed over the
  plaintext (a counter-mode stream cipher).
- **Integrity**: encrypt-then-MAC with an independent MAC key; the tag
  covers nonce and ciphertext, so truncation, bit flips and nonce swaps
  are all rejected.

Encryption and MAC keys are derived from the session key with HKDF so a
single 32-byte session key is all the handshake must agree on.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.common.errors import CryptoError
from repro.crypto import fastpath
from repro.crypto.kdf import hkdf

_MAC_SIZE = 32
_NONCE_SIZE = 16
_BLOCK = 32


@dataclass(frozen=True)
class SymmetricKey:
    """A 32-byte symmetric session key with derived enc/MAC subkeys.

    The HKDF derivations are pure functions of ``material``, so they are
    cached per instance (every record seal/open needs both; re-deriving
    them dominated the record layer before the cache). The cache lives
    in the instance ``__dict__`` — a frozen dataclass only blocks
    ``__setattr__``, not direct dict writes.
    """

    material: bytes

    def __post_init__(self):
        if len(self.material) != 32:
            raise CryptoError("session keys must be 32 bytes")

    def _derived(self, attr: str, info: bytes) -> bytes:
        cached = self.__dict__.get(attr)
        if cached is not None:
            return cached
        subkey = hkdf(self.material, info, 32)
        if fastpath.config().cache_symmetric_subkeys:
            self.__dict__[attr] = subkey
        return subkey

    @property
    def enc_key(self) -> bytes:
        """Subkey for the keystream."""
        return self._derived("_enc_key", b"enc")

    @property
    def mac_key(self) -> bytes:
        """Subkey for the authentication tag."""
        return self._derived("_mac_key", b"mac")


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    stream = b""
    counter = 0
    while len(stream) < length:
        block = hmac.new(
            key, nonce + counter.to_bytes(8, "big"), hashlib.sha256
        ).digest()
        stream += block
        counter += 1
    return stream[:length]


def seal(key: SymmetricKey, plaintext: bytes, nonce: bytes) -> bytes:
    """Encrypt-then-MAC ``plaintext``; returns ``nonce || ct || tag``.

    The caller supplies the nonce (the secure channel uses a per-message
    counter-derived nonce); reusing a nonce with the same key voids
    confidentiality, so channels must never do that.
    """
    if len(nonce) != _NONCE_SIZE:
        raise CryptoError(f"nonce must be {_NONCE_SIZE} bytes")
    ciphertext = bytes(
        a ^ b for a, b in zip(plaintext, _keystream(key.enc_key, nonce, len(plaintext)))
    )
    tag = hmac.new(key.mac_key, nonce + ciphertext, hashlib.sha256).digest()
    return nonce + ciphertext + tag


def open_sealed(key: SymmetricKey, sealed: bytes) -> bytes:
    """Verify and decrypt a sealed message; raise ``CryptoError`` on tamper."""
    if len(sealed) < _NONCE_SIZE + _MAC_SIZE:
        raise CryptoError("sealed message too short")
    nonce = sealed[:_NONCE_SIZE]
    ciphertext = sealed[_NONCE_SIZE:-_MAC_SIZE]
    tag = sealed[-_MAC_SIZE:]
    expected = hmac.new(key.mac_key, nonce + ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        raise CryptoError("authentication tag mismatch: message tampered")
    return bytes(
        a ^ b for a, b in zip(ciphertext, _keystream(key.enc_key, nonce, len(ciphertext)))
    )
