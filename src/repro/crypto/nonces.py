"""Nonces and replay protection.

The protocol uses three nonces N1, N2, N3 — one per hop — so that each
entity can detect replays on its own channel (paper §3.4). A
:class:`NonceGenerator` mints fresh nonces from a DRBG; a
:class:`NonceCache` remembers what has been seen and raises
:class:`~repro.common.errors.ReplayError` on a repeat.
"""

from __future__ import annotations

from repro.common.errors import ReplayError
from repro.crypto.drbg import HmacDrbg

NONCE_SIZE = 16


class Nonce(bytes):
    """A 16-byte freshness value. Subclass of ``bytes`` for readability."""

    __slots__ = ()

    def __new__(cls, value: bytes):
        if len(value) != NONCE_SIZE:
            raise ValueError(f"nonce must be {NONCE_SIZE} bytes")
        return super().__new__(cls, value)

    def hex_short(self) -> str:
        """First 8 hex chars, for logs."""
        return self.hex()[:8]


class NonceGenerator:
    """Mints fresh nonces from a DRBG stream.

    Collisions are impossible in practice (128-bit values) and the DRBG
    never repeats its output stream, so generated nonces are unique per
    generator instance.
    """

    def __init__(self, drbg: HmacDrbg):
        self._drbg = drbg

    def fresh(self) -> Nonce:
        """Return a never-before-issued nonce."""
        return Nonce(self._drbg.generate(NONCE_SIZE))


class NonceCache:
    """Replay detector: each nonce may be accepted exactly once.

    A bounded FIFO window keeps memory constant over long simulations;
    the window must exceed the attacker's replay horizon, and the default
    of 65536 far exceeds any run in this reproduction.
    """

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._seen: dict[bytes, None] = {}  # insertion-ordered set

    def check_and_store(self, nonce: bytes) -> None:
        """Accept a fresh nonce or raise :class:`ReplayError` on a repeat."""
        if nonce in self._seen:
            raise ReplayError(f"nonce {nonce.hex()[:8]} replayed")
        self._seen[nonce] = None
        if len(self._seen) > self._capacity:
            oldest = next(iter(self._seen))
            del self._seen[oldest]

    def __contains__(self, nonce: bytes) -> bool:
        return nonce in self._seen

    def __len__(self) -> int:
        return len(self._seen)
