"""From-scratch cryptographic substrate.

The paper relies on standard crypto (SSL channels, RSA identity keys, TPM
quotes). Offline, we implement the required primitives ourselves:

- :mod:`repro.crypto.encoding` — canonical, deterministic serialization so
  signatures and quotes are computed over well-defined byte strings.
- :mod:`repro.crypto.hashing` — SHA-256 helpers and hash chains (the TPM
  ``extend`` operation).
- :mod:`repro.crypto.drbg` — deterministic random bit generator used for
  key material so whole-system runs are reproducible under a seed.
- :mod:`repro.crypto.primes` / :mod:`repro.crypto.rsa` — Miller-Rabin prime
  generation and RSA key generation / raw operations.
- :mod:`repro.crypto.signatures` — RSA signatures with SHA-256 and
  PKCS#1-v1.5-style padding.
- :mod:`repro.crypto.symmetric` — authenticated symmetric encryption
  (HMAC-SHA256 counter-mode keystream, encrypt-then-MAC).
- :mod:`repro.crypto.kdf` — HKDF-style key derivation for session keys.
- :mod:`repro.crypto.nonces` — nonce generation and replay caches.
- :mod:`repro.crypto.certificates` — public-key certificates and the
  certificate authority used as the paper's privacy CA.

These primitives are *functionally* real (forged signatures fail, replayed
nonces are caught, tampered ciphertexts are rejected) which is what the
protocol-security evaluation needs. They are not hardened against
side channels and must not be used outside this reproduction.
"""

from repro.crypto import fastpath
from repro.crypto.certificates import Certificate, CertificateAuthority
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keypool import KeyPool
from repro.crypto.encoding import decode, encode
from repro.crypto.hashing import HashChain, sha256, sha256_hex
from repro.crypto.kdf import hkdf
from repro.crypto.keys import KeyPair, RsaPrivateKey, RsaPublicKey
from repro.crypto.nonces import Nonce, NonceCache, NonceGenerator
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import sign, verify
from repro.crypto.symmetric import SymmetricKey, open_sealed, seal

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "HashChain",
    "HmacDrbg",
    "KeyPair",
    "KeyPool",
    "fastpath",
    "Nonce",
    "NonceCache",
    "NonceGenerator",
    "RsaPrivateKey",
    "RsaPublicKey",
    "SymmetricKey",
    "decode",
    "encode",
    "generate_keypair",
    "hkdf",
    "open_sealed",
    "seal",
    "sha256",
    "sha256_hex",
    "sign",
    "verify",
]
