"""Hashing helpers and hash chains.

The quote in the attestation protocol is ``Q = H(Vid || rM || M || N)``;
the TPM's platform configuration registers accumulate measurements as
``PCR <- H(PCR || measurement)``. Both are built here, on SHA-256 over the
canonical encoding from :mod:`repro.crypto.encoding`, so there is exactly
one way any structured value hashes.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.crypto.encoding import encode

DIGEST_SIZE = 32
"""Size in bytes of all digests produced by this module (SHA-256)."""


def sha256(*values: Any) -> bytes:
    """Hash one or more values canonically.

    Multiple values hash as the encoded tuple, so ``sha256(a, b)`` can
    never collide with ``sha256(ab)`` — the injectivity of the canonical
    encoding rules out concatenation ambiguity.
    """
    if len(values) == 1:
        payload = encode(values[0])
    else:
        payload = encode(list(values))
    return hashlib.sha256(payload).digest()


def sha256_hex(*values: Any) -> str:
    """Hex form of :func:`sha256`, convenient for reports and logs."""
    return sha256(*values).hex()


class HashChain:
    """An extend-only accumulator with TPM PCR semantics.

    The current value is ``H(previous || measurement)`` after each
    :meth:`extend`. Order matters and no extension can be undone, which is
    precisely the property measured boot relies on.
    """

    def __init__(self, initial: bytes = b"\x00" * DIGEST_SIZE):
        if len(initial) != DIGEST_SIZE:
            raise ValueError(f"initial value must be {DIGEST_SIZE} bytes")
        self._value = initial
        self._history: list[bytes] = []

    @property
    def value(self) -> bytes:
        """The current accumulated digest."""
        return self._value

    @property
    def history(self) -> tuple[bytes, ...]:
        """Digests extended so far, in order (the measurement log)."""
        return tuple(self._history)

    def extend(self, measurement: bytes) -> bytes:
        """Fold ``measurement`` into the chain and return the new value."""
        self._value = hashlib.sha256(self._value + measurement).digest()
        self._history.append(measurement)
        return self._value

    @staticmethod
    def replay(measurements: list[bytes], initial: bytes = b"\x00" * DIGEST_SIZE) -> bytes:
        """Compute the value a chain would have after the given extensions.

        Appraisers use this to check a measurement log against a quoted
        PCR value.
        """
        chain = HashChain(initial)
        for measurement in measurements:
            chain.extend(measurement)
        return chain.value
