"""Deterministic pre-generation of attestation session keypairs.

Per-session key generation {AVKs, ASKs} is the dominant cost of every
attestation round (paper §3.4.2, Fig. 9) — a Miller-Rabin loop in pure
Python on the protocol's critical path. The pool moves that loop off
the hot path without changing a single protocol byte:

**Determinism contract.** The pool draws each keypair from *exactly*
the DRBG fork stream the Trust Module would otherwise fork lazily
(``attest-session-{i}``, ``i`` counting from 1), and forks those
streams in strictly increasing ``i`` order on the caller's thread.
Because :meth:`HmacDrbg.fork` advances the parent state, fork *order*
is what fixes the key material — and pop order equals session order, so
session *i* receives the identical keypair whether the pool
pre-generated it minutes earlier, a worker thread computed it, or the
caller generates it on demand. The only observable difference is
wall-clock time.

The optional background mode (``fastpath.configure(
key_pool_background=True)``) forks the child DRBGs synchronously and
hands only the pure ``generate_keypair(child_drbg)`` computation to a
worker thread; thread scheduling can reorder *when* keys materialise,
never *which* keys they are.

The optional keygen farm (``fastpath.configure(keygen_farm=True)``)
parallelises prefill across worker *processes* under the same split:
forks happen here, in order, on the caller's thread; the farm only runs
the pure per-stream computation and hands results back in fork order
(:mod:`repro.crypto.keygen_farm`), so pool contents stay byte-identical
to serial generation.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Optional

from repro.crypto import fastpath, keygen_farm
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import KeyPair
from repro.crypto.rsa import generate_keypair
from repro.telemetry import NULL_TELEMETRY, Telemetry


class _PendingKey:
    """A forked DRBG stream whose keypair may materialise off-thread."""

    __slots__ = ("drbg", "bits", "result", "ready")

    def __init__(self, drbg: HmacDrbg, bits: int):
        self.drbg = drbg
        self.bits = bits
        self.result: Optional[KeyPair] = None
        self.ready = threading.Event()

    def compute(self) -> None:
        self.result = generate_keypair(self.drbg, self.bits)
        self.ready.set()

    def complete(self, keypair: KeyPair) -> None:
        """Adopt a keypair computed elsewhere (the keygen farm)."""
        self.result = keypair
        self.ready.set()

    def wait(self) -> KeyPair:
        self.ready.wait()
        assert self.result is not None
        return self.result


class KeyPool:
    """FIFO pool of pre-generated session keypairs for one Trust Module.

    ``take()`` returns the keypair for the next session index. Refills
    are triggered by :meth:`prefill` (explicit, e.g. benchmark warm-up)
    or by ``take()`` finding the pool empty, in which case it generates
    ``fastpath.config().key_pool_batch`` keys (the first synchronously
    consumed). Telemetry: ``crypto.keypool.hit`` (take served from a
    pre-generated key), ``crypto.keypool.miss`` (take had to generate),
    ``crypto.keypool.prefill`` (keys pre-generated ahead of use).
    """

    def __init__(
        self,
        drbg: HmacDrbg,
        key_bits: int,
        label_format: str = "attest-session-{i}",
        telemetry: Optional[Telemetry] = None,
    ):
        self._drbg = drbg
        self._key_bits = key_bits
        self._label_format = label_format
        self.telemetry = telemetry or NULL_TELEMETRY
        self._pending: Deque[_PendingKey] = deque()
        self._next_fork_index = 1
        self._taken = 0
        self._ever_prefilled = False
        self._worker: Optional[threading.Thread] = None
        self._work_queue: Deque[_PendingKey] = deque()
        self._work_signal = threading.Condition()

    # ------------------------------------------------------------------
    # fill paths
    # ------------------------------------------------------------------

    def _fork_next(self) -> HmacDrbg:
        """Fork the next session stream — always on the calling thread."""
        label = self._label_format.format(i=self._next_fork_index)
        self._next_fork_index += 1
        return self._drbg.fork(label)

    def prefill(self, count: int) -> int:
        """Pre-generate ``count`` keypairs ahead of demand.

        Returns the number actually added. With background mode on, the
        generation happens on the worker thread and ``take()`` blocks
        only if it outruns the worker.
        """
        if count <= 0:
            return 0
        config = fastpath.config()
        if config.keygen_farm and count > 1 and keygen_farm.available():
            # fork every stream first (order is the determinism
            # contract), then let the farm chew through the pure
            # computations in parallel; results come back in fork order
            pendings = [
                _PendingKey(self._fork_next(), self._key_bits)
                for _ in range(count)
            ]
            keypairs = keygen_farm.generate_batch(
                [pending.drbg for pending in pendings],
                self._key_bits,
                config.keygen_farm_workers,
            )
            for pending, keypair in zip(pendings, keypairs):
                pending.complete(keypair)
                self._pending.append(pending)
            fastpath.record("keypool.farm_prefill", count)
        else:
            background = config.key_pool_background
            for _ in range(count):
                pending = _PendingKey(self._fork_next(), self._key_bits)
                if background:
                    self._submit(pending)
                else:
                    pending.compute()
                self._pending.append(pending)
        self.telemetry.counter("crypto.keypool.prefill").inc(count)
        fastpath.record("keypool.prefill", count)
        self._ever_prefilled = True
        return count

    def take(self) -> KeyPair:
        """The keypair for the next attestation session, in order."""
        self._taken += 1
        if self._pending:
            pending = self._pending.popleft()
            keypair = pending.wait()
            self._hit()
            return keypair
        # empty pool: generate on demand; a batch > 1 additionally
        # pre-generates the following sessions' keys while we are here
        batch = max(1, int(fastpath.config().key_pool_batch))
        if self._ever_prefilled:
            # a warmed pool ran dry mid-run: the pipeline's prewarm
            # under-estimated the session count, and this round pays
            # on-demand keygen. The observatory alerts on this event.
            self.telemetry.counter("crypto.keypool.exhausted").inc()
            self.telemetry.observe_event(
                "keypool_exhausted",
                session_index=self._next_fork_index,
                taken=self._taken,
            )
            fastpath.record("keypool.exhausted")
        keypair = generate_keypair(self._fork_next(), self._key_bits)
        self.telemetry.counter("crypto.keypool.miss").inc()
        fastpath.record("keypool.miss")
        if batch > 1:
            self.prefill(batch - 1)
        return keypair

    def _hit(self) -> None:
        self.telemetry.counter("crypto.keypool.hit").inc()
        fastpath.record("keypool.hit")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def available(self) -> int:
        """Keys generated (or in flight) and not yet taken."""
        return len(self._pending)

    @property
    def taken(self) -> int:
        """Total keys handed out over the pool's lifetime."""
        return self._taken

    @property
    def next_session_index(self) -> int:
        """The session index the next un-pooled fork would receive."""
        return self._next_fork_index

    # ------------------------------------------------------------------
    # background worker
    # ------------------------------------------------------------------

    def _submit(self, pending: _PendingKey) -> None:
        with self._work_signal:
            if self._worker is None or not self._worker.is_alive():
                self._worker = threading.Thread(
                    target=self._work_loop, daemon=True, name="keypool-worker"
                )
                self._worker.start()
            self._work_queue.append(pending)
            self._work_signal.notify()

    def _work_loop(self) -> None:
        while True:
            with self._work_signal:
                while not self._work_queue:
                    # idle out after a grace period so test runs that
                    # spawn many pools do not accumulate sleeping threads
                    if not self._work_signal.wait(timeout=5.0):
                        self._worker = None
                        return
                pending = self._work_queue.popleft()
            pending.compute()
