"""Canonical deterministic serialization.

Signatures, quotes and MACs must be computed over an unambiguous byte
representation of structured data. This module implements a small
type-length-value (TLV) encoding over the JSON-ish data model used by the
protocol layer: ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``,
sequences and string-keyed mappings.

Properties:

- **Canonical** — equal values always encode to equal bytes; dict keys are
  sorted, so insertion order does not leak into signatures.
- **Injective** — distinct values encode to distinct bytes (types are
  tagged and lengths are explicit), so ``H(encode(a)) == H(encode(b))``
  implies ``a == b`` up to hash collisions. This prevents the classic
  ambiguity attacks on naive ``"||"``-concatenation hashing.
- **Invertible** — :func:`decode` restores the value, which the secure
  channel uses after decrypting a message body.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.common.errors import CryptoError

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"M"


def _len_prefix(payload: bytes) -> bytes:
    return struct.pack(">I", len(payload)) + payload


_PACK_LEN = struct.Struct(">I").pack
_PACK_FLOAT = struct.Struct(">d").pack


def _encode_scalar(value: Any) -> bytes | None:
    """Encode a leaf value, or ``None`` if it is a container/unsupported.

    This is the hot inner loop: protocol wire traffic is dominated by
    flat string-keyed dicts of scalars, which :func:`encode` serializes
    without a recursive call per field by trying this first.
    """
    if value is None:
        return _TAG_NONE
    if value is True:
        return _TAG_TRUE
    if value is False:
        return _TAG_FALSE
    cls = type(value)
    if cls is str:
        raw = value.encode("utf-8")
        return _TAG_STR + _PACK_LEN(len(raw)) + raw
    if cls is bytes:
        return _TAG_BYTES + _PACK_LEN(len(value)) + value
    if cls is int:
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        return _TAG_INT + _PACK_LEN(len(raw)) + raw
    if cls is float:
        return _TAG_FLOAT + _PACK_FLOAT(value)
    return None


def encode(value: Any) -> bytes:
    """Encode ``value`` into canonical bytes.

    Raises :class:`~repro.common.errors.CryptoError` for unsupported types
    rather than guessing at a representation.
    """
    scalar = _encode_scalar(value)
    if scalar is not None:
        return scalar
    if isinstance(value, int) and not isinstance(value, bool):
        # int subclasses (IntEnum etc.) miss the exact-type fast path
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        return _TAG_INT + _len_prefix(raw)
    if isinstance(value, float):
        return _TAG_FLOAT + _PACK_FLOAT(value)
    if isinstance(value, str):
        return _TAG_STR + _len_prefix(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return _TAG_BYTES + _len_prefix(bytes(value))
    if isinstance(value, (list, tuple)):
        parts = []
        for item in value:
            encoded = _encode_scalar(item)
            parts.append(encoded if encoded is not None else encode(item))
        body = b"".join(parts)
        return _TAG_LIST + _len_prefix(body)
    if isinstance(value, dict):
        parts = []
        for key in sorted(value):
            if not isinstance(key, str):
                raise CryptoError(f"dict keys must be str, got {type(key).__name__}")
            raw_key = key.encode("utf-8")
            parts.append(_TAG_STR + _PACK_LEN(len(raw_key)) + raw_key)
            item = value[key]
            encoded = _encode_scalar(item)
            parts.append(encoded if encoded is not None else encode(item))
        return _TAG_DICT + _len_prefix(b"".join(parts))
    raise CryptoError(f"cannot canonically encode {type(value).__name__}")


_MAX_DEPTH = 64
"""Nesting bound: protocol messages are shallow; a hostile blob nesting
thousands of containers must fail cleanly, not exhaust the stack."""


def decode(blob: bytes) -> Any:
    """Decode canonical bytes back into a value.

    Trailing garbage is rejected: the blob must be exactly one encoding.
    """
    value, offset = _decode_at(blob, 0)
    if offset != len(blob):
        raise CryptoError("trailing bytes after canonical encoding")
    return value


def _read_len(blob: bytes, offset: int) -> tuple[int, int]:
    if offset + 4 > len(blob):
        raise CryptoError("truncated length prefix")
    (length,) = struct.unpack_from(">I", blob, offset)
    offset += 4
    if offset + length > len(blob):
        raise CryptoError("truncated payload")
    return length, offset


def _decode_at(blob: bytes, offset: int, depth: int = 0) -> tuple[Any, int]:
    if depth > _MAX_DEPTH:
        raise CryptoError("encoding nests too deeply")
    if offset >= len(blob):
        raise CryptoError("truncated encoding")
    tag = blob[offset : offset + 1]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        length, offset = _read_len(blob, offset)
        raw = blob[offset : offset + length]
        return int.from_bytes(raw, "big", signed=True), offset + length
    if tag == _TAG_FLOAT:
        if offset + 8 > len(blob):
            raise CryptoError("truncated float")
        (value,) = struct.unpack_from(">d", blob, offset)
        return value, offset + 8
    if tag == _TAG_STR:
        length, offset = _read_len(blob, offset)
        raw = blob[offset : offset + length]
        try:
            return raw.decode("utf-8"), offset + length
        except UnicodeDecodeError as exc:
            raise CryptoError("string field is not valid UTF-8") from exc
    if tag == _TAG_BYTES:
        length, offset = _read_len(blob, offset)
        return blob[offset : offset + length], offset + length
    if tag == _TAG_LIST:
        length, offset = _read_len(blob, offset)
        end = offset + length
        items = []
        while offset < end:
            item, offset = _decode_at(blob, offset, depth + 1)
            items.append(item)
        if offset != end:
            raise CryptoError("malformed list body")
        return items, offset
    if tag == _TAG_DICT:
        length, offset = _read_len(blob, offset)
        end = offset + length
        result: dict[str, Any] = {}
        while offset < end:
            key, offset = _decode_at(blob, offset, depth + 1)
            if not isinstance(key, str):
                raise CryptoError("dict key is not a string")
            value, offset = _decode_at(blob, offset, depth + 1)
            result[key] = value
        if offset != end:
            raise CryptoError("malformed dict body")
        return result, offset
    raise CryptoError(f"unknown tag {tag!r}")
