"""HKDF-style key derivation (RFC 5869 shape, SHA-256)."""

from __future__ import annotations

import hashlib
import hmac

from repro.common.errors import CryptoError

_HASH_LEN = 32


def hkdf(master: bytes, info: bytes, length: int, salt: bytes = b"") -> bytes:
    """Derive ``length`` bytes from ``master`` for the context ``info``.

    Extract-then-expand: distinct ``info`` labels yield independent keys
    from one master secret, which is how session keys split into
    encryption and MAC subkeys.
    """
    if length <= 0 or length > 255 * _HASH_LEN:
        raise CryptoError("invalid HKDF output length")
    if not salt:
        salt = b"\x00" * _HASH_LEN
    prk = hmac.new(salt, master, hashlib.sha256).digest()
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = hmac.new(prk, block + info + bytes([counter]), hashlib.sha256).digest()
        output += block
        counter += 1
    return output[:length]
