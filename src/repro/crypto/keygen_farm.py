"""Multiprocess keygen farm: parallel keypair generation, serial bytes.

Key-pool prefill is embarrassingly parallel *after* the DRBG forks have
happened: each pooled session key is a pure function of its own forked
DRBG state. The farm exploits exactly that split:

1. The caller (always the pool's thread) forks the child DRBGs in
   strictly increasing session order — the only state mutation that
   matters for determinism, identical to the serial path.
2. The snapshot of each child's state is shipped to a worker process,
   which runs the same ``generate_keypair`` the serial path runs.
3. Results are re-assembled **in fork order** (the pool map preserves
   input order regardless of completion order), so the pool's contents
   are byte-identical to serial generation; which worker computed which
   key affects wall-clock only.

The pool plumbing itself lives in :mod:`repro.common.procpool` (shared
with the parallel shard executor). On spawn-only platforms — no
``fork`` start method — a parallel request degrades gracefully to the
serial loop (same bytes, no processes) and bumps the
``keygen_farm.serial_fallback`` fast-path statistic once per batch so
operators can see the farm never actually engaged.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.common import procpool
from repro.crypto import fastpath
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import KeyPair, RsaPrivateKey, RsaPublicKey
from repro.crypto.rsa import generate_keypair


def available() -> bool:
    """Whether the multiprocess path can run on this host."""
    return procpool.fork_available()


def resolve_workers(requested: int, jobs: int) -> int:
    """Farm size for ``jobs`` keys: requested, else one per CPU."""
    return procpool.resolve_workers(requested, jobs)


def _generate_one(task: tuple[HmacDrbg, int]) -> tuple[int, int, int, int, int]:
    """Worker body: run the serial keygen on one pre-forked DRBG.

    Returns plain integers rather than the dataclasses so the parent
    re-runs the eager per-key precompute itself — child-side ``__dict__``
    caches never cross the process boundary.
    """
    drbg, bits = task
    pair = generate_keypair(drbg, bits)
    private = pair.private
    return (private.n, pair.public.e, private.d, private.p, private.q)


def _rebuild(raw: tuple[int, int, int, int, int]) -> KeyPair:
    n, e, d, p, q = raw
    return KeyPair(
        public=RsaPublicKey(n=n, e=e),
        private=RsaPrivateKey(n=n, d=d, p=p, q=q),
    )


def _record_fallback() -> None:
    """Count one parallel request that degraded to the serial loop."""
    fastpath.record("keygen_farm.serial_fallback")


def generate_batch(
    drbgs: list[HmacDrbg], bits: int, workers: int = 0
) -> list[KeyPair]:
    """Generate one keypair per (already-forked) DRBG, farm-parallel.

    ``drbgs[i]`` must be the exact stream the serial path would have
    used for slot ``i``; the result list is index-aligned with it.
    A multi-worker request on a host without ``fork`` runs serially
    and records ``keygen_farm.serial_fallback``.
    """
    count = len(drbgs)
    if count == 0:
        return []
    workers = resolve_workers(workers, count)
    if workers > 1 and not available():
        _record_fallback()
        workers = 1
    if workers <= 1:
        return [generate_keypair(drbg, bits) for drbg in drbgs]
    tasks = [(drbg, bits) for drbg in drbgs]
    # chunksize=1: keygen latency is heavy-tailed (candidate count is
    # geometric), so fine-grained dispatch keeps the farm load-balanced
    raw = procpool.map_forked(
        _generate_one, tasks, workers=workers, chunksize=1,
        on_fallback=_record_fallback,
    )
    return [_rebuild(entry) for entry in raw]


def farm_config() -> Optional[dict]:
    """Introspection for benchmarks: resolved farm shape, or ``None``."""
    if not available():
        return None
    return {"cpus": os.cpu_count() or 1, "start_method": "fork"}
