"""Multiprocess keygen farm: parallel keypair generation, serial bytes.

Key-pool prefill is embarrassingly parallel *after* the DRBG forks have
happened: each pooled session key is a pure function of its own forked
DRBG state. The farm exploits exactly that split:

1. The caller (always the pool's thread) forks the child DRBGs in
   strictly increasing session order — the only state mutation that
   matters for determinism, identical to the serial path.
2. The snapshot of each child's state is shipped to a worker process,
   which runs the same ``generate_keypair`` the serial path runs.
3. Results are re-assembled **in fork order** (``Pool.map`` preserves
   input order regardless of completion order), so the pool's contents
   are byte-identical to serial generation; which worker computed which
   key affects wall-clock only.

The farm uses the ``fork`` start method (cheap, inherits the live
``fastpath`` configuration so workers use the same modexp engine as the
parent). Where ``fork`` is unavailable (non-POSIX) or a single worker
is requested, :func:`generate_batch` degrades to the serial loop — same
bytes, no processes.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Optional

from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import KeyPair, RsaPrivateKey, RsaPublicKey
from repro.crypto.rsa import generate_keypair


def available() -> bool:
    """Whether the multiprocess path can run on this host."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


def resolve_workers(requested: int, jobs: int) -> int:
    """Farm size for ``jobs`` keys: requested, else one per CPU."""
    workers = requested if requested > 0 else (os.cpu_count() or 1)
    return max(1, min(workers, jobs))


def _generate_one(task: tuple[HmacDrbg, int]) -> tuple[int, int, int, int, int]:
    """Worker body: run the serial keygen on one pre-forked DRBG.

    Returns plain integers rather than the dataclasses so the parent
    re-runs the eager per-key precompute itself — child-side ``__dict__``
    caches never cross the process boundary.
    """
    drbg, bits = task
    pair = generate_keypair(drbg, bits)
    private = pair.private
    return (private.n, pair.public.e, private.d, private.p, private.q)


def _rebuild(raw: tuple[int, int, int, int, int]) -> KeyPair:
    n, e, d, p, q = raw
    return KeyPair(
        public=RsaPublicKey(n=n, e=e),
        private=RsaPrivateKey(n=n, d=d, p=p, q=q),
    )


def generate_batch(
    drbgs: list[HmacDrbg], bits: int, workers: int = 0
) -> list[KeyPair]:
    """Generate one keypair per (already-forked) DRBG, farm-parallel.

    ``drbgs[i]`` must be the exact stream the serial path would have
    used for slot ``i``; the result list is index-aligned with it.
    """
    count = len(drbgs)
    if count == 0:
        return []
    workers = resolve_workers(workers, count)
    if workers <= 1 or not available():
        return [generate_keypair(drbg, bits) for drbg in drbgs]
    context = multiprocessing.get_context("fork")
    tasks = [(drbg, bits) for drbg in drbgs]
    # chunksize=1: keygen latency is heavy-tailed (candidate count is
    # geometric), so fine-grained dispatch keeps the farm load-balanced
    with context.Pool(processes=workers) as pool:
        raw = pool.map(_generate_one, tasks, chunksize=1)
    return [_rebuild(entry) for entry in raw]


def farm_config() -> Optional[dict]:
    """Introspection for benchmarks: resolved farm shape, or ``None``."""
    if not available():
        return None
    return {"cpus": os.cpu_count() or 1, "start_method": "fork"}
