"""RSA public-key encryption (key transport for session establishment).

PKCS#1-v1.5-style encryption padding: ``0x00 0x02 <nonzero random pad>
0x00 <message>``. Used solely to transport the 32-byte session seed
during the secure-channel handshake, mirroring TLS RSA key exchange.
"""

from __future__ import annotations

from repro.common.errors import CryptoError
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import RsaPrivateKey, RsaPublicKey
from repro.crypto.rsa import private_op, public_op

_MIN_PAD = 8


def public_encrypt(key: RsaPublicKey, message: bytes, drbg: HmacDrbg) -> bytes:
    """Encrypt ``message`` to the key holder. Random pad from ``drbg``."""
    modulus_bytes = (key.n.bit_length() + 7) // 8
    pad_len = modulus_bytes - len(message) - 3
    if pad_len < _MIN_PAD:
        raise CryptoError("message too long for RSA modulus")
    pad = bytearray()
    while len(pad) < pad_len:
        pad.extend(b for b in drbg.generate(pad_len - len(pad)) if b != 0)
    block = b"\x00\x02" + bytes(pad[:pad_len]) + b"\x00" + message
    value = public_op(key, int.from_bytes(block, "big"))
    return value.to_bytes(modulus_bytes, "big")


def private_decrypt(key: RsaPrivateKey, ciphertext: bytes) -> bytes:
    """Decrypt a :func:`public_encrypt` ciphertext; raises on bad padding."""
    modulus_bytes = (key.n.bit_length() + 7) // 8
    if len(ciphertext) != modulus_bytes:
        raise CryptoError("ciphertext length does not match modulus")
    value = int.from_bytes(ciphertext, "big")
    if value >= key.n:
        raise CryptoError("ciphertext out of range")
    block = private_op(key, value).to_bytes(modulus_bytes, "big")
    if block[0:2] != b"\x00\x02":
        raise CryptoError("invalid encryption padding")
    try:
        separator = block.index(0, 2)
    except ValueError as exc:
        raise CryptoError("missing padding separator") from exc
    if separator < 2 + _MIN_PAD:
        raise CryptoError("padding too short")
    return block[separator + 1 :]
