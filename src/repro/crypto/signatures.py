"""RSA signatures over canonical encodings.

Sign/verify with SHA-256 and a PKCS#1-v1.5-style padding: the message is
canonically encoded, hashed, and the digest is embedded in a full-width
padded block before the private-key operation. Verification recomputes the
expected block and compares in full — any bit flip in message or signature
fails, which is what the Dolev-Yao evaluation depends on.

**Verification memo.** Certificates and session keys are re-verified many
times per run (every appraisal re-checks the pCA chain; every handshake
re-checks the peer certificate). Verification is a pure function of
``(modulus, exponent, message digest, signature)``, so successful
verifications are memoised under that full key in a bounded LRU. The memo
may cache only *successes*: a failure must re-raise through the full code
path every time, both so the error message always reflects the actual
mismatch and so a negative result can never be consulted for a different
(digest, signature) pair. Gated by ``fastpath.config().verify_memo``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.common.errors import SignatureError
from repro.crypto import fastpath
from repro.crypto.encoding import encode
from repro.crypto.hashing import sha256
from repro.crypto.keys import RsaPrivateKey, RsaPublicKey
from repro.crypto.rsa import private_op, public_op

# DER prefix for a SHA-256 DigestInfo, as in real PKCS#1 v1.5 signatures.
_SHA256_PREFIX = bytes.fromhex("3031300d060960864801650304020105000420")

#: successful verifications, keyed (n, e, digest, signature); LRU-bounded
_VERIFY_MEMO: OrderedDict[tuple[int, int, bytes, bytes], None] = OrderedDict()


def clear_verify_memo() -> None:
    """Drop all memoised verifications (reconfiguration / test bookends)."""
    _VERIFY_MEMO.clear()


def _padded_digest_block(digest: bytes, modulus_bytes: int) -> int:
    """The PKCS#1-style block for an already-computed SHA-256 digest."""
    digest_info = _SHA256_PREFIX + digest
    pad_len = modulus_bytes - len(digest_info) - 3
    if pad_len < 8:
        raise SignatureError("modulus too small for SHA-256 signature block")
    block = b"\x00\x01" + b"\xff" * pad_len + b"\x00" + digest_info
    return int.from_bytes(block, "big")


def _padded_digest(message: Any, modulus_bytes: int) -> int:
    return _padded_digest_block(sha256(message), modulus_bytes)


def sign(key: RsaPrivateKey, message: Any) -> bytes:
    """Sign any canonically encodable ``message`` with the private key."""
    modulus_bytes = (key.n.bit_length() + 7) // 8
    block = _padded_digest(message, modulus_bytes)
    signature = private_op(key, block)
    return signature.to_bytes(modulus_bytes, "big")


def verify(key: RsaPublicKey, message: Any, signature: bytes) -> None:
    """Verify a signature; raise :class:`SignatureError` on any mismatch.

    Raising (rather than returning ``bool``) keeps protocol code honest:
    a forgotten check fails loudly instead of silently accepting.
    """
    modulus_bytes = (key.n.bit_length() + 7) // 8
    if len(signature) != modulus_bytes:
        raise SignatureError("signature length does not match modulus")
    value = int.from_bytes(signature, "big")
    if value >= key.n:
        raise SignatureError("signature out of range")
    digest = sha256(message)
    memo_enabled = fastpath.config().verify_memo
    memo_key = (key.n, key.e, digest, signature)
    if memo_enabled and memo_key in _VERIFY_MEMO:
        _VERIFY_MEMO.move_to_end(memo_key)
        fastpath.record("verify_memo.hit")
        return
    expected = _padded_digest_block(digest, modulus_bytes)
    recovered = public_op(key, value)
    if recovered != expected:
        raise SignatureError("signature verification failed")
    if memo_enabled:
        fastpath.record("verify_memo.miss")
        _VERIFY_MEMO[memo_key] = None
        if len(_VERIFY_MEMO) > fastpath.config().verify_memo_size:
            _VERIFY_MEMO.popitem(last=False)


def is_valid(key: RsaPublicKey, message: Any, signature: bytes) -> bool:
    """Boolean convenience around :func:`verify` for report code."""
    try:
        verify(key, message, signature)
    except SignatureError:
        return False
    return True


def signed_payload(message: Any) -> bytes:
    """The exact bytes that :func:`sign` hashes, exposed for tests."""
    return encode(message)
