"""Measurement accumulation across periodic attestation rounds.

Paper §3.2.1: "the customer can ask for periodic attestations... The
cloud server supplies the measurements, and the Attestation Server
accumulates and interprets the measurements periodically."

Why accumulate: a single short testing window may catch too few
contention events to judge confidently (the covert-channel interpreter
refuses to convict on a handful of intervals). Merging rounds grows the
sample until the verdict is statistically supportable — without
lengthening any individual window, so the per-round overhead stays at
the Fig. 10 level.

Merge rules by measurement family:

- histograms (``perf.*``) — element-wise sum (counts and durations add);
- CPU usage — a **sliding window** of the most recent rounds is summed
  (unbounded summation would dilute a fresh starvation under hours of
  healthy history; a bounded window smooths single-round noise while
  staying responsive to the §4.5 attack);
- task/module lists — latest snapshot wins, plus the union of every
  name ever seen (``*_ever_seen``), so a transient process that appears
  in one round is not lost;
- integrity evidence — latest snapshot wins (boot state is not additive).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.identifiers import VmId
from repro.monitors.monitor_module import (
    MEAS_BUS_LOCK_HISTOGRAM,
    MEAS_CPU_INTERVAL_HISTOGRAM,
    MEAS_CPU_USAGE,
    MEAS_KERNEL_MODULES,
    MEAS_TASK_LIST,
)
from repro.properties.catalog import SecurityProperty

_HISTOGRAMS = (MEAS_CPU_INTERVAL_HISTOGRAM, MEAS_BUS_LOCK_HISTOGRAM)

CPU_USAGE_WINDOW_ROUNDS = 3
"""How many recent rounds the CPU-usage sliding window spans."""


@dataclass
class _Accumulated:
    rounds: int = 0
    merged: dict[str, Any] = field(default_factory=dict)


class MeasurementAccumulator:
    """Per-(VM, property) measurement merging."""

    def __init__(self):
        self._state: dict[tuple[VmId, str], _Accumulated] = {}

    def add(
        self, vid: VmId, prop: SecurityProperty, measurements: dict[str, Any]
    ) -> dict[str, Any]:
        """Fold one round's measurements in; returns the merged view."""
        state = self._state.setdefault((vid, prop.value), _Accumulated())
        state.rounds += 1
        for name, value in measurements.items():
            state.merged[name] = self._merge(name, state.merged.get(name), value)
        return dict(state.merged)

    @staticmethod
    def _merge(name: str, existing: Any, value: Any) -> Any:
        if existing is None:
            if name == MEAS_TASK_LIST:
                return {
                    "latest": value,
                    "ever_seen": sorted({t["name"] for t in value}),
                }
            if name == MEAS_CPU_USAGE:
                return {"windows": [dict(value)]}
            return value
        if name in _HISTOGRAMS:
            return [a + b for a, b in zip(existing, value)]
        if name == MEAS_CPU_USAGE:
            windows = list(existing["windows"]) + [dict(value)]
            return {"windows": windows[-CPU_USAGE_WINDOW_ROUNDS:]}
        if name == MEAS_TASK_LIST:
            ever = set(existing["ever_seen"]) | {t["name"] for t in value}
            return {"latest": value, "ever_seen": sorted(ever)}
        if name == MEAS_KERNEL_MODULES:
            return sorted(set(existing) | set(value))
        return value  # latest wins (integrity snapshots etc.)

    def accumulated(
        self, vid: VmId, prop: SecurityProperty
    ) -> dict[str, Any] | None:
        """The merged measurements so far, or None if nothing recorded."""
        state = self._state.get((vid, prop.value))
        if state is None:
            return None
        merged = dict(state.merged)
        # present task lists in the interpreter's expected shape
        if MEAS_TASK_LIST in merged and isinstance(merged[MEAS_TASK_LIST], dict):
            merged[MEAS_TASK_LIST] = merged[MEAS_TASK_LIST]["latest"]
        # present CPU usage as the summed sliding window
        if MEAS_CPU_USAGE in merged and "windows" in merged[MEAS_CPU_USAGE]:
            windows = merged[MEAS_CPU_USAGE]["windows"]
            merged[MEAS_CPU_USAGE] = {
                "cpu_ms": sum(w["cpu_ms"] for w in windows),
                "wall_ms": sum(w["wall_ms"] for w in windows),
                "wait_ms": sum(w.get("wait_ms", 0.0) for w in windows),
            }
        return merged

    def ever_seen_tasks(self, vid: VmId, prop: SecurityProperty) -> list[str]:
        """Every task name observed across all rounds."""
        state = self._state.get((vid, prop.value))
        if state is None or MEAS_TASK_LIST not in state.merged:
            return []
        return list(state.merged[MEAS_TASK_LIST]["ever_seen"])

    def rounds(self, vid: VmId, prop: SecurityProperty) -> int:
        """How many rounds have been folded in."""
        state = self._state.get((vid, prop.value))
        return state.rounds if state else 0

    def reset(self, vid: VmId, prop: SecurityProperty | None = None) -> None:
        """Drop accumulated state for one VM (optionally one property)."""
        keys = [
            key
            for key in self._state
            if key[0] == vid and (prop is None or key[1] == prop.value)
        ]
        for key in keys:
            del self._state[key]
