"""The privacy Certificate Authority entity.

Paper §3.2.3/§3.4.2: the pCA issues public-key certificates binding keys
to machines, and certifies per-session attestation keys *anonymously* so
attestation traffic cannot be used to locate which server hosts a VM.

The pCA is a trusted server with its own network endpoint; cloud servers
reach it during step ③ of the attestation flow.
"""

from __future__ import annotations

from repro.common.errors import ProtocolError
from repro.crypto.certificates import CertificateAuthority, certificate_to_dict
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import RsaPublicKey
from repro.network.network import Network
from repro.network.secure_channel import SecureEndpoint

PCA_ENDPOINT = "pca"


class PrivacyCA:
    """Network frontend over a :class:`CertificateAuthority`.

    The same CA root also signs the channel-identity certificates of all
    entities (it is the cloud's certificate infrastructure); this class
    adds the attestation-key certification service on the wire.
    """

    def __init__(
        self,
        network: Network,
        drbg: HmacDrbg,
        ca: CertificateAuthority,
        key_bits: int = 1024,
    ):
        self.ca = ca
        self.endpoint = SecureEndpoint(
            PCA_ENDPOINT, network, drbg.fork("endpoint"), ca, key_bits=key_bits
        )
        self.endpoint.handler = self._handle
        #: count of certificates issued (for the evaluation)
        self.certificates_issued = 0

    def enroll_server(self, server_name: str, identity_key: RsaPublicKey) -> None:
        """Trusted setup: register a Trust Module's identity key.

        Happens once when a secure server is deployed in the data center.
        """
        self.ca.enroll(server_name, identity_key)

    @property
    def public_key(self) -> RsaPublicKey:
        """The CA verification key all relying parties hold."""
        return self.ca.public_key

    def _handle(self, peer: str, body: dict) -> dict:
        if body.get("type") != "certify_attestation_key":
            raise ProtocolError(f"pCA: unknown request {body.get('type')!r}")
        # the channel authenticated `peer`; require the claim to match it,
        # so one server cannot obtain certificates in another's name
        if body.get("server") != peer:
            raise ProtocolError("pCA: server name does not match channel identity")
        attestation_key = RsaPublicKey.from_dict(body["attestation_key"])
        certificate = self.ca.certify_attestation_key(
            peer, attestation_key, bytes(body["endorsement"])
        )
        self.certificates_issued += 1
        return {"certificate": certificate_to_dict(certificate)}
