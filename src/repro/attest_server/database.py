"""The attestation server's database (``oat database``).

Holds what the appraiser and interpreter need about cloud servers, and
an append-only audit log of attestation outcomes (the paper's periodic
attestation mode accumulates measurements here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import StateError
from repro.common.identifiers import ServerId, VmId
from repro.properties.catalog import SecurityProperty


@dataclass
class ServerEntry:
    """What the attestation server knows about one cloud server."""

    server_id: ServerId
    supported_measurements: set[str]
    enrolled: bool = True


@dataclass(frozen=True)
class AttestationLogRecord:
    """One completed attestation, for auditing and accumulation."""

    time_ms: float
    vid: VmId
    server: ServerId
    prop: SecurityProperty
    healthy: bool
    #: the property's headline metric, when it has one (relative CPU
    #: usage for availability) — the input to trend analysis
    metric: float | None = None


@dataclass
class OatDatabase:
    """Server registry + attestation audit log."""

    _servers: dict[ServerId, ServerEntry] = field(default_factory=dict)
    log: list[AttestationLogRecord] = field(default_factory=list)

    def register_server(
        self, server_id: ServerId, supported_measurements: list[str]
    ) -> None:
        """Record a cloud server's monitoring capabilities."""
        self._servers[server_id] = ServerEntry(
            server_id=server_id,
            supported_measurements=set(supported_measurements),
        )

    def server(self, server_id: ServerId) -> ServerEntry:
        """Look up a server; raises if unknown."""
        if server_id not in self._servers:
            raise StateError(f"attestation server does not know {server_id!r}")
        return self._servers[server_id]

    def knows_server(self, server_id: ServerId) -> bool:
        """Whether the server is registered."""
        return server_id in self._servers

    def supports(self, server_id: ServerId, measurements: tuple[str, ...]) -> bool:
        """Whether a server can produce all listed measurements."""
        entry = self.server(server_id)
        return set(measurements) <= entry.supported_measurements

    def record(self, record: AttestationLogRecord) -> None:
        """Append an attestation outcome to the audit log."""
        self.log.append(record)

    def history(
        self, vid: VmId, prop: SecurityProperty | None = None
    ) -> list[AttestationLogRecord]:
        """Audit-log slice for one VM (optionally one property)."""
        return [
            r
            for r in self.log
            if r.vid == vid and (prop is None or r.prop == prop)
        ]
