"""The appraiser: runs the measurement round and validates the response.

Everything that makes the cloud server's answer trustworthy is checked
here, in one place:

1. the session certificate chains to the privacy CA (so the attester is
   *some* enrolled CloudMonatt server, anonymously);
2. the signature over (Vid, rM, M, N3, Q3) verifies under the certified
   session key AVKs;
3. the echoed nonce equals the fresh N3 this request minted (replay);
4. the quote recomputes: Q3 = H(Vid‖rM‖M‖N3) (binding);
5. the response answers exactly the measurements requested.

Any failure raises; the attestation server converts that into a failed
attestation rather than a forged "healthy" report.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import ProtocolError, ReplayError, SignatureError
from repro.common.identifiers import ServerId, VmId
from repro.crypto.certificates import certificate_from_dict
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import RsaPublicKey
from repro.crypto.nonces import NonceCache, NonceGenerator
from repro.crypto.signatures import verify
from repro.crypto.certificates import verify_certificate
from repro.lifecycle.timing import CostModel
from repro.network.secure_channel import SecureEndpoint
from repro.protocol import messages as msg
from repro.protocol.quotes import attestation_quote, merkle_root
from repro.resilience import RetryExecutor, RetryPolicy
from repro.telemetry import KEY_TRACE, NULL_TELEMETRY, SPAN_Q3, Telemetry


class OatAppraiser:
    """Measurement collection + cryptographic validation."""

    def __init__(
        self,
        endpoint: SecureEndpoint,
        ca_public_key: RsaPublicKey,
        drbg: HmacDrbg,
        cost_model: CostModel,
        check_signatures: bool = True,
        check_nonces: bool = True,
        telemetry: "Telemetry | None" = None,
        retry_policy: "RetryPolicy | None" = None,
    ):
        self._endpoint = endpoint
        self._ca_key = ca_public_key
        self._nonces = NonceGenerator(drbg.fork("n3"))
        self._seen_nonces = NonceCache()
        self.cost = cost_model
        self.telemetry = telemetry or NULL_TELEMETRY
        # NOTE: appended after the n3 fork so the nonce stream stays
        # byte-identical across library versions
        self._retry = RetryExecutor(
            engine=cost_model.engine,
            drbg=drbg.fork("retry"),
            policy=retry_policy,
            telemetry=self.telemetry,
            site="as.appraiser",
        )
        # ablation switches (security evaluation: what breaks without them)
        self.check_signatures = check_signatures
        self.check_nonces = check_nonces

    def collect(
        self,
        server: ServerId,
        vid: VmId,
        measurements: tuple[str, ...],
        window_ms: float,
        params: dict | None = None,
    ) -> dict[str, Any]:
        """One full measurement round; returns validated measurements M.

        Transport failures retry with a fresh nonce N3 per attempt
        (each retry is a new measurement round); validation failures
        are not retried — a response that fails its crypto checks is
        evidence, not noise.
        """

        def attempt() -> tuple[bytes, dict]:
            fresh = self._nonces.fresh()
            request = {
                msg.KEY_TYPE: msg.MSG_MEASURE_REQUEST,
                msg.KEY_VID: str(vid),
                msg.KEY_REQUESTED: list(measurements),
                msg.KEY_NONCE: bytes(fresh),
                msg.KEY_WINDOW: window_ms,
                "params": params or {},
            }
            context = self.telemetry.context()
            if context is not None:
                request[KEY_TRACE] = context
            return bytes(fresh), self._endpoint.call(str(server), request)

        with self.telemetry.span(
            SPAN_Q3, server=str(server), vid=str(vid)
        ):
            nonce, response = self._retry.run(attempt)
        msg.require_fields(
            response,
            msg.KEY_VID,
            msg.KEY_REQUESTED,
            msg.KEY_MEASUREMENTS,
            msg.KEY_NONCE,
            msg.KEY_QUOTE,
            msg.KEY_SIGNATURE,
            msg.KEY_SESSION_CERT,
        )
        returned_measurements = response[msg.KEY_MEASUREMENTS]
        returned_nonce = bytes(response[msg.KEY_NONCE])

        if self.check_nonces:
            if returned_nonce != bytes(nonce):
                raise ReplayError("cloud server echoed a stale nonce")
            self._seen_nonces.check_and_store(returned_nonce)

        # certificate chain: AVKs certified by the pCA
        session_cert = certificate_from_dict(response[msg.KEY_SESSION_CERT])
        if self.check_signatures:
            self.cost.charge("verify_signature")
            verify_certificate(self._ca_key, session_cert)
            payload = {
                msg.KEY_VID: response[msg.KEY_VID],
                msg.KEY_REQUESTED: response[msg.KEY_REQUESTED],
                msg.KEY_MEASUREMENTS: returned_measurements,
                msg.KEY_NONCE: returned_nonce,
                msg.KEY_QUOTE: bytes(response[msg.KEY_QUOTE]),
            }
            self.cost.charge("verify_signature")
            verify(
                session_cert.public_key, payload, bytes(response[msg.KEY_SIGNATURE])
            )

        # quote binding
        expected_quote = attestation_quote(
            str(vid),
            list(measurements),
            returned_measurements,
            returned_nonce,
            telemetry=self.telemetry,
        )
        if bytes(response[msg.KEY_QUOTE]) != expected_quote:
            raise SignatureError("quote Q3 does not bind the returned measurements")

        if response[msg.KEY_VID] != str(vid):
            raise ProtocolError("response names a different VM")
        if list(response[msg.KEY_REQUESTED]) != list(measurements):
            raise ProtocolError("response answers different measurements")
        missing = set(measurements) - set(returned_measurements)
        if missing:
            raise ProtocolError(f"measurements missing from response: {missing}")
        return returned_measurements

    def collect_batch(
        self,
        server: ServerId,
        vids: list[VmId],
        measurements: tuple[str, ...],
        window_ms: float,
        params: dict | None = None,
    ) -> list[dict[str, Any]]:
        """One coalesced measurement round for many VMs on one server.

        Every entry still gets its own fresh N3 and its own Q3 leaf; one
        certificate-chain check and one signature verification cover the
        whole batch, because the single session-key signature binds the
        Merkle root over the per-entry leaves. Deliberately *not*
        retried here: a transport failure surfaces to the caller, which
        falls back to per-round :meth:`collect` so retries target the
        logical round rather than the shared batch.
        """
        nonces = [bytes(self._nonces.fresh()) for _ in vids]
        entries = [
            {
                msg.KEY_VID: str(vid),
                msg.KEY_REQUESTED: list(measurements),
                msg.KEY_NONCE: nonce,
            }
            for vid, nonce in zip(vids, nonces)
        ]
        request = {
            msg.KEY_TYPE: msg.MSG_MEASURE_BATCH_REQUEST,
            msg.KEY_ENTRIES: entries,
            msg.KEY_WINDOW: window_ms,
            "params": params or {},
        }
        context = self.telemetry.context()
        if context is not None:
            request[KEY_TRACE] = context
        with self.telemetry.span(
            SPAN_Q3, server=str(server), vid=f"batch:{len(vids)}"
        ):
            response = self._endpoint.call(str(server), request)
        msg.require_fields(
            response,
            msg.KEY_ENTRIES,
            msg.KEY_BATCH_ROOT,
            msg.KEY_SIGNATURE,
            msg.KEY_SESSION_CERT,
        )
        out_entries = list(response[msg.KEY_ENTRIES])
        if len(out_entries) != len(vids):
            raise ProtocolError("batch response entry count mismatch")

        session_cert = certificate_from_dict(response[msg.KEY_SESSION_CERT])
        batch_root = bytes(response[msg.KEY_BATCH_ROOT])
        if self.check_signatures:
            self.cost.charge("verify_signature")
            verify_certificate(self._ca_key, session_cert)
            self.cost.charge("verify_signature")
            verify(
                session_cert.public_key,
                {msg.KEY_ENTRIES: out_entries, msg.KEY_BATCH_ROOT: batch_root},
                bytes(response[msg.KEY_SIGNATURE]),
            )

        results: list[dict[str, Any]] = []
        leaves: list[bytes] = []
        for vid, nonce, entry in zip(vids, nonces, out_entries):
            msg.require_fields(
                entry,
                msg.KEY_VID,
                msg.KEY_REQUESTED,
                msg.KEY_MEASUREMENTS,
                msg.KEY_NONCE,
                msg.KEY_QUOTE,
            )
            returned = entry[msg.KEY_MEASUREMENTS]
            returned_nonce = bytes(entry[msg.KEY_NONCE])
            if self.check_nonces:
                if returned_nonce != nonce:
                    raise ReplayError("cloud server echoed a stale nonce")
                self._seen_nonces.check_and_store(returned_nonce)
            expected_quote = attestation_quote(
                str(vid), list(measurements), returned, returned_nonce,
                telemetry=self.telemetry,
            )
            if bytes(entry[msg.KEY_QUOTE]) != expected_quote:
                raise SignatureError(
                    "quote Q3 does not bind the returned measurements"
                )
            if entry[msg.KEY_VID] != str(vid):
                raise ProtocolError("batch entry names a different VM")
            if list(entry[msg.KEY_REQUESTED]) != list(measurements):
                raise ProtocolError("batch entry answers different measurements")
            missing = set(measurements) - set(returned)
            if missing:
                raise ProtocolError(f"measurements missing from response: {missing}")
            leaves.append(expected_quote)
            results.append(returned)
        if merkle_root(leaves, telemetry=self.telemetry) != batch_root:
            raise SignatureError("batch root does not bind the per-entry quotes")
        return results
