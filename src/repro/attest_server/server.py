"""The Attestation Server entity.

Serves the Cloud Controller's attestation requests: looks up the target
server's capabilities, drives the appraiser's measurement round, runs
property interpretation, and returns the report R signed under its
identity key with quote Q2 = H(Vid‖I‖P‖R‖N2) — the middle hop of the
protocol in paper Fig. 3.
"""

from __future__ import annotations

from repro.attest_server.accumulator import MeasurementAccumulator
from repro.attest_server.appraiser import OatAppraiser
from repro.attest_server.certification import PropertyCertificationModule
from repro.attest_server.database import AttestationLogRecord, OatDatabase
from repro.attest_server.interpreter import OatInterpreter
from repro.common.errors import CloudMonattError, ProtocolError
from repro.common.identifiers import ServerId, VmId
from repro.crypto.certificates import CertificateAuthority
from repro.crypto.drbg import HmacDrbg
from repro.crypto.nonces import NonceCache
from repro.lifecycle.timing import CostModel
from repro.monitors.audit_log import AuditLog
from repro.network.network import Network
from repro.network.secure_channel import SecureEndpoint
from repro.properties.catalog import PropertyCatalog, SecurityProperty
from repro.properties.report import PropertyReport
from repro.properties.trends import AvailabilityTrendAnalyzer
from repro.protocol import messages as msg
from repro.protocol.quotes import merkle_root, report_quote_q2
from repro.resilience import RetryPolicy
from repro.telemetry import (
    KEY_TRACE,
    NULL_TELEMETRY,
    SPAN_APPRAISAL,
    SPAN_ATTEST_ROUND,
    SPAN_CERTIFICATION,
    SPAN_INTERPRETATION,
    Telemetry,
)

ATTESTATION_SERVER_ENDPOINT = "attestation-server"


class AttestationServer:
    """The attestation requester/appraiser entity (paper §3.2.3)."""

    def __init__(
        self,
        network: Network,
        drbg: HmacDrbg,
        ca: CertificateAuthority,
        cost_model: CostModel,
        name: str = ATTESTATION_SERVER_ENDPOINT,
        key_bits: int = 1024,
        telemetry: Telemetry | None = None,
        retry_policy: "RetryPolicy | None" = None,
        shard: str = "",
    ):
        self.name = name
        #: which control-plane shard this AS serves (``""`` = unsharded);
        #: surfaced by :meth:`describe` and the `repro shard status` CLI
        self.shard = shard
        self.telemetry = telemetry or NULL_TELEMETRY
        self.endpoint = SecureEndpoint(
            name,
            network,
            drbg.fork("endpoint"),
            ca,
            key_bits=key_bits,
            telemetry=self.telemetry,
        )
        self.endpoint.handler = self._handle
        self.catalog = PropertyCatalog()
        self.database = OatDatabase()
        self.interpreter = OatInterpreter(telemetry=self.telemetry)
        #: tamper-evident audit trail of every attestation outcome
        self.audit = AuditLog()
        #: Property Certification Module (§3.2.3): issues signed,
        #: expiring attestation certificates for monitored properties
        self.certification = PropertyCertificationModule(
            issuer=name, signer=self.endpoint.sign, telemetry=self.telemetry
        )
        self._healthy_serials: dict[tuple[VmId, str], list[int]] = {}
        #: periodic-mode measurement accumulation (§3.2.1)
        self.accumulator = MeasurementAccumulator()
        self.appraiser = OatAppraiser(
            self.endpoint,
            ca.public_key,
            drbg.fork("appraiser"),
            cost_model,
            telemetry=self.telemetry,
            retry_policy=retry_policy,
        )
        self.cost = cost_model
        self._seen_n2 = NonceCache()

    # ------------------------------------------------------------------
    # the attestation round (invoked by the controller)
    # ------------------------------------------------------------------

    def _handle(self, peer: str, body: dict) -> dict:
        if body.get(msg.KEY_TYPE) == "register_vm":
            return self._handle_register_vm(body)
        if body.get(msg.KEY_TYPE) == "raw_measure_request":
            return self._handle_raw(body)
        if body.get(msg.KEY_TYPE) == msg.MSG_ATTEST_BATCH_REQUEST:
            return self._handle_attest_batch(body)
        if body.get(msg.KEY_TYPE) != msg.MSG_ATTEST_REQUEST:
            raise ProtocolError(
                f"attestation server: unknown request {body.get(msg.KEY_TYPE)!r}"
            )
        msg.require_fields(
            body, msg.KEY_VID, msg.KEY_SERVER, msg.KEY_PROPERTY, msg.KEY_NONCE
        )
        vid = VmId(body[msg.KEY_VID])
        server = ServerId(body[msg.KEY_SERVER])
        prop = SecurityProperty(body[msg.KEY_PROPERTY])
        nonce_n2 = bytes(body[msg.KEY_NONCE])
        self._seen_n2.check_and_store(nonce_n2)

        with self.telemetry.span(
            SPAN_ATTEST_ROUND,
            remote_parent=body.get(KEY_TRACE),
            vid=str(vid),
            server=str(server),
            property=prop.value,
        ):
            report = self.attest(
                vid, server, prop,
                window_ms=body.get(msg.KEY_WINDOW),
                accumulate=bool(body.get("accumulate", False)),
            )

            report_dict = report.to_dict()
            quote = report_quote_q2(
                str(vid),
                str(server),
                prop.value,
                report_dict,
                nonce_n2,
                telemetry=self.telemetry,
            )
            signed = {
                msg.KEY_VID: str(vid),
                msg.KEY_SERVER: str(server),
                msg.KEY_PROPERTY: prop.value,
                msg.KEY_REPORT: report_dict,
                msg.KEY_NONCE: nonce_n2,
                msg.KEY_QUOTE: quote,
            }
            self.cost.charge("report_sign")
            with self.telemetry.span(
                SPAN_CERTIFICATION, vid=str(vid), property=prop.value
            ):
                certificate = self._certify(vid, prop, report)
            return {
                **signed,
                msg.KEY_SIGNATURE: self.endpoint.sign(signed),
                "certificate": certificate.to_dict(),
            }

    def _handle_attest_batch(self, body: dict) -> dict:
        """Many attestation rounds in one controller request.

        Entries are stably sorted by (Vid, nonce) before any batch
        operation — a hard determinism requirement — then grouped so
        same-(server, property) rounds share one coalesced measurement
        pass. Each entry keeps its own N2 (replay-checked individually)
        and its own Q2 leaf; one identity-key signature binds the Merkle
        root over the leaves. Certificates are not issued in batch mode,
        but the revocation obligation is preserved: an unhealthy report
        still revokes the VM's stale healthy certificates.
        """
        msg.require_fields(body, msg.KEY_ENTRIES)
        raw_entries = list(body[msg.KEY_ENTRIES])
        if not raw_entries:
            raise ProtocolError("attest batch has no entries")
        parsed = []
        for entry in raw_entries:
            msg.require_fields(
                entry, msg.KEY_VID, msg.KEY_SERVER, msg.KEY_PROPERTY, msg.KEY_NONCE
            )
            nonce = bytes(entry[msg.KEY_NONCE])
            self._seen_n2.check_and_store(nonce)
            parsed.append(
                (
                    VmId(entry[msg.KEY_VID]),
                    ServerId(entry[msg.KEY_SERVER]),
                    SecurityProperty(entry[msg.KEY_PROPERTY]),
                    nonce,
                )
            )
        parsed.sort(key=lambda item: (str(item[0]), item[3]))

        with self.telemetry.span(
            SPAN_ATTEST_ROUND,
            remote_parent=body.get(KEY_TRACE),
            vid=f"batch:{len(parsed)}",
            server="*",
            property="*",
        ):
            reports = self.attest_batch(
                [(vid, server, prop) for vid, server, prop, _ in parsed],
                window_ms=body.get(msg.KEY_WINDOW),
                accumulate=bool(body.get("accumulate", False)),
            )
            out_entries = []
            leaves = []
            for (vid, server, prop, nonce), report in zip(parsed, reports):
                report_dict = report.to_dict()
                quote = report_quote_q2(
                    str(vid), str(server), prop.value, report_dict, nonce,
                    telemetry=self.telemetry,
                )
                if not report.healthy:
                    for serial in self._healthy_serials.pop((vid, prop.value), []):
                        self.certification.revoke(serial)
                out_entries.append(
                    {
                        msg.KEY_VID: str(vid),
                        msg.KEY_SERVER: str(server),
                        msg.KEY_PROPERTY: prop.value,
                        msg.KEY_REPORT: report_dict,
                        msg.KEY_NONCE: nonce,
                        msg.KEY_QUOTE: quote,
                    }
                )
                leaves.append(quote)
            batch_root = merkle_root(leaves, telemetry=self.telemetry)
            self.cost.charge("report_sign")
            signature = self.endpoint.sign(
                {msg.KEY_ENTRIES: out_entries, msg.KEY_BATCH_ROOT: batch_root}
            )
            return {
                msg.KEY_ENTRIES: out_entries,
                msg.KEY_BATCH_ROOT: batch_root,
                msg.KEY_SIGNATURE: signature,
            }

    def _certify(self, vid: VmId, prop: SecurityProperty, report):
        """Issue a property certificate; revoke stale healthy ones when
        the VM's health degrades (a stale "healthy" statement must not
        remain usable after the property stops holding)."""
        key = (vid, prop.value)
        certificate = self.certification.issue(vid, report, self.cost.engine.now)
        if report.healthy:
            self._healthy_serials.setdefault(key, []).append(certificate.serial)
        else:
            for serial in self._healthy_serials.pop(key, []):
                self.certification.revoke(serial)
        return certificate

    def _handle_raw(self, body: dict) -> dict:
        """Pass-through mode (paper §4.1): validate and relay the raw
        measurements M without interpreting them — "a simpler Attestation
        Server may just pass back the measurements M' without performing
        any interpretation". Everything cryptographic is still checked.
        """
        msg.require_fields(
            body, msg.KEY_VID, msg.KEY_SERVER, msg.KEY_PROPERTY, msg.KEY_NONCE
        )
        vid = VmId(body[msg.KEY_VID])
        server = ServerId(body[msg.KEY_SERVER])
        prop = SecurityProperty(body[msg.KEY_PROPERTY])
        nonce_n2 = bytes(body[msg.KEY_NONCE])
        self._seen_n2.check_and_store(nonce_n2)
        spec = self.catalog.spec(prop)
        window = body.get(msg.KEY_WINDOW)
        measurements = self.appraiser.collect(
            server, vid, spec.measurements,
            spec.default_window_ms if window is None else float(window),
        )
        quote = report_quote_q2(
            str(vid),
            str(server),
            prop.value,
            measurements,
            nonce_n2,
            telemetry=self.telemetry,
        )
        signed = {
            msg.KEY_VID: str(vid),
            msg.KEY_SERVER: str(server),
            msg.KEY_PROPERTY: prop.value,
            msg.KEY_MEASUREMENTS: measurements,
            msg.KEY_NONCE: nonce_n2,
            msg.KEY_QUOTE: quote,
        }
        self.cost.charge("report_sign")
        return {**signed, msg.KEY_SIGNATURE: self.endpoint.sign(signed)}

    def availability_trend(self, vid: VmId):
        """Trend analysis over the VM's availability attestation history.

        Distinguishes a transient dip from sustained degradation — the
        operational judgement the response module should act on (see
        :mod:`repro.properties.trends`).
        """
        history = [
            record
            for record in self.database.history(
                vid, SecurityProperty.CPU_AVAILABILITY
            )
            if record.metric is not None
        ]
        analyzer = AvailabilityTrendAnalyzer(
            floor=self.interpreter.availability.default_entitled_share
            * self.interpreter.availability.tolerance
        )
        return analyzer.analyze(
            [record.time_ms for record in history],
            [record.metric for record in history],
        )

    def describe(self) -> dict:
        """Operator-facing identity card for this attestation server.

        Used by ``repro shard status`` to render per-shard AS rows:
        endpoint name, owning shard label, and how many VMs currently
        hold registered interpretation references here.
        """
        return {
            "name": self.name,
            "shard": self.shard,
            "registered_vms": self.interpreter.registered_vms(),
        }

    def _handle_register_vm(self, body: dict) -> dict:
        """Install per-VM interpretation references at launch time.

        The image expectations come from the AS's own trusted image
        catalog (never from wire content); the controller only names
        which image the VM was launched from.
        """
        msg.require_fields(body, msg.KEY_VID, "image_name")
        vid = VmId(body[msg.KEY_VID])
        image = self.interpreter.trusted_image(str(body["image_name"]))
        if image is None:
            raise ProtocolError(
                f"image {body['image_name']!r} is not in the trusted catalog"
            )
        entitled = body.get("entitled_share")
        self.interpreter.register_vm(
            vid, image, float(entitled) if entitled is not None else None
        )
        return {msg.KEY_STATUS: "registered", msg.KEY_VID: str(vid)}

    def attest(
        self,
        vid: VmId,
        server: ServerId,
        prop: SecurityProperty,
        window_ms: float | None = None,
        accumulate: bool = False,
    ) -> PropertyReport:
        """Run one attestation: measure, validate, interpret, log.

        With ``accumulate=True`` (the periodic mode, §3.2.1) this
        round's measurements are merged with earlier rounds' and the
        *accumulated* view is interpreted — so short per-round windows
        still converge on a confident verdict.

        A cryptographic or protocol failure during collection is itself
        an attestation outcome: the property is reported unhealthy with
        the failure as the explanation (never silently dropped).
        """
        spec = self.catalog.spec(prop)
        if not self.database.supports(server, spec.measurements):
            report = PropertyReport(
                prop=prop,
                healthy=False,
                explanation=(
                    f"server {server} does not support the measurements "
                    f"required for {prop.value}"
                ),
            )
        else:
            window = spec.default_window_ms if window_ms is None else float(window_ms)
            try:
                with self.telemetry.span(
                    SPAN_APPRAISAL,
                    vid=str(vid),
                    server=str(server),
                    property=prop.value,
                ):
                    measurements = self.appraiser.collect(
                        server, vid, spec.measurements, window
                    )
            except CloudMonattError as exc:
                report = PropertyReport(
                    prop=prop,
                    healthy=False,
                    explanation=f"measurement collection failed: {exc}",
                    details={"failure": type(exc).__name__},
                )
            else:
                report = self._interpret_collected(vid, prop, measurements, accumulate)
        self._finish_attestation(vid, server, prop, report)
        return report

    def _interpret_collected(
        self,
        vid: VmId,
        prop: SecurityProperty,
        measurements: dict,
        accumulate: bool,
    ) -> PropertyReport:
        """Interpretation tail shared by the serial and batched paths.

        Byte-identical report content is the contract: the batched
        pipeline feeds per-entry measurements through this exact code,
        so two same-seed runs — one serial, one batched — produce equal
        reports.
        """
        if accumulate:
            self.accumulator.add(vid, prop, measurements)
            measurements = self.accumulator.accumulated(vid, prop)
        self.cost.charge("interpret_measurements")
        with self.telemetry.span(
            SPAN_INTERPRETATION, vid=str(vid), property=prop.value
        ):
            report = self.interpreter.interpret(prop, vid, measurements)
        if accumulate:
            report = PropertyReport(
                prop=report.prop,
                healthy=report.healthy,
                explanation=report.explanation,
                details={
                    **report.details,
                    "accumulated_rounds": self.accumulator.rounds(vid, prop),
                },
            )
        return report

    def _finish_attestation(
        self,
        vid: VmId,
        server: ServerId,
        prop: SecurityProperty,
        report: PropertyReport,
    ) -> None:
        """Record an attestation outcome: counter, database, audit log."""
        if self.telemetry.enabled:
            self.telemetry.counter("as.attestations").inc(
                property=prop.value, healthy=str(report.healthy).lower()
            )
        self.database.record(
            AttestationLogRecord(
                time_ms=self.cost.engine.now,
                vid=vid,
                server=server,
                prop=prop,
                healthy=report.healthy,
                metric=report.details.get("relative_usage"),
            )
        )
        # round_tags() joins this tamper-evident entry to the flight
        # recorder's round; empty outside any round scope so untracked
        # runs keep their exact historical payload bytes
        self.audit.append(
            time_ms=self.cost.engine.now,
            event="attestation",
            payload={
                "vid": str(vid),
                "server": str(server),
                "property": prop.value,
                "healthy": report.healthy,
                **self.telemetry.round_tags(),
            },
        )

    def attest_batch(
        self,
        entries: list[tuple[VmId, ServerId, SecurityProperty]],
        window_ms: float | None = None,
        accumulate: bool = False,
    ) -> list[PropertyReport]:
        """Batched appraisal: one measurement round per (server, property).

        ``entries`` must already be in deterministic (sorted) order; the
        results align with it. Entries naming the same cloud server and
        property share one coalesced measurement round; measurement
        collection failures for a batch fall back to per-entry
        :meth:`attest` so retries and degraded outcomes target the
        logical round, not the shared batch.
        """
        reports: dict[int, PropertyReport] = {}
        groups: dict[tuple[str, str], list[int]] = {}
        for index, (vid, server, prop) in enumerate(entries):
            groups.setdefault((str(server), prop.value), []).append(index)
        for key in sorted(groups):
            indices = groups[key]
            _, server, prop = entries[indices[0]]
            spec = self.catalog.spec(prop)
            if not self.database.supports(server, spec.measurements):
                for index in indices:
                    vid = entries[index][0]
                    report = PropertyReport(
                        prop=prop,
                        healthy=False,
                        explanation=(
                            f"server {server} does not support the measurements "
                            f"required for {prop.value}"
                        ),
                    )
                    self._finish_attestation(vid, server, prop, report)
                    reports[index] = report
                continue
            window = spec.default_window_ms if window_ms is None else float(window_ms)
            vids = [entries[index][0] for index in indices]
            self.telemetry.histogram("pipeline.batch.size").observe(len(vids))
            try:
                with self.telemetry.span(
                    SPAN_APPRAISAL,
                    vid=f"batch:{len(vids)}",
                    server=str(server),
                    property=prop.value,
                ):
                    collected = self.appraiser.collect_batch(
                        server, vids, spec.measurements, window
                    )
            except CloudMonattError:
                # the shared round failed: retry each *logical* round
                # through the serial path (own nonce, own retries)
                self.telemetry.counter("pipeline.batch.fallbacks").inc()
                for index in indices:
                    vid = entries[index][0]
                    reports[index] = self.attest(
                        vid, server, prop, window_ms=window_ms, accumulate=accumulate
                    )
                continue
            for index, measurements in zip(indices, collected):
                vid = entries[index][0]
                report = self._interpret_collected(vid, prop, measurements, accumulate)
                self._finish_attestation(vid, server, prop, report)
                reports[index] = report
        return [reports[index] for index in range(len(entries))]
