"""The ``oat interpreter`` module (paper §6.2).

"This essential new module implements the Property Interpretation and
Certification Modules of the Attestation Server. It can interpret the
security health of the VM and make attestation decisions."

Wraps the interpreter registry with reference-data management: known
good platform/image values, per-VM task whitelists, and SLA shares all
live here — on the trusted Attestation Server, never on cloud servers.
"""

from __future__ import annotations

from typing import Any

from repro.common.identifiers import VmId
from repro.lifecycle.flavors import VmImage
from repro.monitors.integrity_unit import IntegrityMeasurementUnit, SoftwareInventory
from repro.properties.ima import ImaAppraiser
from repro.properties import (
    AvailabilityInterpreter,
    CovertChannelInterpreter,
    InterpreterRegistry,
    PropertyReport,
    RuntimeIntegrityInterpreter,
    SecurityProperty,
    StartupIntegrityInterpreter,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry


class OatInterpreter:
    """Interpretation + the reference data that powers it."""

    def __init__(self, telemetry: Telemetry | None = None):
        self.telemetry = telemetry or NULL_TELEMETRY
        self.startup = StartupIntegrityInterpreter()
        self.runtime = RuntimeIntegrityInterpreter()
        self.covert = CovertChannelInterpreter()
        self.availability = AvailabilityInterpreter()
        self.registry = InterpreterRegistry()
        for interpreter in (self.startup, self.runtime, self.covert, self.availability):
            self.registry.register(interpreter)
        self._trusted_images: dict[str, VmImage] = {}

    # ------------------------------------------------------------------
    # reference data registration (the appraiser's "full knowledge")
    # ------------------------------------------------------------------

    def trust_platform(self, inventory: SoftwareInventory) -> None:
        """Whitelist a pristine platform configuration.

        Both appraisal paths of §4.2.2 are fed: the aggregate PCR value
        (fast match) and the IMA-style per-component digest database
        (diagnostics naming the modified component on a mismatch).
        """
        self.startup.add_good_platform(
            IntegrityMeasurementUnit.expected_platform_value(inventory)
        )
        if self.startup.ima is None:
            self.startup.ima = ImaAppraiser()
        self.startup.ima.trust_inventory(inventory)

    def trust_image(self, image: VmImage) -> None:
        """Whitelist a pristine VM image and its standard service set."""
        self.startup.add_good_image(
            image.name, IntegrityMeasurementUnit.expected_image_value(image.content)
        )
        self._trusted_images[image.name] = image

    def trusted_image(self, name: str) -> VmImage | None:
        """A previously trusted image, by name."""
        return self._trusted_images.get(name)

    def register_vm(
        self, vid: VmId, image: VmImage, entitled_share: float | None = None
    ) -> None:
        """Install per-VM expectations at launch time."""
        self.startup.expect_image(vid, image.name)
        self.runtime.set_whitelist(
            vid, list(image.standard_tasks), list(image.standard_modules)
        )
        if entitled_share is not None:
            self.availability.set_entitled_share(vid, entitled_share)

    def registered_vms(self) -> int:
        """How many VMs currently hold per-VM interpretation references."""
        return self.runtime.registered_vms()

    # ------------------------------------------------------------------
    # interpretation
    # ------------------------------------------------------------------

    def interpret(
        self, prop: SecurityProperty, vid: VmId, measurements: dict[str, Any]
    ) -> PropertyReport:
        """Turn measurements M into the attestation report R."""
        report = self.registry.interpret(prop, vid, measurements)
        if self.telemetry.enabled:
            self.telemetry.counter("as.interpretations").inc(
                property=prop.value, healthy=str(report.healthy).lower()
            )
        return report
