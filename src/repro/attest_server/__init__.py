"""The Attestation Server: requester and appraiser (paper §3.2.3, §6.2).

Mirrors the OpenAttestation-based prototype structure:

- :class:`~repro.attest_server.privacy_ca.PrivacyCA` — ``oat PrivacyCA``:
  issues identity certificates and anonymous per-session attestation-key
  certificates.
- :class:`~repro.attest_server.database.OatDatabase` — ``oat database``:
  cloud-server capability registry and the attestation audit log.
- :class:`~repro.attest_server.appraiser.OatAppraiser` — ``oat
  appraiser``: runs the measurement round with a cloud server and
  validates everything cryptographic about the response.
- :class:`~repro.attest_server.interpreter.OatInterpreter` — the new
  ``oat interpreter`` module: property interpretation and certification.
- :class:`~repro.attest_server.server.AttestationServer` — the entity
  tying them together behind a network endpoint.
"""

from repro.attest_server.accumulator import MeasurementAccumulator
from repro.attest_server.appraiser import OatAppraiser
from repro.attest_server.certification import (
    PropertyCertificate,
    PropertyCertificationModule,
    verify_property_certificate,
)
from repro.attest_server.database import OatDatabase
from repro.attest_server.interpreter import OatInterpreter
from repro.attest_server.privacy_ca import PrivacyCA
from repro.attest_server.server import AttestationServer

__all__ = [
    "AttestationServer",
    "MeasurementAccumulator",
    "OatAppraiser",
    "OatDatabase",
    "OatInterpreter",
    "PrivacyCA",
    "PropertyCertificate",
    "PropertyCertificationModule",
    "verify_property_certificate",
]
