"""The Property Certification Module (paper §3.2.3).

"The Property Certification Module is responsible for issuing an
attestation certificate for the properties monitored."

A property certificate is a signed, time-bounded statement: "VM *Vid*
held property *P* at time *t*, valid until *t + validity*". The
customer can retain it or present it to a third party (an auditor, an
insurer) without another attestation round — the deferred-verification
analogue of the live protocol. Expiry forces freshness: a certificate
is evidence about a window, not a permanent fact, because security
health changes (that is the whole premise of runtime attestation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SignatureError, StateError
from repro.common.identifiers import VmId
from repro.crypto.keys import RsaPublicKey
from repro.crypto.signatures import verify
from repro.properties.catalog import SecurityProperty
from repro.properties.report import PropertyReport
from repro.telemetry import NULL_TELEMETRY, Telemetry

DEFAULT_VALIDITY_MS = 300_000.0
"""Default certificate lifetime: five minutes of simulated time."""


@dataclass(frozen=True)
class PropertyCertificate:
    """A signed, expiring attestation statement."""

    vid: str
    prop: str
    healthy: bool
    issued_at_ms: float
    valid_until_ms: float
    serial: int
    issuer: str
    signature: bytes

    def tbs(self) -> dict:
        """The to-be-signed structure."""
        return {
            "vid": self.vid,
            "prop": self.prop,
            "healthy": self.healthy,
            "issued_at_ms": self.issued_at_ms,
            "valid_until_ms": self.valid_until_ms,
            "serial": self.serial,
            "issuer": self.issuer,
        }

    def to_dict(self) -> dict:
        """Transportable form."""
        return {**self.tbs(), "signature": self.signature}

    @staticmethod
    def from_dict(data: dict) -> "PropertyCertificate":
        """Inverse of :meth:`to_dict`."""
        return PropertyCertificate(
            vid=str(data["vid"]),
            prop=str(data["prop"]),
            healthy=bool(data["healthy"]),
            issued_at_ms=float(data["issued_at_ms"]),
            valid_until_ms=float(data["valid_until_ms"]),
            serial=int(data["serial"]),
            issuer=str(data["issuer"]),
            signature=bytes(data["signature"]),
        )


class PropertyCertificationModule:
    """Issues and verifies property certificates for one AS identity."""

    def __init__(
        self,
        issuer: str,
        signer,
        validity_ms: float = DEFAULT_VALIDITY_MS,
        telemetry: Telemetry | None = None,
    ):
        """``signer`` is a callable ``payload -> signature`` bound to the
        issuing entity's identity key (e.g. ``endpoint.sign``)."""
        if validity_ms <= 0:
            raise StateError("certificate validity must be positive")
        self.issuer = issuer
        self._signer = signer
        self.telemetry = telemetry or NULL_TELEMETRY
        self.validity_ms = validity_ms
        self._serial = 0
        #: serials revoked before expiry (e.g. a later failed attestation)
        self._revoked: set[int] = set()

    def issue(
        self, vid: VmId, report: PropertyReport, now_ms: float
    ) -> PropertyCertificate:
        """Certify one attestation outcome at time ``now_ms``."""
        self._serial += 1
        if self.telemetry.enabled:
            self.telemetry.counter("as.certificates_issued").inc(
                healthy=str(report.healthy).lower()
            )
        tbs = {
            "vid": str(vid),
            "prop": report.prop.value,
            "healthy": report.healthy,
            "issued_at_ms": now_ms,
            "valid_until_ms": now_ms + self.validity_ms,
            "serial": self._serial,
            "issuer": self.issuer,
        }
        return PropertyCertificate(
            vid=str(vid),
            prop=report.prop.value,
            healthy=report.healthy,
            issued_at_ms=now_ms,
            valid_until_ms=now_ms + self.validity_ms,
            serial=self._serial,
            issuer=self.issuer,
            signature=self._signer(tbs),
        )

    def revoke(self, serial: int) -> None:
        """Revoke a certificate before its expiry.

        Used when a later attestation of the same (vid, property) turns
        unhealthy: the stale healthy statement must stop being usable.
        """
        if serial not in self._revoked and self.telemetry.enabled:
            self.telemetry.counter("as.certificates_revoked").inc()
        self._revoked.add(serial)

    def is_revoked(self, serial: int) -> bool:
        """Whether a serial has been revoked."""
        return serial in self._revoked


def verify_property_certificate(
    issuer_key: RsaPublicKey,
    certificate: PropertyCertificate,
    now_ms: float,
    revocation_check=None,
) -> None:
    """Relying-party verification: signature, expiry, revocation.

    ``revocation_check`` is a callable ``serial -> bool`` (e.g. the
    certification module's :meth:`is_revoked`, or a distributed CRL).
    Raises on any failure.
    """
    verify(issuer_key, certificate.tbs(), certificate.signature)
    if now_ms > certificate.valid_until_ms:
        raise SignatureError(
            f"property certificate expired at {certificate.valid_until_ms:.0f} ms"
        )
    if revocation_check is not None and revocation_check(certificate.serial):
        raise SignatureError(f"property certificate {certificate.serial} revoked")
