"""Workload catalog: the paper's benchmark programs as workload models.

Two families, matching §7's evaluation inputs:

- **Cloud benchmarks** (Database, File, Web, App, Stream, Mail) — the
  services run in attacker/co-resident VMs in Figs. 6-7 and as the
  measured applications in Fig. 10. Modelled by CPU duty cycle and
  burst structure (CPU-bound services near-saturate; I/O-bound services
  run short bursts between waits).
- **SPEC-like programs** (bzip2, hmmer, astar) — the victim's CPU-bound
  programs in Fig. 6, modelled as finite CPU demands.

The registry resolves names to fresh workload instances so management
messages can carry a workload by name across the cloud stack.
"""

from repro.workloads.cloud_benchmarks import (
    CLOUD_BENCHMARKS,
    SPEC_PROGRAMS,
    make_workload,
    workload_names,
)

__all__ = [
    "CLOUD_BENCHMARKS",
    "SPEC_PROGRAMS",
    "make_workload",
    "workload_names",
]
