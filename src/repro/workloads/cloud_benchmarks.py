"""Benchmark workload definitions and the name → workload registry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.attacks.availability import AvailabilityAttackWorkload
from repro.attacks.bus_covert_channel import BusCovertChannelSender
from repro.attacks.covert_channel import CovertChannelSender
from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.xen.workload import (
    CpuBoundWorkload,
    FiniteCpuBoundWorkload,
    IdleWorkload,
    IoBoundWorkload,
    MemoryStreamingWorkload,
    PhasedWorkload,
    Workload,
)


@dataclass(frozen=True)
class BenchmarkProfile:
    """Characterization of one cloud benchmark.

    ``cpu_fraction`` drives a :class:`PhasedWorkload` for CPU-heavy
    services; I/O-heavy services instead use burst/wait pairs.
    """

    name: str
    kind: str  # "cpu" or "io"
    cpu_fraction: float = 0.0
    burst_ms: float = 0.0
    wait_ms: float = 0.0


# Fig. 6's attacker services: Database/Web/App are CPU-bound (victim
# slows ~2x under fair sharing); File/Stream/Mail are I/O-bound (victim
# unaffected).
CLOUD_BENCHMARKS: dict[str, BenchmarkProfile] = {
    "database": BenchmarkProfile("database", kind="cpu", cpu_fraction=0.97),
    "web": BenchmarkProfile("web", kind="cpu", cpu_fraction=0.93),
    "app": BenchmarkProfile("app", kind="cpu", cpu_fraction=0.90),
    "file": BenchmarkProfile("file", kind="io", burst_ms=1.0, wait_ms=9.0),
    "stream": BenchmarkProfile("stream", kind="io", burst_ms=1.5, wait_ms=8.0),
    "mail": BenchmarkProfile("mail", kind="io", burst_ms=0.8, wait_ms=12.0),
}

# The victim's SPEC CPU2006 programs, as CPU demands (ms of CPU per run).
# Relative magnitudes mirror the programs' run lengths; absolute values
# are scaled for simulation speed.
SPEC_PROGRAMS: dict[str, float] = {
    "bzip2": 1200.0,
    "hmmer": 1500.0,
    "astar": 1000.0,
}


def workload_names() -> list[str]:
    """All names the registry resolves."""
    return (
        sorted(CLOUD_BENCHMARKS)
        + sorted(SPEC_PROGRAMS)
        + [
            "idle",
            "cpu_bound",
            "memory_streaming",
            "cpu_availability_attack",
            "covert_channel_sender",
            "bus_covert_channel_sender",
        ]
    )


def make_workload(name: str, rng: DeterministicRng, **params: Any) -> Workload:
    """Instantiate a fresh workload by registry name.

    ``params`` feed attack constructors (e.g. ``bits`` for the covert
    sender) and override benchmark scale (``total_cpu_ms`` for SPEC
    programs).
    """
    if name in CLOUD_BENCHMARKS:
        profile = CLOUD_BENCHMARKS[name]
        if profile.kind == "cpu":
            return PhasedWorkload(rng.child(name), cpu_fraction=profile.cpu_fraction)
        return IoBoundWorkload(
            rng.child(name), burst_ms=profile.burst_ms, wait_ms=profile.wait_ms
        )
    if name in SPEC_PROGRAMS:
        demand = float(params.get("total_cpu_ms", SPEC_PROGRAMS[name]))
        return FiniteCpuBoundWorkload(demand)
    if name == "idle":
        return IdleWorkload()
    if name == "cpu_bound":
        return CpuBoundWorkload()
    if name == "cpu_availability_attack":
        return AvailabilityAttackWorkload(
            margin_before_ms=float(params.get("margin_before_ms", 0.4)),
            margin_after_ms=float(params.get("margin_after_ms", 0.15)),
        )
    if name == "covert_channel_sender":
        return CovertChannelSender(
            bits=list(params.get("bits", [1, 0, 1, 1, 0, 0, 1, 0])),
            zero_ms=float(params.get("zero_ms", 5.0)),
            one_ms=float(params.get("one_ms", 25.0)),
            gap_ms=float(params.get("gap_ms", 30.0)),
        )
    if name == "bus_covert_channel_sender":
        return BusCovertChannelSender(
            bits=list(params.get("bits", [1, 0, 1, 1, 0, 0, 1, 0])),
            symbol_ms=float(params.get("symbol_ms", 10.0)),
            high_rate=float(params.get("high_rate", 20.0)),
        )
    if name == "memory_streaming":
        return MemoryStreamingWorkload(
            lock_rate_per_ms=float(params.get("lock_rate_per_ms", 8.0))
        )
    raise ConfigurationError(f"unknown workload {name!r}")
