"""The Cloud Server: the attester entity (paper Fig. 2).

One :class:`~repro.server.node.CloudServer` bundles a hypervisor (with
credit scheduler), a hardware Trust Module, the Monitor Module with all
measurement providers, an Attestation Client that services measurement
requests from the Attestation Server, and a Management Client that
services VM lifecycle commands from the Cloud Controller.
"""

from repro.server.node import CloudServer

__all__ = ["CloudServer"]
