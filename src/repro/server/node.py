"""The cloud server node.

Paper Fig. 2's numbered flow is implemented in
:meth:`CloudServer._handle_measure`: ① the Attestation Client takes the
request, ② invokes the Monitor Module, ③ the Trust Module generates a
fresh attestation key (endorsed by its identity key and certified by the
privacy CA), ④⑤ measurements are collected into trust evidence storage,
⑥ the Crypto Engine signs them, ⑦⑧ the signed bundle returns to the
Attestation Server.

The Management Client handles the controller's lifecycle commands:
launch (with image measurement), terminate, suspend/resume, and both
directions of migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.errors import PlacementError, ProtocolError, StateError
from repro.common.identifiers import ServerId, VmId
from repro.common.rng import DeterministicRng
from repro.crypto.certificates import CertificateAuthority, certificate_to_dict
from repro.crypto.drbg import HmacDrbg
from repro.guest.os_model import GuestOS
from repro.lifecycle.flavors import Flavor, VmImage
from repro.lifecycle.timing import CostModel
from repro.monitors.integrity_unit import IntegrityMeasurementUnit, SoftwareInventory
from repro.monitors.bus_monitor import BusLockHistogram
from repro.monitors.monitor_module import (
    BusLockHistogramProvider,
    CpuIntervalHistogramProvider,
    CpuUsageProvider,
    InterceptingTaskListProvider,
    KernelModulesProvider,
    MeasurementRequest,
    MonitorModule,
    PlatformIntegrityProvider,
    TaskListProvider,
    VmImageIntegrityProvider,
)
from repro.monitors.perf_counters import RunIntervalHistogram
from repro.monitors.vmi_tool import VmiTool
from repro.monitors.vmm_profile import VmmProfileTool
from repro.network.network import Network
from repro.network.secure_channel import SecureEndpoint
from repro.protocol import messages as msg
from repro.protocol.quotes import attestation_quote, merkle_root
from repro.sim.engine import Engine
from repro.telemetry import KEY_TRACE, NULL_TELEMETRY, SPAN_MEASURE, Telemetry
from repro.tpm.trust_module import TrustModule
from repro.workloads import make_workload
from repro.xen.hypervisor import Hypervisor


@dataclass
class _HostedVm:
    """Per-VM state a server keeps while hosting it."""

    vid: VmId
    image: VmImage
    flavor: Flavor
    workload_name: str
    workload_params: dict[str, Any] = field(default_factory=dict)
    pins: Optional[list[int]] = None
    guest: Optional[GuestOS] = None
    suspended: bool = False


class CloudServer:
    """One physical server in the data center.

    ``secure=True`` servers carry the Trust Module and Monitor Module of
    the CloudMonatt architecture; ``secure=False`` models the provider's
    legacy fleet, which can host VMs but supports no attestation (the
    paper: "not all the thousands of cloud servers need to be
    CloudMonatt-secure servers").
    """

    def __init__(
        self,
        server_id: ServerId,
        network: Network,
        engine: Engine,
        drbg: HmacDrbg,
        rng: DeterministicRng,
        ca: CertificateAuthority,
        cost_model: CostModel,
        num_pcpus: int = 4,
        memory_mb: int = 32768,
        platform_inventory: Optional[SoftwareInventory] = None,
        secure: bool = True,
        key_bits: int = 1024,
        pca_endpoint: str = "pca",
        intercepting_vmi_scan_ms: float = 0.0,
        telemetry: Optional[Telemetry] = None,
    ):
        self.server_id = server_id
        self.engine = engine
        self.rng = rng
        self.cost = cost_model
        self.secure = secure
        self.memory_mb = memory_mb
        self.num_pcpus = num_pcpus
        self._pca_endpoint = pca_endpoint
        self._next_pin = 0
        self.telemetry = telemetry or NULL_TELEMETRY

        self.hypervisor = Hypervisor(
            engine, num_pcpus=num_pcpus, telemetry=self.telemetry
        )
        self.hosted: dict[VmId, _HostedVm] = {}
        #: ablation knob — reuse one attestation session (key + pCA cert)
        #: across requests instead of minting one per attestation. Saves
        #: the keygen + pCA round but links attestations to one key,
        #: defeating the anonymity goal of §3.4.2 (see the verifier's
        #: IDENTITY_KEY_REUSE analysis and the session-key ablation bench).
        self.reuse_attestation_session = False
        self._cached_session = None
        self._cached_session_cert = None

        self.endpoint = SecureEndpoint(
            str(server_id), network, drbg.fork("endpoint"), ca, key_bits=key_bits,
            telemetry=self.telemetry,
        )
        self.endpoint.handler = self._dispatch

        if secure:
            self.trust_module: Optional[TrustModule] = TrustModule(
                drbg.fork("trust"), key_bits=key_bits, telemetry=self.telemetry
            )
            self.integrity_unit = IntegrityMeasurementUnit(self.trust_module.tpm)
            inventory = platform_inventory or SoftwareInventory.pristine_platform()
            self.platform_inventory = inventory
            self.integrity_unit.measure_platform(inventory)
            self.vmi = VmiTool()
            self.histogram_monitor = RunIntervalHistogram()
            self.hypervisor.add_monitor(self.histogram_monitor)
            self.bus_monitor = BusLockHistogram()
            self.hypervisor.add_monitor(self.bus_monitor)
            self.profile_tool = VmmProfileTool(self.hypervisor)
            self.monitor_module = MonitorModule()
            self.monitor_module.register(PlatformIntegrityProvider(self.integrity_unit))
            self.monitor_module.register(VmImageIntegrityProvider(self.integrity_unit))
            if intercepting_vmi_scan_ms > 0:
                self.monitor_module.register(
                    InterceptingTaskListProvider(
                        self.vmi, self.hypervisor, intercepting_vmi_scan_ms
                    )
                )
            else:
                self.monitor_module.register(TaskListProvider(self.vmi))
            self.monitor_module.register(KernelModulesProvider(self.vmi))
            self.monitor_module.register(
                CpuIntervalHistogramProvider(self.histogram_monitor)
            )
            self.monitor_module.register(BusLockHistogramProvider(self.bus_monitor))
            self.monitor_module.register(CpuUsageProvider(self.profile_tool))
        else:
            self.trust_module = None
            self.platform_inventory = platform_inventory or SoftwareInventory(
                components=[]
            )
            self.monitor_module = MonitorModule()

    # ------------------------------------------------------------------
    # capabilities and capacity (consumed by the controller's database)
    # ------------------------------------------------------------------

    def supported_measurements(self) -> list[str]:
        """Measurement names this server's Monitor Module offers."""
        return self.monitor_module.supported_measurements()

    @property
    def allocated_vcpus(self) -> int:
        """vCPUs currently promised to hosted VMs."""
        return sum(vm.flavor.vcpus for vm in self.hosted.values())

    @property
    def allocated_memory_mb(self) -> int:
        """Memory currently promised to hosted VMs."""
        return sum(vm.flavor.memory_mb for vm in self.hosted.values())

    def can_fit(self, flavor: Flavor, overcommit: float = 4.0) -> bool:
        """Capacity check used during placement."""
        vcpu_room = (
            self.allocated_vcpus + flavor.vcpus <= self.num_pcpus * overcommit
        )
        memory_room = self.allocated_memory_mb + flavor.memory_mb <= self.memory_mb
        return vcpu_room and memory_room

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, peer: str, body: dict) -> dict:
        msg.require_fields(body, msg.KEY_TYPE)
        handlers = {
            msg.MSG_MEASURE_REQUEST: self._handle_measure,
            msg.MSG_MEASURE_BATCH_REQUEST: self._handle_measure_batch,
            "server_load_report": self._handle_load_report,
            msg.MSG_LAUNCH: self._handle_launch,
            msg.MSG_TERMINATE: self._handle_terminate,
            msg.MSG_SUSPEND: self._handle_suspend,
            msg.MSG_RESUME: self._handle_resume,
            msg.MSG_MIGRATE_OUT: self._handle_migrate_out,
            msg.MSG_MIGRATE_IN: self._handle_migrate_in,
        }
        handler = handlers.get(body[msg.KEY_TYPE])
        if handler is None:
            raise ProtocolError(f"cloud server: unknown request {body[msg.KEY_TYPE]!r}")
        return handler(peer, body)

    # ------------------------------------------------------------------
    # attestation client (paper Fig. 2 flow)
    # ------------------------------------------------------------------

    def _handle_measure(self, peer: str, body: dict) -> dict:
        with self.telemetry.span(
            SPAN_MEASURE,
            remote_parent=body.get(KEY_TRACE),
            server=str(self.server_id),
            vid=str(body.get(msg.KEY_VID, "")),
        ):
            return self._measure(peer, body)

    def _measure(self, peer: str, body: dict) -> dict:
        if not self.secure or self.trust_module is None:
            raise StateError(f"server {self.server_id} has no Trust Module")
        msg.require_fields(
            body, msg.KEY_VID, msg.KEY_REQUESTED, msg.KEY_NONCE, msg.KEY_WINDOW
        )
        vid = VmId(body[msg.KEY_VID])
        requested = tuple(str(m) for m in body[msg.KEY_REQUESTED])
        nonce = bytes(body[msg.KEY_NONCE])
        window_ms = float(body[msg.KEY_WINDOW])
        if vid not in self.hosted:
            raise StateError(f"server {self.server_id} does not host {vid}")

        # ③ fresh attestation session key, endorsed by the identity key,
        # certified (anonymously) by the privacy CA
        if self.reuse_attestation_session and self._cached_session is not None:
            session = self._cached_session
            session_cert = self._cached_session_cert
        else:
            self.cost.charge("session_keygen")
            session = self.trust_module.new_attestation_session()
            cert_response = self.endpoint.call(
                self._pca_endpoint,
                {
                    msg.KEY_TYPE: "certify_attestation_key",
                    "server": str(self.server_id),
                    "attestation_key": session.public.to_dict(),
                    "endorsement": session.endorsement,
                },
            )
            self.cost.charge("pca_certify")
            session_cert = cert_response["certificate"]
            if self.reuse_attestation_session:
                self._cached_session = session
                self._cached_session_cert = session_cert

        # ②④ drive the Monitor Module (opening a testing window if needed)
        request = MeasurementRequest(
            vid=vid,
            measurements=requested,
            window_ms=window_ms,
            params=dict(body.get("params", {})),
        )
        self.monitor_module.begin(request)
        if window_ms > 0:
            self.engine.run_until(self.engine.now + window_ms)
        measurements = self.monitor_module.collect(request)

        # ⑤ evidence into the Trust Module, ⑥ sign with the session key
        self.trust_module.store_evidence(f"attest:{vid}", measurements)
        quote = attestation_quote(
            str(vid), list(requested), measurements, nonce,
            telemetry=self.telemetry,
        )
        payload = {
            msg.KEY_VID: str(vid),
            msg.KEY_REQUESTED: list(requested),
            msg.KEY_MEASUREMENTS: measurements,
            msg.KEY_NONCE: nonce,
            msg.KEY_QUOTE: quote,
        }
        self.cost.charge("tpm_quote_sign")
        signature = self.trust_module.sign_with_session(session, payload)
        return {
            **payload,
            msg.KEY_SIGNATURE: signature,
            msg.KEY_SESSION_CERT: session_cert,
        }

    def _handle_measure_batch(self, peer: str, body: dict) -> dict:
        """Coalesced Fig. 2 flow for many VMs on this server at once.

        One attestation session (③) and one privacy-CA round serve the
        whole batch; the Monitor Module opens every window together and
        shares VM-independent measurements across entries (②④⑤); each
        entry keeps its own fresh nonce and its own Q3 leaf, and a single
        session-key signature (⑥) binds the Merkle root over the sorted
        leaves. Per-round Q3 semantics are unchanged — a verifier checks
        its entry's leaf against the root before trusting the batch
        signature.
        """
        if not self.secure or self.trust_module is None:
            raise StateError(f"server {self.server_id} has no Trust Module")
        msg.require_fields(body, msg.KEY_ENTRIES, msg.KEY_WINDOW)
        window_ms = float(body[msg.KEY_WINDOW])
        entries = list(body[msg.KEY_ENTRIES])
        if not entries:
            raise ProtocolError("measure batch has no entries")
        for entry in entries:
            msg.require_fields(entry, msg.KEY_VID, msg.KEY_REQUESTED, msg.KEY_NONCE)
            if VmId(entry[msg.KEY_VID]) not in self.hosted:
                raise StateError(
                    f"server {self.server_id} does not host {entry[msg.KEY_VID]}"
                )
        with self.telemetry.span(
            SPAN_MEASURE,
            remote_parent=body.get(KEY_TRACE),
            server=str(self.server_id),
            vid=f"batch:{len(entries)}",
        ):
            return self._measure_batch(entries, window_ms, body)

    def _measure_batch(self, entries: list[dict], window_ms: float, body: dict) -> dict:
        # ③ one fresh attestation session certifies the whole batch
        self.cost.charge("session_keygen")
        session = self.trust_module.new_attestation_session()
        cert_response = self.endpoint.call(
            self._pca_endpoint,
            {
                msg.KEY_TYPE: "certify_attestation_key",
                "server": str(self.server_id),
                "attestation_key": session.public.to_dict(),
                "endorsement": session.endorsement,
            },
        )
        self.cost.charge("pca_certify")
        session_cert = cert_response["certificate"]

        # ②④ one shared measurement pass: every window opens together,
        # one run_until covers them all, VM-independent values coalesce
        requests = [
            MeasurementRequest(
                vid=VmId(entry[msg.KEY_VID]),
                measurements=tuple(str(m) for m in entry[msg.KEY_REQUESTED]),
                window_ms=window_ms,
                params=dict(body.get("params", {})),
            )
            for entry in entries
        ]
        self.monitor_module.begin_many(requests)
        if window_ms > 0:
            self.engine.run_until(self.engine.now + window_ms)
        all_measurements, coalesce_hits = self.monitor_module.collect_many(requests)
        self.telemetry.counter("pipeline.coalesce.hits").inc(coalesce_hits)

        # ⑤ evidence + per-entry Q3 leaves, ⑥ one signature over the root
        out_entries = []
        leaves = []
        for entry, request, measurements in zip(entries, requests, all_measurements):
            nonce = bytes(entry[msg.KEY_NONCE])
            self.trust_module.store_evidence(f"attest:{request.vid}", measurements)
            quote = attestation_quote(
                str(request.vid), list(request.measurements), measurements, nonce,
                telemetry=self.telemetry,
            )
            leaves.append(quote)
            out_entries.append(
                {
                    msg.KEY_VID: str(request.vid),
                    msg.KEY_REQUESTED: list(request.measurements),
                    msg.KEY_MEASUREMENTS: measurements,
                    msg.KEY_NONCE: nonce,
                    msg.KEY_QUOTE: quote,
                }
            )
        batch_root = merkle_root(leaves, telemetry=self.telemetry)
        self.cost.charge("tpm_quote_sign")
        signature = self.trust_module.sign_with_session(
            session, {msg.KEY_ENTRIES: out_entries, msg.KEY_BATCH_ROOT: batch_root}
        )
        return {
            msg.KEY_ENTRIES: out_entries,
            msg.KEY_BATCH_ROOT: batch_root,
            msg.KEY_SIGNATURE: signature,
            msg.KEY_SESSION_CERT: session_cert,
        }

    def _handle_load_report(self, peer: str, body: dict) -> dict:
        """Operational telemetry: per-VM CPU usage over a short window.

        Management-plane (not attestation-plane) data the controller's
        suspend-recheck loop uses to see whether the contention that
        triggered a suspension has cleared (paper §5.2: the controller
        "can initiate further checking and also continue to attest the
        platform").
        """
        window_ms = float(body.get(msg.KEY_WINDOW, 500.0))
        running = [vid for vid in self.hosted if vid in self.hypervisor.domains]
        if self.secure:
            tool = self.profile_tool
        else:
            tool = VmmProfileTool(self.hypervisor)
        for vid in running:
            tool.start_window(vid)
        self.engine.run_until(self.engine.now + window_ms)
        usage = {str(vid): tool.stop_window(vid).relative_usage for vid in running}
        return {"usage": usage, msg.KEY_WINDOW: window_ms}

    # ------------------------------------------------------------------
    # management client
    # ------------------------------------------------------------------

    def _pin_list(self, vcpus: int, pins: Optional[list[int]]) -> list[int]:
        if pins is not None:
            if len(pins) != vcpus:
                raise PlacementError("one pin per vCPU required")
            return list(pins)
        assigned = []
        for _ in range(vcpus):
            assigned.append(self._next_pin % self.num_pcpus)
            self._next_pin += 1
        return assigned

    def _boot_domain(self, hosted: _HostedVm) -> None:
        """Create the scheduler domain and guest OS for a hosted VM."""
        workload = make_workload(
            hosted.workload_name,
            self.rng.child(f"wl-{hosted.vid}"),
            **hosted.workload_params,
        )
        pins = self._pin_list(hosted.flavor.vcpus, hosted.pins)
        self.hypervisor.create_domain(
            hosted.vid, workload, num_vcpus=hosted.flavor.vcpus, pcpus=pins
        )
        if hosted.guest is None:
            guest = GuestOS(f"{hosted.image.name}-{hosted.vid}")
            for task in hosted.image.standard_tasks:
                guest.spawn(task)
            guest.kernel_modules.extend(hosted.image.standard_modules)
            hosted.guest = guest
        if self.secure:
            self.vmi.attach(hosted.vid, hosted.guest)

    def _handle_launch(self, peer: str, body: dict) -> dict:
        msg.require_fields(body, msg.KEY_VID, "image", "flavor", "workload")
        vid = VmId(body[msg.KEY_VID])
        if vid in self.hosted:
            raise StateError(f"{vid} already hosted on {self.server_id}")
        image_spec = body["image"]
        flavor_spec = body["flavor"]
        image = VmImage(
            name=str(image_spec["name"]),
            size_mb=int(image_spec["size_mb"]),
            content=bytes(image_spec["content"]),
            standard_tasks=tuple(image_spec.get("tasks", VmImage("", 0, b"").standard_tasks)),
            standard_modules=tuple(
                image_spec.get("modules", VmImage("", 0, b"").standard_modules)
            ),
        )
        flavor = Flavor(
            name=str(flavor_spec["name"]),
            vcpus=int(flavor_spec["vcpus"]),
            memory_mb=int(flavor_spec["memory_mb"]),
            disk_gb=int(flavor_spec["disk_gb"]),
        )
        if not self.can_fit(flavor):
            raise PlacementError(f"server {self.server_id} cannot fit {vid}")
        workload_spec = body["workload"]
        hosted = _HostedVm(
            vid=vid,
            image=image,
            flavor=flavor,
            workload_name=str(workload_spec["name"]),
            workload_params=dict(workload_spec.get("params", {})),
            pins=[int(p) for p in body["pins"]] if body.get("pins") else None,
        )
        # fetch and measure the image before boot (paper §4.2.2 phase 2)
        self.cost.charge("image_fetch_per_mb", scale=image.size_mb)
        if self.secure:
            self.cost.charge("tpm_extend")
            self.integrity_unit.measure_vm_image(vid, image.content)
        self.cost.charge("spawn_base")
        self.cost.charge("boot_per_flavor_vcpu", scale=flavor.vcpus)
        self.hosted[vid] = hosted
        self._boot_domain(hosted)
        return {msg.KEY_STATUS: "active", msg.KEY_VID: str(vid)}

    def _hosted(self, vid: VmId) -> _HostedVm:
        if vid not in self.hosted:
            raise StateError(f"server {self.server_id} does not host {vid}")
        return self.hosted[vid]

    def _teardown_domain(self, vid: VmId) -> None:
        if vid in self.hypervisor.domains:
            self.hypervisor.destroy_domain(vid)
        if self.secure:
            self.vmi.detach(vid)

    def _handle_terminate(self, peer: str, body: dict) -> dict:
        msg.require_fields(body, msg.KEY_VID)
        vid = VmId(body[msg.KEY_VID])
        self._hosted(vid)
        self.cost.charge("vm_destroy")
        self._teardown_domain(vid)
        if self.secure:
            self.integrity_unit.forget_vm(vid)
        del self.hosted[vid]
        return {msg.KEY_STATUS: "terminated", msg.KEY_VID: str(vid)}

    def _handle_suspend(self, peer: str, body: dict) -> dict:
        msg.require_fields(body, msg.KEY_VID)
        vid = VmId(body[msg.KEY_VID])
        hosted = self._hosted(vid)
        if hosted.suspended:
            raise StateError(f"{vid} already suspended")
        self.cost.charge("state_save_per_gb", scale=hosted.flavor.memory_mb / 1024.0)
        self._teardown_domain(vid)
        hosted.suspended = True
        return {msg.KEY_STATUS: "suspended", msg.KEY_VID: str(vid)}

    def _handle_resume(self, peer: str, body: dict) -> dict:
        msg.require_fields(body, msg.KEY_VID)
        vid = VmId(body[msg.KEY_VID])
        hosted = self._hosted(vid)
        if not hosted.suspended:
            raise StateError(f"{vid} is not suspended")
        self.cost.charge("vm_resume")
        hosted.suspended = False
        self._boot_domain(hosted)
        return {msg.KEY_STATUS: "active", msg.KEY_VID: str(vid)}

    def _handle_migrate_out(self, peer: str, body: dict) -> dict:
        """Package the VM for migration: spec + guest memory snapshot."""
        msg.require_fields(body, msg.KEY_VID)
        vid = VmId(body[msg.KEY_VID])
        hosted = self._hosted(vid)
        # cross-rack copies traverse oversubscribed aggregation links:
        # the controller supplies the topology's distance factor
        distance_factor = float(body.get("distance_factor", 1.0))
        self.cost.charge(
            "memory_copy_per_gb",
            scale=hosted.flavor.memory_mb / 1024.0 * distance_factor,
        )
        snapshot = {
            "image": {
                "name": hosted.image.name,
                "size_mb": hosted.image.size_mb,
                "content": hosted.image.content,
                "tasks": list(hosted.image.standard_tasks),
                "modules": list(hosted.image.standard_modules),
            },
            "flavor": {
                "name": hosted.flavor.name,
                "vcpus": hosted.flavor.vcpus,
                "memory_mb": hosted.flavor.memory_mb,
                "disk_gb": hosted.flavor.disk_gb,
            },
            "workload": {
                "name": hosted.workload_name,
                "params": hosted.workload_params,
            },
            "guest": hosted.guest.to_snapshot() if hosted.guest else None,
        }
        self._teardown_domain(vid)
        if self.secure:
            self.integrity_unit.forget_vm(vid)
        del self.hosted[vid]
        return {msg.KEY_STATUS: "migrated_out", "snapshot": snapshot}

    def _handle_migrate_in(self, peer: str, body: dict) -> dict:
        """Receive a migrated VM: re-measure the image, restore the guest."""
        msg.require_fields(body, msg.KEY_VID, "snapshot")
        vid = VmId(body[msg.KEY_VID])
        if vid in self.hosted:
            raise StateError(f"{vid} already hosted on {self.server_id}")
        snapshot = body["snapshot"]
        image_spec = snapshot["image"]
        flavor_spec = snapshot["flavor"]
        image = VmImage(
            name=str(image_spec["name"]),
            size_mb=int(image_spec["size_mb"]),
            content=bytes(image_spec["content"]),
            standard_tasks=tuple(image_spec["tasks"]),
            standard_modules=tuple(image_spec["modules"]),
        )
        flavor = Flavor(
            name=str(flavor_spec["name"]),
            vcpus=int(flavor_spec["vcpus"]),
            memory_mb=int(flavor_spec["memory_mb"]),
            disk_gb=int(flavor_spec["disk_gb"]),
        )
        if not self.can_fit(flavor):
            raise PlacementError(f"server {self.server_id} cannot fit migrated {vid}")
        hosted = _HostedVm(
            vid=vid,
            image=image,
            flavor=flavor,
            workload_name=str(snapshot["workload"]["name"]),
            workload_params=dict(snapshot["workload"]["params"]),
            guest=GuestOS.from_snapshot(snapshot["guest"])
            if snapshot.get("guest")
            else None,
        )
        if self.secure:
            self.cost.charge("tpm_extend")
            self.integrity_unit.measure_vm_image(vid, image.content)
        self.hosted[vid] = hosted
        self._boot_domain(hosted)
        return {msg.KEY_STATUS: "active", msg.KEY_VID: str(vid)}
