"""Parallel shard execution: multi-core fan-out, byte-identical merge.

A :class:`ShardPlane` owns N fully independent deployments, so their
work can run on N cores — *if* the results the coordinator observes are
indistinguishable from the serial in-process plane. This module is that
executor layer. Every shard interaction in the plane and coordinator is
expressed as a small command tuple (launch / attest / attest_fleet /
register_policy / run_for / prewarm / drain / apply) executed by
:func:`perform` against one shard; the executor decides *where*
``perform`` runs:

- :class:`SerialShardExecutor` runs it immediately in-process — the
  exact pre-existing serial plane, and the fallback for hosts without
  ``fork`` or for ``shard_parallel_workers=0``.
- :class:`ForkedShardExecutor` runs it in one of ``min(workers,
  shards)`` persistent forked worker processes (shards assigned
  round-robin in sorted name order), dispatching command batches over
  pipes via :class:`repro.common.procpool.PersistentWorker`.

**The determinism argument.** Each shard is a closed deterministic
system: its engine, DRBGs, channels and telemetry hub are touched only
by its own command stream, which both executors deliver in the same
order (fan-outs submit in sorted shard-name order and the per-worker
pipes are FIFO). A worker therefore produces byte-identical results,
reports and per-shard roots to the serial plane. The coordinator-side
shard objects become *mirrors*: each command's reply carries a
telemetry **delta** — the interleaved stream of observatory events and
finished spans the worker recorded while executing (captured via
``Telemetry.delta_sink`` and a tracer listener), the pickled metrics
registry, and a clock/round-id sync. :func:`ForkedShardExecutor`
replays deltas in collect order (== sorted shard order == serial
execution order), pinning the mirror engine's clock to each entry's
timestamp before ingesting it so clock-stamped consumers (the alert
engine stamps ``time_ms=clock()`` at ingestion) reproduce the serial
bytes. Hence per-VM reports, cross-shard Merkle roots, alarm
transitions and JSONL trace output are byte-identical at any worker
count — asserted by ``tests/test_shard_parallel.py`` and the bench's
per-cell identity checks.

**Crash fallback.** A dead worker (broken pipe) flips the executor to
``serial-fallback`` mode: outstanding replies on healthy workers are
drained normally, all workers are shut down, and the mirrors — whose
telemetry is already byte-exact up to the last applied delta — have
their protocol state reconstructed by quietly replaying the journal of
successfully executed commands against the fork-point state (shards
are deterministic, so the replay converges on the workers' pre-crash
state; telemetry is suppressed during replay because the mirrors
already hold it). The commands lost in the crash are then re-executed
serially. The episode is visible as the ``shard.parallel.crashes``
counter, a ``shard_worker_crash`` observatory event (the
:class:`~repro.telemetry.observatory.alerts.WorkerCrashRule` alert),
and the ``shard_parallel.crash_fallback`` fast-path statistic.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from repro.common import procpool
from repro.common.errors import StateError
from repro.crypto import fastpath

if TYPE_CHECKING:  # pragma: no cover - import cycle is typing-only
    from repro.shard.plane import Shard, ShardPlane


def perform(shard: "Shard", op: tuple):
    """Execute one command tuple against one shard.

    This is the single op surface both executors run — the serial
    executor in-process, the forked workers in their child processes,
    and the crash-fallback replay again in-process — so the three paths
    cannot diverge behaviourally.
    """
    kind = op[0]
    if kind == "customer":
        _, customer, method, args, kwargs = op
        return getattr(shard.customers[customer], method)(*args, **kwargs)
    if kind == "register_customer":
        name = op[1]
        shard.customers[name] = shard.cloud.register_customer(name)
        return None
    if kind == "run_for":
        shard.cloud.run_for(op[1])
        return None
    if kind == "prewarm":
        return shard.cloud.prewarm_for_fleet(op[1])
    if kind == "drain":
        pipeline = shard.cloud.controller.pipeline
        depth = pipeline.depth
        pipeline.flush()
        return depth
    if kind == "apply":
        _, fn, args = op
        return fn(shard, *args)
    raise StateError(f"unknown shard command {op[0]!r}")


class CommandHandle:
    """One submitted command: where it ran and how it resolved."""

    __slots__ = ("shard_name", "op", "worker", "seq", "done", "value", "error")

    def __init__(self, shard_name: str, op: tuple, worker=None, seq=None):
        self.shard_name = shard_name
        self.op = op
        self.worker = worker
        self.seq = seq
        self.done = False
        self.value = None
        self.error: Optional[BaseException] = None

    def finish(self, value=None, error: Optional[BaseException] = None):
        """Mark the command resolved with a value or an exception."""
        self.done = True
        self.value = value
        self.error = error
        return self


class SerialShardExecutor:
    """The in-process executor: commands run eagerly at submit time.

    Submit-order execution is exactly the pre-parallel plane's
    behaviour (fan-out call sites submit in sorted shard-name order),
    so this executor *is* the serial baseline the forked one must
    match byte for byte.
    """

    def __init__(self, plane: "ShardPlane"):
        self._plane = plane

    @property
    def mode(self) -> str:
        """Executor mode string (surfaced in ``repro shard status``)."""
        return "serial"

    def submit(self, shard_name: str, op: tuple) -> CommandHandle:
        """Execute one command immediately; the handle is pre-resolved."""
        handle = CommandHandle(shard_name, op)
        try:
            return handle.finish(value=perform(self._plane.shards[shard_name], op))
        except Exception as exc:
            return handle.finish(error=exc)

    def result(self, handle: CommandHandle):
        """Return a handle's value, re-raising its captured exception."""
        if handle.error is not None:
            raise handle.error
        return handle.value

    def call(self, shard_name: str, op: tuple):
        """Round-trip one command synchronously."""
        return self.result(self.submit(shard_name, op))

    def pipeline_depth(self, shard_name: str) -> int:
        """Live in-flight round count on one shard's controller."""
        return self._plane.shards[shard_name].cloud.controller.pipeline.depth

    def attach_shard(self, shard_name: str) -> None:
        """No worker to fork: serial shards are served in-process."""

    def release_shard(self, shard_name: str) -> None:
        """No worker to retire."""

    def describe(self) -> dict:
        """Deterministic executor snapshot for ``plane.status()``."""
        return {"mode": self.mode, "workers": 0}

    def close(self) -> None:
        """Nothing to shut down."""


class _ShardWorker:
    """Child-process body: serves one or more shards' command streams.

    Constructed in the parent but inert there — the telemetry taps are
    installed lazily on first call, which only ever happens in the
    forked child, so the coordinator's mirror hubs are never touched.
    """

    def __init__(self, shards: dict):
        self._shards = shards
        self._sinks: Optional[dict] = None

    def _install_taps(self) -> None:
        self._sinks = {}
        for name, shard in self._shards.items():
            hub = shard.cloud.telemetry
            sink: list = []
            hub.delta_sink = sink
            if hub.enabled:
                hub.tracer.add_listener(
                    lambda span, _sink=sink: _sink.append(("span", span))
                )
            self._sinks[name] = sink

    def __call__(self, request: tuple) -> tuple:
        shard_name, op = request
        if self._sinks is None:
            self._install_taps()
        shard = self._shards[shard_name]
        sink = self._sinks[shard_name]
        sink.clear()
        try:
            status, payload = "ok", perform(shard, op)
        except Exception as exc:
            status, payload = "err", exc
        hub = shard.cloud.telemetry
        delta = {
            "log": list(sink),
            "metrics": hub.metrics._instruments if hub.enabled else None,
            "sync": {
                "now": shard.cloud.engine.now,
                "events_fired": shard.cloud.engine.events_fired,
                "pending": shard.cloud.engine.pending_count,
                "pipeline_depth": shard.cloud.controller.pipeline.depth,
                "next_round_id": hub._next_round_id,
                "tracer_next_id": hub.tracer._next_id,
            },
        }
        sink.clear()
        return (status, payload, delta)


def _replay_delta(shard: "Shard", delta: dict) -> None:
    """Apply one worker delta to the coordinator's mirror shard.

    Entries are ingested in the worker's recording order with the
    mirror engine's clock pinned to each entry's own timestamp, so
    clock-stamping consumers (alert engine, scoreboard) reproduce the
    exact serial bytes; afterwards the clock, round-id sequence and
    tracer id sequence are synced to the worker's post-command state.
    """
    hub = shard.cloud.telemetry
    engine = shard.cloud.engine
    for entry in delta["log"]:
        if entry[0] == "event":
            _, kind, time_ms, fields = entry
            engine.sync_clock(time_ms)
            if hub.observatory is not None:
                hub.observatory.record(kind, time_ms, fields)
        else:
            span = entry[1]
            engine.sync_clock(
                span.end_ms if span.end_ms is not None else span.start_ms
            )
            hub.tracer.finished.append(span)
            for listener in hub.tracer._listeners:
                listener(span)
    if delta["metrics"] is not None:
        hub.metrics._instruments = delta["metrics"]
    sync = delta["sync"]
    engine.sync_clock(sync["now"])
    engine.sync_stats(sync["events_fired"], sync["pending"])
    hub._next_round_id = sync["next_round_id"]
    hub.tracer._next_id = sync["tracer_next_id"]


class ForkedShardExecutor:
    """Persistent forked workers, one command pipe each, merged replies.

    Workers are forked at plane construction (and per added shard), so
    each child inherits its fully built deployment — keypools, accel
    backends, the live ``fastpath`` configuration — by copy-on-write;
    nothing is re-constructed or pickled at spawn. See the module
    docstring for the determinism and crash-fallback arguments.
    """

    def __init__(self, plane: "ShardPlane", workers: int):
        self._plane = plane
        self._requested = workers
        self._pid = os.getpid()
        self._workers: list[procpool.PersistentWorker] = []
        #: shard name → serving worker
        self._assignment: dict[str, procpool.PersistentWorker] = {}
        #: shard name → (engine clock, events fired) at the fork point
        self._fork_state: dict[str, tuple[float, int]] = {}
        #: shard name → last synced worker pipeline depth
        self._depths: dict[str, int] = {}
        #: every submitted command, in submission order (crash replay)
        self._journal: list[CommandHandle] = []
        self._fallback: Optional[SerialShardExecutor] = None
        self._closed = False
        names = sorted(plane.shards)
        count = max(1, min(workers, len(names)))
        buckets: list[dict] = [{} for _ in range(count)]
        for index, name in enumerate(names):
            buckets[index % count][name] = plane.shards[name]
        for index, bucket in enumerate(buckets):
            worker = procpool.PersistentWorker(
                _ShardWorker(bucket), name=f"shard-executor-{index}"
            )
            self._workers.append(worker)
            for name in bucket:
                self._assignment[name] = worker
        for name in names:
            engine = plane.shards[name].cloud.engine
            self._fork_state[name] = (engine.now, engine.events_fired)

    @property
    def mode(self) -> str:
        """``parallel``, or ``serial-fallback`` after a worker crash."""
        return "serial-fallback" if self._fallback is not None else "parallel"

    # ------------------------------------------------------------------
    # command dispatch
    # ------------------------------------------------------------------

    def submit(self, shard_name: str, op: tuple) -> CommandHandle:
        """Dispatch one command to the shard's worker (non-blocking)."""
        if self._fallback is not None:
            handle = self._fallback.submit(shard_name, op)
            self._journal.append(handle)
            return handle
        worker = self._assignment[shard_name]
        self._plane.telemetry.counter("shard.parallel.commands").inc(
            shard=shard_name
        )
        handle = CommandHandle(shard_name, op, worker=worker)
        self._journal.append(handle)
        try:
            handle.seq = worker.submit((shard_name, op))
        except procpool.WorkerCrashError as exc:
            self._enter_fallback(exc)
        return handle

    def result(self, handle: CommandHandle):
        """Await and merge one command's reply, re-raising its error."""
        if not handle.done:
            self._resolve(handle)
        if handle.error is not None:
            raise handle.error
        return handle.value

    def call(self, shard_name: str, op: tuple):
        """Round-trip one command synchronously."""
        return self.result(self.submit(shard_name, op))

    def _resolve(self, handle: CommandHandle) -> None:
        try:
            status, payload, delta = handle.worker.result(handle.seq)
        except procpool.WorkerCrashError as exc:
            self._enter_fallback(exc)
            return
        self._apply(handle, status, payload, delta)

    def _apply(self, handle: CommandHandle, status, payload, delta) -> None:
        _replay_delta(self._plane.shards[handle.shard_name], delta)
        self._depths[handle.shard_name] = delta["sync"]["pipeline_depth"]
        if status == "ok":
            handle.finish(value=payload)
        else:
            handle.finish(error=payload)

    # ------------------------------------------------------------------
    # crash fallback
    # ------------------------------------------------------------------

    def _enter_fallback(self, cause: procpool.WorkerCrashError) -> None:
        """Degrade to serial execution after a worker crash.

        Healthy workers' outstanding replies are drained and merged
        normally; the mirrors' protocol state is rebuilt by quiet
        journal replay; the crashed commands re-execute serially so
        their callers still get answers (or the command's own
        exception) instead of an infrastructure error.
        """
        plane = self._plane
        failed: list[CommandHandle] = []
        for handle in [h for h in self._journal if not h.done]:
            if handle.worker is not None and handle.worker.alive:
                try:
                    status, payload, delta = handle.worker.result(handle.seq)
                except procpool.WorkerCrashError:
                    failed.append(handle)
                else:
                    self._apply(handle, status, payload, delta)
            else:
                failed.append(handle)
        crashed = sum(1 for w in self._workers if not w.alive)
        for worker in self._workers:
            worker.close()
        self._workers = []
        self._rebuild_mirrors()
        self._fallback = SerialShardExecutor(plane)
        fastpath.record("shard_parallel.crash_fallback")
        plane.telemetry.counter("shard.parallel.crashes").inc()
        plane.telemetry.observe_event(
            "shard_worker_crash",
            worker=str(max(0, crashed)),
            shards=",".join(sorted(self._assignment)),
            error=str(cause),
        )
        self._assignment = {}
        for handle in failed:
            if handle.shard_name not in plane.shards:
                handle.finish()
                continue
            try:
                handle.finish(
                    value=perform(plane.shards[handle.shard_name], handle.op)
                )
            except Exception as exc:
                handle.finish(error=exc)

    def _rebuild_mirrors(self) -> None:
        """Reconstruct mirror protocol state by quiet journal replay.

        The mirrors' *telemetry* is already byte-exact up to the last
        applied delta, so the replay runs with instruments, tracing,
        round minting and the observatory suspended — only the protocol
        state (engines, DRBGs, channels, pipelines, schedulers) is
        recomputed, and determinism makes it converge on the workers'
        last reported state. Commands that never resolved are excluded
        (their partial worker-side effects died with the worker) and
        re-executed by the caller afterwards.
        """
        plane = self._plane
        saved: dict[str, tuple] = {}
        for name, shard in plane.shards.items():
            hub = shard.cloud.telemetry
            saved[name] = (
                hub.enabled,
                hub.round_tracking,
                hub.tracer.enabled,
                hub.observatory,
                hub._next_round_id,
                hub.tracer._next_id,
                shard.cloud.engine.now,
            )
            hub.enabled = False
            hub.round_tracking = False
            hub.tracer.enabled = False
            hub.observatory = None
            fork_now, fork_fired = self._fork_state.get(name, (0.0, 0))
            shard.cloud.engine.sync_clock(fork_now)
            # the replay really runs the mirror engine, so its stats
            # become live again from the fork-point base
            shard.cloud.engine.sync_stats(fork_fired, None)
        try:
            for handle in self._journal:
                if not handle.done or handle.shard_name not in plane.shards:
                    continue
                try:
                    perform(plane.shards[handle.shard_name], handle.op)
                except Exception:
                    # the original execution raised the same way; the
                    # caller already saw it via the handle
                    pass
        finally:
            for name, shard in plane.shards.items():
                hub = shard.cloud.telemetry
                (
                    enabled, tracking, tracer_enabled, observatory,
                    next_round_id, tracer_next_id, now,
                ) = saved[name]
                hub.enabled = enabled
                hub.round_tracking = tracking
                hub.tracer.enabled = tracer_enabled
                hub.observatory = observatory
                hub._next_round_id = next_round_id
                hub.tracer._next_id = tracer_next_id
                shard.cloud.engine.sync_clock(now)

    # ------------------------------------------------------------------
    # plane bookkeeping
    # ------------------------------------------------------------------

    def pipeline_depth(self, shard_name: str) -> int:
        """Last synced worker-side pipeline depth for one shard."""
        if self._fallback is not None:
            return self._fallback.pipeline_depth(shard_name)
        return self._depths.get(shard_name, 0)

    def attach_shard(self, shard_name: str) -> None:
        """Fork a dedicated worker for a newly built shard.

        The child inherits the just-built mirror deployment, so its
        authoritative copy starts at exactly the mirror's state.
        """
        if self._fallback is not None:
            return
        shard = self._plane.shards[shard_name]
        worker = procpool.PersistentWorker(
            _ShardWorker({shard_name: shard}),
            name=f"shard-executor-{shard_name}",
        )
        self._workers.append(worker)
        self._assignment[shard_name] = worker
        self._fork_state[shard_name] = (
            shard.cloud.engine.now, shard.cloud.engine.events_fired
        )

    def release_shard(self, shard_name: str) -> None:
        """Retire a removed shard's routing (and its worker if idle)."""
        worker = self._assignment.pop(shard_name, None)
        self._fork_state.pop(shard_name, None)
        self._depths.pop(shard_name, None)
        if worker is not None and worker not in self._assignment.values():
            worker.close()
            self._workers = [w for w in self._workers if w is not worker]

    def describe(self) -> dict:
        """Deterministic executor snapshot for ``plane.status()``."""
        if self._fallback is not None:
            return {"mode": self.mode, "workers": 0,
                    "requested_workers": self._requested}
        order = {id(w): i for i, w in enumerate(self._workers)}
        return {
            "mode": self.mode,
            "workers": len(self._workers),
            "requested_workers": self._requested,
            "assignment": {
                name: order[id(worker)]
                for name, worker in sorted(self._assignment.items())
            },
        }

    def close(self) -> None:
        """Shut every worker down (idempotent; parent process only)."""
        if self._closed or os.getpid() != self._pid:
            return
        self._closed = True
        for worker in self._workers:
            worker.close()
        self._workers = []
        self._assignment = {}


def make_executor(
    plane: "ShardPlane",
    parallel: Optional[bool] = None,
    workers: Optional[int] = None,
):
    """Build the executor the knobs ask for, degrading gracefully.

    ``None`` values read the process-wide fast-path configuration
    (``shard_parallel`` / ``shard_parallel_workers``). The forked
    executor requires ``parallel`` on, ``workers > 0`` and a host with
    the ``fork`` start method; anything else — including a fork failure
    at construction — yields the serial executor, recording the
    ``shard_parallel.unavailable`` fast-path statistic when parallelism
    was requested but could not be delivered.
    """
    config = fastpath.config()
    if parallel is None:
        parallel = config.shard_parallel
    if workers is None:
        workers = config.shard_parallel_workers
    if parallel and workers > 0:
        if procpool.fork_available():
            try:
                return ForkedShardExecutor(plane, workers)
            except procpool.WorkerCrashError:
                fastpath.record("shard_parallel.unavailable")
        else:
            fastpath.record("shard_parallel.unavailable")
    return SerialShardExecutor(plane)
