"""The shard coordinator: fan-out, merge, and hierarchical evidence.

A :class:`ShardedCustomer` is the customer-facing coordinator for a
:class:`~repro.shard.plane.ShardPlane`. It presents the familiar
single-cloud customer surface (launch, attest, fleet attest, policies)
and internally routes every call to the shard owning the VM:

* ``attest_fleet`` fans the request out as one per-shard batch per
  involved controller, then merges the verified per-shard results back
  into input order. Each shard's controller signs a Merkle root over
  its batch's Q1 leaves (the PR-5 fleet protocol, unchanged); the
  coordinator aggregates those *verified* roots hierarchically into one
  cross-shard fleet root — the intermediate-verifier pattern of the
  IBM scalable-attestation design (arXiv:2304.00382), where per-shard
  verifiers attest their slice and an aggregator binds their evidence.
* ``register_policy`` splits a logical policy's entities by ring
  ownership and registers one sub-policy per involved shard, so each
  shard's continuous scheduler fires only for its own VMs;
  ``policy_status`` merges the per-shard snapshots keyed by shard.

Every per-VM round inside a shard is the unmodified single-controller
protocol, so per-VM reports are byte-identical to an unsharded
deployment (asserted by ``tests/test_shard_plane.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.cloud.customer import LaunchResult, VerifiedAttestation
from repro.common.errors import StateError
from repro.common.identifiers import VmId
from repro.common.errors import PolicyError
from repro.policy.model import MonitoringPolicy
from repro.properties.catalog import SecurityProperty
from repro.protocol.quotes import merkle_root

if TYPE_CHECKING:  # pragma: no cover - import cycle is typing-only
    from repro.shard.plane import ShardPlane


@dataclass(frozen=True)
class CrossShardFleetReport:
    """A merged fleet attestation across control-plane shards.

    ``results`` aligns with the request order, exactly like the
    single-controller ``attest_fleet``. ``shard_roots`` holds each
    involved shard's controller-signed (and customer-verified) batch
    root; ``root`` is the hierarchical aggregate — the Merkle root over
    the shard roots in sorted shard-name order. A ``None`` shard root
    marks a shard that degraded to per-round fallback (no shared batch
    existed); the aggregate then binds only the surviving batch roots.
    """

    results: list[VerifiedAttestation]
    shard_roots: dict[str, Optional[bytes]]
    root: Optional[bytes]
    #: how many of the requested rounds each shard served
    by_shard: dict[str, int] = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        """Whether every merged report came back healthy."""
        return all(r.report.healthy for r in self.results)


@dataclass(frozen=True)
class RebalanceReport:
    """What one add/remove-shard rebalance actually did."""

    #: ``add:<name>`` or ``remove:<name>``
    reason: str
    #: vid → (old shard, new shard), only ring-adjacent moves
    moved: dict[str, tuple[str, str]]
    #: per source shard, how many in-flight rounds were drained before
    #: any of its VMs were handed off
    drained_rounds: dict[str, int]


class ShardedCustomer:
    """One customer's coordinator handle across every shard.

    Mirrors the single-cloud :class:`~repro.cloud.customer.Customer`
    surface; construction happens via :meth:`~repro.shard.plane.
    ShardPlane.register_customer`, which registers the underlying
    per-shard customer endpoints.
    """

    def __init__(self, plane: "ShardPlane", name: str):
        self.plane = plane
        self.name = name

    def _call(self, shard_name: str, method: str, *args, **kwargs):
        """Run one customer method on a shard through the executor."""
        return self.plane.executor.call(
            shard_name, ("customer", self.name, method, args, kwargs)
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def launch_vm(
        self,
        flavor_name: str,
        image_name: str,
        properties: Optional[list[SecurityProperty]] = None,
        workload: Optional[dict] = None,
        entitled_share: Optional[float] = None,
        dedicated: bool = False,
    ) -> LaunchResult:
        """Launch a VM on the shard the consistent-hash ring assigns.

        The plane mints the globally unique vid first; the ring decides
        the owning shard; the shard's controller runs the unmodified
        launch pipeline with that pre-assigned vid.
        """
        from repro.shard.plane import VmSpec

        vid = self.plane.ids.vm_id()
        shard_name = self.plane.ring.owner(str(vid))
        result = self._call(
            shard_name,
            "launch_vm",
            flavor_name,
            image_name,
            properties=properties,
            workload=workload,
            entitled_share=entitled_share,
            dedicated=dedicated,
            vid=vid,
        )
        if result.accepted:
            self.plane.placement[str(vid)] = shard_name
            self.plane.specs[str(vid)] = VmSpec(
                customer=self.name,
                flavor_name=flavor_name,
                image_name=image_name,
                properties=tuple(properties or ()),
                workload=dict(workload or {"name": "idle"}),
                entitled_share=entitled_share,
                dedicated=dedicated,
            )
            self.plane.telemetry.counter("shard.launches").inc(
                shard=shard_name
            )
        return result

    def terminate_vm(self, vid: VmId) -> None:
        """Terminate a VM on its owning shard and drop it from the plane."""
        shard = self.plane.shard_of(vid)
        self._call(shard.name, "terminate_vm", vid)
        self.plane.placement.pop(str(vid), None)
        self.plane.specs.pop(str(vid), None)

    # ------------------------------------------------------------------
    # attestation
    # ------------------------------------------------------------------

    def attest(
        self,
        vid: VmId,
        prop: SecurityProperty,
        window_ms: Optional[float] = None,
    ) -> VerifiedAttestation:
        """One-shot attestation, routed to the VM's owning shard."""
        shard = self.plane.shard_of(vid)
        self.plane.telemetry.counter("shard.fanout.rounds").inc(
            shard=shard.name, mode="on-demand"
        )
        return self._call(shard.name, "attest", vid, prop, window_ms=window_ms)

    def attest_fleet(
        self,
        requests: list[tuple[VmId, SecurityProperty]],
        window_ms: Optional[float] = None,
    ) -> CrossShardFleetReport:
        """Fleet attestation fanned out as one batch per involved shard.

        Results come back in request order; the per-shard signed batch
        roots are aggregated into one cross-shard fleet root (see the
        module docstring for the hierarchical-evidence model).
        """
        if not requests:
            return CrossShardFleetReport([], {}, None, {})
        groups: dict[str, list[int]] = {}
        for index, (vid, _prop) in enumerate(requests):
            groups.setdefault(self.plane.shard_of(vid).name, []).append(index)
        results: list[Optional[VerifiedAttestation]] = [None] * len(requests)
        shard_roots: dict[str, Optional[bytes]] = {}
        by_shard: dict[str, int] = {}
        executor = self.plane.executor
        # fan out: one batch command per involved shard, submitted in
        # sorted shard-name order (under the parallel executor the
        # batches run concurrently; under the serial executor submit
        # order *is* execution order, the historical serial plane)
        handles = [
            (
                shard_name,
                executor.submit(
                    shard_name,
                    ("customer", self.name, "attest_fleet",
                     ([requests[i] for i in groups[shard_name]],),
                     {"window_ms": window_ms, "with_root": True}),
                ),
            )
            for shard_name in sorted(groups)
        ]
        # merge: collect in the same sorted order, so per-shard replies
        # and telemetry deltas land exactly as the serial plane's would
        for shard_name, handle in handles:
            indices = groups[shard_name]
            batch = executor.result(handle)
            for index, result in zip(indices, batch.results):
                results[index] = result
            shard_roots[shard_name] = batch.batch_root
            by_shard[shard_name] = len(indices)
            self.plane.telemetry.counter("shard.fanout.batches").inc(
                shard=shard_name
            )
            self.plane.telemetry.counter("shard.fanout.rounds").inc(
                amount=len(indices), shard=shard_name, mode="fleet"
            )
        surviving = [
            shard_roots[name]
            for name in sorted(shard_roots)
            if shard_roots[name] is not None
        ]
        root = merkle_root(surviving) if surviving else None
        self.plane.telemetry.observe_event(
            "shard_fleet_merge",
            rounds=len(requests),
            shards=len(groups),
            root=root.hex() if root else "",
        )
        return CrossShardFleetReport(
            results=[r for r in results if r is not None],
            shard_roots=shard_roots,
            root=root,
            by_shard=by_shard,
        )

    # ------------------------------------------------------------------
    # monitoring policies
    # ------------------------------------------------------------------

    def register_policy(self, policy) -> dict:
        """Register a logical policy, split per shard by ring ownership.

        Each involved shard's continuous scheduler receives a
        sub-policy covering only its own VMs (plane-managed versioning
        keeps re-splits monotonic across rebalances). Re-registering a
        logical policy requires a higher logical version, mirroring the
        single-controller migration contract.
        """
        if not isinstance(policy, MonitoringPolicy):
            policy = MonitoringPolicy.from_dict(policy)
        policy.validate()
        for vid in policy.entities:
            spec = self.plane.specs.get(str(vid))
            if spec is None:
                raise StateError(f"policy entity {vid!r} is not a plane VM")
            if spec.customer != self.name:
                raise PolicyError(
                    f"policy entity {vid!r} belongs to another customer"
                )
        existing = self.plane._policies.get(policy.name)
        if existing is not None:
            owner, previous = existing
            if owner != self.name:
                raise PolicyError(
                    f"policy {policy.name!r} is owned by another customer"
                )
            if policy.version <= previous.version:
                raise PolicyError(
                    f"policy {policy.name!r} version {policy.version} does "
                    f"not supersede registered version {previous.version}"
                )
        self.plane._policies[policy.name] = (self.name, policy)
        shards = self.plane._apply_policy_split(policy.name)
        return {
            "policy": policy.name,
            "version": policy.version,
            "shards": shards,
        }

    def policy_status(self) -> dict:
        """Merged policy snapshot, keyed by shard.

        ``shards`` carries each shard's full scheduler status (entries
        already shard-tagged); ``entries`` flattens them for operators
        who want one table across the plane.
        """
        statuses: dict[str, dict] = {}
        entries: list[dict] = []
        for shard_name in sorted(self.plane.shards):
            if self.name not in self.plane._customers:
                continue
            status = self._call(shard_name, "policy_status")
            statuses[shard_name] = status
            entries.extend(status.get("entries", []))
        return {"shards": statuses, "entries": entries}
