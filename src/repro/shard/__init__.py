"""Sharded multi-controller control plane (DESIGN.md §11).

N independent CloudMonatt deployments ("shards") — each with its own
engine, controller and attestation server — fronted by a consistent-
hash ring that maps every vid to its owning shard, a coordinator that
fans fleet attestations and policy registrations out per shard and
merges the evidence hierarchically (per arXiv:2304.00382), and
ring-adjacent rebalancing with in-flight drain when shards are added or
removed. Per-VM reports stay byte-identical to the single-controller
path; ``benchmarks/bench_shard_scale.py`` measures the scaling.
"""

from repro.shard.coordinator import (
    CrossShardFleetReport,
    RebalanceReport,
    ShardedCustomer,
)
from repro.shard.plane import (
    SHARD_SEED_STRIDE,
    Shard,
    ShardPlane,
    VmSpec,
    shards_for_fleet,
)
from repro.shard.ring import DEFAULT_VNODES, ConsistentHashRing

__all__ = [
    "ConsistentHashRing",
    "CrossShardFleetReport",
    "DEFAULT_VNODES",
    "RebalanceReport",
    "SHARD_SEED_STRIDE",
    "Shard",
    "ShardPlane",
    "ShardedCustomer",
    "VmSpec",
    "shards_for_fleet",
]
