"""The shard plane: N CloudMonatt deployments behind one control plane.

A :class:`ShardPlane` owns N *shards*. Each shard is a complete,
independent CloudMonatt deployment — its own discrete-event engine,
network, controller, attestation server(s) and cloud servers — so the
per-shard simulation work (Xen scheduler ticks, credit accounting,
pipeline drains) scales with the shard's own fleet instead of the whole
cloud's. That independence is the scaling property
``benchmarks/bench_shard_scale.py`` measures: a single controller pays
every server's machinery across the whole fleet's attestation window,
while N shards each pay only their own slice.

Placement is consistent hashing (:mod:`repro.shard.ring`): the plane
mints globally unique vids and the ring maps each vid to its owning
shard, so any coordinator can route any VM's traffic without a central
lookup. Per-VM attestation rounds inside a shard are the unmodified
single-controller protocol — reports stay byte-identical to an
unsharded deployment, which the transcript-equivalence tests assert.

Rebalancing (:meth:`ShardPlane.add_shard` / :meth:`ShardPlane.
remove_shard`) derives a new ring sharing the old salt, so only
ring-adjacent VMs move; in-flight rounds on the source shards are
drained before any handoff, and standing monitoring policies are
re-split onto the new shard map.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.cloud.cloudmonatt import CloudMonatt
from repro.cloud.customer import Customer
from repro.common.errors import StateError
from repro.common.identifiers import IdFactory
from repro.shard.coordinator import RebalanceReport, ShardedCustomer
from repro.shard.parallel import make_executor
from repro.shard.ring import DEFAULT_VNODES, ConsistentHashRing
from repro.telemetry import Observatory, Telemetry

SHARD_SEED_STRIDE = 10_007
"""Prime stride between per-shard DRBG seeds. Shards are independent
deployments, so distinct seeds model distinct key material; per-VM
reports are placement- and seed-independent (asserted by the
transcript-equivalence tests), so the stride never shows up in
attestation results."""


@dataclass
class Shard:
    """One control-plane shard: a named, self-contained deployment."""

    name: str
    cloud: CloudMonatt
    #: per-customer handles onto this shard's controller
    customers: dict[str, Customer] = field(default_factory=dict)

    @property
    def now(self) -> float:
        """This shard's simulation clock (ms)."""
        return self.cloud.engine.now


def _shard_status_fields(shard: Shard) -> dict:
    # runs *inside* the executor (worker process under the forked
    # executor) so status() reports authoritative shard state, not the
    # coordinator-side mirror's
    return {
        "now_ms": shard.now,
        "servers": len(shard.cloud.servers),
        "attestation_servers": [
            attestation_server.describe()
            for attestation_server in shard.cloud.attestation_servers
        ],
    }


@dataclass(frozen=True)
class VmSpec:
    """Everything needed to relaunch a VM during a shard handoff."""

    customer: str
    flavor_name: str
    image_name: str
    properties: tuple
    workload: dict
    entitled_share: Optional[float]
    dedicated: bool


class ShardPlane:
    """N sharded CloudMonatt deployments behind one consistent-hash ring.

    ``num_shards`` initial shards are built as ``shard-1 … shard-N``,
    each a full :class:`~repro.cloud.cloudmonatt.CloudMonatt` with seed
    ``seed + i·SHARD_SEED_STRIDE`` and the shared ``cloud_kwargs``
    (servers per shard, pCPUs, key size, …). ``vnodes`` configures ring
    smoothness. The plane's own telemetry hub carries the ``shard.*``
    fan-out and rebalance counters; each shard's hub is labelled with
    its shard name so flight records stay attributable after merging.
    """

    def __init__(
        self,
        num_shards: int = 2,
        seed: int = 42,
        vnodes: int = DEFAULT_VNODES,
        telemetry_enabled: bool = False,
        parallel: Optional[bool] = None,
        parallel_workers: Optional[int] = None,
        **cloud_kwargs,
    ):
        if num_shards < 1:
            raise StateError("a shard plane needs at least one shard")
        self.seed = seed
        self._cloud_kwargs = dict(cloud_kwargs)
        self._telemetry_enabled = telemetry_enabled
        #: plane-wide vid mint: globally unique, placement-independent
        self.ids = IdFactory()
        self.shards: dict[str, Shard] = {}
        #: global VM registry: vid → owning shard name
        self.placement: dict[str, str] = {}
        #: global VM registry: vid → relaunch spec (for handoffs)
        self.specs: dict[str, VmSpec] = {}
        #: logical policy registry: name → (owner customer, policy)
        self._policies: dict[str, tuple[str, object]] = {}
        #: per-(shard, policy) applied version — plane-managed epochs,
        #: bumped on every re-split so shard controllers accept them
        self._applied_versions: dict[tuple[str, str], int] = {}
        self._customers: dict[str, ShardedCustomer] = {}
        self._next_shard_index = num_shards + 1
        #: plane-level hub: ``shard.*`` counters; its clock is the max
        #: over the shard engines (the plane has no engine of its own)
        self.telemetry = Telemetry(
            clock=self._clock, enabled=telemetry_enabled, seed=seed
        )
        if telemetry_enabled:
            # plane-level consumer: rebalance / fan-out / executor
            # events (notably shard_worker_crash) get alert coverage
            self.telemetry.attach_observatory(Observatory(self.telemetry.clock))
        names = [f"shard-{i + 1}" for i in range(num_shards)]
        self.ring = ConsistentHashRing(names, seed=seed, vnodes=vnodes)
        for index, name in enumerate(names):
            self.shards[name] = self._build_shard(name, index)
        #: executor running every shard command — serial in-process or
        #: persistent forked workers (see :mod:`repro.shard.parallel`);
        #: ``None`` knobs read the ``fastpath`` configuration
        self.executor = make_executor(self, parallel, parallel_workers)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build_shard(self, name: str, index: int) -> Shard:
        cloud = CloudMonatt(
            seed=self.seed + index * SHARD_SEED_STRIDE,
            telemetry_enabled=self._telemetry_enabled,
            shard_name=name,
            **self._cloud_kwargs,
        )
        shard = Shard(name=name, cloud=cloud)
        for customer_name in self._customers:
            shard.customers[customer_name] = cloud.register_customer(
                customer_name
            )
        return shard

    def _clock(self) -> float:
        if not self.shards:
            return 0.0
        return max(shard.now for shard in self.shards.values())

    # ------------------------------------------------------------------
    # customers and routing
    # ------------------------------------------------------------------

    def register_customer(self, name: str) -> ShardedCustomer:
        """Create a customer with a handle on every shard's controller."""
        if name in self._customers:
            raise StateError(f"customer {name!r} already registered")
        for shard_name in sorted(self.shards):
            self.executor.call(shard_name, ("register_customer", name))
        handle = ShardedCustomer(plane=self, name=name)
        self._customers[name] = handle
        return handle

    def shard_of(self, vid) -> Shard:
        """The shard currently owning a plane-tracked VM."""
        name = self.placement.get(str(vid))
        if name is None:
            raise StateError(f"VM {vid!r} is not tracked by this plane")
        return self.shards[name]

    def run_for(self, duration_ms: float) -> None:
        """Advance every shard's engine by ``duration_ms``.

        The tick is fanned out as one command per shard — under the
        parallel executor, the shards' engines (and their policy
        schedulers' firings) advance concurrently on separate cores —
        and merged back in sorted shard-name order.
        """
        executor = self.executor
        handles = [
            executor.submit(name, ("run_for", duration_ms))
            for name in sorted(self.shards)
        ]
        for handle in handles:
            executor.result(handle)

    def prewarm_for_fleet(self, expected_rounds: int) -> int:
        """Pre-generate per-server session keys on every shard."""
        executor = self.executor
        handles = [
            executor.submit(name, ("prewarm", expected_rounds))
            for name in sorted(self.shards)
        ]
        return sum(executor.result(handle) for handle in handles)

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------

    def add_shard(self, name: Optional[str] = None) -> RebalanceReport:
        """Bring a new shard online and move only its ring-adjacent VMs.

        Builds the shard's deployment, derives a new ring sharing the
        current salt (so every moved VM's new owner is the added shard),
        drains in-flight rounds on each source shard, then hands the
        moved VMs off (terminate on the source, relaunch with the same
        vid and spec on the new shard) and re-splits standing policies.
        """
        if name is None:
            name = f"shard-{self._next_shard_index}"
        self._next_shard_index += 1
        if name in self.shards:
            raise StateError(f"shard {name!r} already exists")
        new_ring = self.ring.with_shard(name)
        moved = self.ring.moved_keys(new_ring, sorted(self.placement))
        for vid, (_old, new) in moved.items():
            if new != name:  # pragma: no cover - ring adjacency guarantee
                raise StateError(
                    f"non-adjacent move: {vid} → {new} while adding {name}"
                )
        self.shards[name] = self._build_shard(name, self._next_shard_index - 2)
        self.executor.attach_shard(name)
        return self._rebalance(new_ring, moved, reason=f"add:{name}")

    def remove_shard(self, name: str) -> RebalanceReport:
        """Retire a shard, handing its VMs to their ring successors.

        Every moved VM previously lived on the removed shard (ring
        adjacency); its in-flight rounds are drained before handoff and
        the shard's deployment is dropped from the plane afterwards.
        """
        if name not in self.shards:
            raise StateError(f"shard {name!r} does not exist")
        if len(self.shards) == 1:
            raise StateError("cannot remove the last shard")
        new_ring = self.ring.without_shard(name)
        moved = self.ring.moved_keys(new_ring, sorted(self.placement))
        for vid, (old, _new) in moved.items():
            if old != name:  # pragma: no cover - ring adjacency guarantee
                raise StateError(
                    f"non-adjacent move: {vid} from {old} while removing {name}"
                )
        report = self._rebalance(new_ring, moved, reason=f"remove:{name}")
        self.executor.release_shard(name)
        del self.shards[name]
        return report

    def _drain(self, shard: Shard) -> int:
        """Resolve every in-flight round on a shard before handoff."""
        return self.executor.call(shard.name, ("drain",))

    def _rebalance(
        self,
        new_ring: ConsistentHashRing,
        moved: dict[str, tuple[str, str]],
        reason: str,
    ) -> RebalanceReport:
        drained: dict[str, int] = {}
        for source in sorted({old for old, _new in moved.values()}):
            drained[source] = self._drain(self.shards[source])
        for vid in sorted(moved):
            old_name, new_name = moved[vid]
            spec = self.specs[vid]
            self.executor.call(
                old_name,
                ("customer", spec.customer, "terminate_vm", (vid,), {}),
            )
            self.executor.call(
                new_name,
                ("customer", spec.customer, "launch_vm",
                 (spec.flavor_name, spec.image_name),
                 {
                     "properties": list(spec.properties),
                     "workload": dict(spec.workload),
                     "entitled_share": spec.entitled_share,
                     "dedicated": spec.dedicated,
                     "vid": vid,
                 }),
            )
            self.placement[vid] = new_name
            self.telemetry.counter("shard.rebalance.moved").inc(
                from_shard=old_name, to_shard=new_name
            )
        self.ring = new_ring
        # re-split standing policies onto the new shard map; entries for
        # moved (now terminated) VMs on source shards retire themselves
        # via the schedulers' eligibility hook
        for policy_name in sorted(self._policies):
            self._apply_policy_split(policy_name)
        self.telemetry.observe_event(
            "shard_rebalance",
            reason=reason,
            moved=len(moved),
            shards=len(new_ring),
        )
        return RebalanceReport(
            reason=reason, moved=dict(moved), drained_rounds=drained
        )

    # ------------------------------------------------------------------
    # policy fan-out
    # ------------------------------------------------------------------

    def _apply_policy_split(self, policy_name: str) -> dict:
        """(Re-)apply one logical policy as per-shard sub-policies.

        Entities are split by ring ownership; each involved shard gets a
        sub-policy with a plane-managed, monotonically bumped version so
        its scheduler accepts the update regardless of how many times
        the split has been re-cut by rebalances.
        """
        from repro.policy.model import MonitoringPolicy

        owner, policy = self._policies[policy_name]
        groups: dict[str, list[str]] = {}
        for vid in policy.entities:
            groups.setdefault(self.ring.owner(vid), []).append(vid)
        outcome: dict[str, dict] = {}
        for shard_name in sorted(groups):
            key = (shard_name, policy_name)
            version = self._applied_versions.get(key, 0) + 1
            self._applied_versions[key] = version
            sub = MonitoringPolicy(
                name=policy.name,
                version=version,
                entities=tuple(groups[shard_name]),
                checks=policy.checks,
                notifications=policy.notifications,
            )
            outcome[shard_name] = self.executor.call(
                shard_name, ("customer", owner, "register_policy", (sub,), {})
            )
            self.telemetry.counter("shard.policy.splits").inc(
                shard=shard_name, policy=policy_name
            )
        return outcome

    # ------------------------------------------------------------------
    # operator status
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """Deterministic operator snapshot of the whole plane.

        Per-shard live fields (clock, server count, attestation-server
        identity cards) are fetched *through the executor*: under the
        forked executor the authoritative shard state lives in a worker
        process, and the coordinator-side mirror only carries what the
        telemetry deltas replay — reading it directly would report
        stale registration counts.
        """
        distribution = self.ring.distribution(sorted(self.placement))
        return {
            "executor": self.executor.describe(),
            "shards": {
                name: {
                    "vms": distribution.get(name, 0),
                    "pipeline_depth": self.executor.pipeline_depth(name),
                    **self.executor.call(
                        name, ("apply", _shard_status_fields, ())
                    ),
                }
                for name in sorted(self.shards)
            },
            "ring": {
                "vnodes": self.ring.vnodes,
                "salt": self.ring.salt.hex(),
                "distribution": distribution,
            },
            "vms": len(self.placement),
            "customers": sorted(self._customers),
            "policies": sorted(self._policies),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the executor down (a no-op for the serial executor).

        Forked workers are daemons, so they die with the process either
        way; closing promptly releases their pipes and memory. The
        plane remains usable afterwards only through a fresh executor —
        callers are expected to close at end of life.
        """
        self.executor.close()

    def __enter__(self) -> "ShardPlane":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def shards_for_fleet(total_vms: int, vms_per_shard: int) -> int:
    """How many shards a fleet needs at a target per-shard density."""
    return max(1, math.ceil(total_vms / max(1, vms_per_shard)))
