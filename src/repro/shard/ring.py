"""Consistent-hash ring: deterministic VM → shard placement.

The ring places each shard at ``vnodes`` pseudo-random points on a
2^256 circle and assigns a VM to the first shard point at or after the
hash of its vid (wrapping at the top). Virtual nodes smooth the
per-shard load; more vnodes → tighter balance at the cost of a larger
sorted point table.

Determinism contract: every hash is salted with bytes drawn from an
:class:`~repro.crypto.drbg.HmacDrbg` seeded at construction, so two
rings built from the same ``seed`` and shard set are byte-identical —
the same vid lands on the same shard in every run, which is what lets
the transcript-equivalence tests compare sharded and single-controller
deployments at all.

Rebalancing contract: derived rings (:meth:`ConsistentHashRing.
with_shard` / :meth:`~ConsistentHashRing.without_shard`) share the
parent's salt, so adding or removing one shard only reassigns the keys
whose owning arc changed — all moved keys involve the added/removed
shard, never a third party. :meth:`~ConsistentHashRing.moved_keys`
computes exactly that set.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Optional, Sequence

from repro.common.errors import StateError
from repro.crypto.drbg import HmacDrbg

_POINT_DOMAIN = b"cloudmonatt-shard-ring/vnode"
_KEY_DOMAIN = b"cloudmonatt-shard-ring/key"

DEFAULT_VNODES = 64
"""Default virtual nodes per shard: balances a handful of shards to
within a few percent without making the point table noticeable."""


def _digest(domain: bytes, salt: bytes, *parts: bytes) -> int:
    h = hashlib.sha256()
    h.update(domain)
    for part in (salt, *parts):
        h.update(len(part).to_bytes(4, "big"))
        h.update(part)
    return int.from_bytes(h.digest(), "big")


class ConsistentHashRing:
    """Deterministic consistent-hash ring over named shards.

    ``shards`` is the initial shard set (order-insensitive: placement
    depends only on the names, the seed, and ``vnodes``). ``seed``
    feeds the DRBG that draws the ring salt; ``salt`` lets derived
    rings share a parent's placement (internal use).
    """

    def __init__(
        self,
        shards: Iterable[str] = (),
        seed: int = 0,
        vnodes: int = DEFAULT_VNODES,
        salt: Optional[bytes] = None,
    ):
        if vnodes < 1:
            raise StateError("a ring needs at least one virtual node per shard")
        self.vnodes = vnodes
        self.seed = seed
        #: the DRBG-drawn hash salt every placement digest mixes in
        self.salt = (
            salt
            if salt is not None
            else HmacDrbg(seed, personalization="shard-ring").generate(16)
        )
        self._shards: list[str] = []
        self._points: list[int] = []
        self._owners: list[str] = []
        for name in sorted(str(s) for s in shards):
            self._insert(name)  # raises on duplicate names

    # ------------------------------------------------------------------
    # construction / derivation
    # ------------------------------------------------------------------

    def _insert(self, name: str) -> None:
        if name in self._shards:
            raise StateError(f"shard {name!r} is already on the ring")
        self._shards.append(name)
        self._shards.sort()
        pairs = list(zip(self._points, self._owners))
        for index in range(self.vnodes):
            point = _digest(
                _POINT_DOMAIN,
                self.salt,
                name.encode(),
                index.to_bytes(4, "big"),
            )
            pairs.append((point, name))
        # ties (astronomically unlikely) resolve by shard name so the
        # table stays a pure function of (salt, shard set, vnodes)
        pairs.sort()
        self._points = [p for p, _ in pairs]
        self._owners = [o for _, o in pairs]

    def with_shard(self, name: str) -> "ConsistentHashRing":
        """A new ring with ``name`` added (same salt → minimal movement)."""
        ring = ConsistentHashRing(
            self._shards, seed=self.seed, vnodes=self.vnodes, salt=self.salt
        )
        ring._insert(str(name))
        return ring

    def without_shard(self, name: str) -> "ConsistentHashRing":
        """A new ring with ``name`` removed (same salt → minimal movement)."""
        name = str(name)
        if name not in self._shards:
            raise StateError(f"shard {name!r} is not on the ring")
        remaining = [s for s in self._shards if s != name]
        return ConsistentHashRing(
            remaining, seed=self.seed, vnodes=self.vnodes, salt=self.salt
        )

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    @property
    def shards(self) -> list[str]:
        """The shard names on the ring, sorted."""
        return list(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, name: object) -> bool:
        return str(name) in self._shards

    def owner(self, key: str) -> str:
        """The shard owning ``key`` (clockwise successor on the ring)."""
        if not self._shards:
            raise StateError("the ring has no shards")
        point = _digest(_KEY_DOMAIN, self.salt, str(key).encode())
        index = bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap past the top of the circle
        return self._owners[index]

    def distribution(self, keys: Sequence[str]) -> dict[str, int]:
        """How many of ``keys`` each shard owns (every shard listed)."""
        counts = {name: 0 for name in self._shards}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def moved_keys(
        self, target: "ConsistentHashRing", keys: Sequence[str]
    ) -> dict[str, tuple[str, str]]:
        """Keys whose owner differs between this ring and ``target``.

        Returns ``{key: (old_owner, new_owner)}`` preserving the input
        key order (insertion-ordered dict). With a shared salt this is
        exactly the ring-adjacent set: every moved key names the added
        or removed shard on one side of its tuple.
        """
        moved: dict[str, tuple[str, str]] = {}
        for key in keys:
            old = self.owner(key)
            new = target.owner(key)
            if old != new:
                moved[str(key)] = (old, new)
        return moved
