"""Simulated network with a Dolev-Yao attacker, and SSL-like channels.

The paper's threat model (§3.3) includes "an active adversary who has
full control of the network between different servers... able to
eavesdrop as well as falsify the attestation messages". This package
provides:

- :class:`~repro.network.network.Network` — request/response transport
  between named endpoints over the shared event engine, with a latency
  model and an attacker interposition point on every wire crossing.
- :mod:`repro.network.attacker` — attacker implementations: passive
  eavesdropper, bit-flipping tamperer, replayer, dropper and forger.
- :mod:`repro.network.faults` — the *environment* fault model: seeded
  probabilistic drop/delay/corrupt per protocol leg, for exercising the
  resilience layer (``docs/FAILURE_MODEL.md``).
- :class:`~repro.network.secure_channel.SecureEndpoint` — the SSL-like
  layer: certificate-authenticated RSA key transport handshakes yielding
  per-pair symmetric session keys (the Kx/Ky/Kz of paper Fig. 3), then
  sequence-numbered authenticated encryption for every message.
"""

from repro.network.attacker import (
    DropAttacker,
    Eavesdropper,
    ForgeAttacker,
    ReplayAttacker,
    TamperAttacker,
)
from repro.network.faults import FaultInjector, FaultSpec
from repro.network.network import Envelope, Network
from repro.network.secure_channel import SecureEndpoint

__all__ = [
    "DropAttacker",
    "Eavesdropper",
    "Envelope",
    "FaultInjector",
    "FaultSpec",
    "ForgeAttacker",
    "Network",
    "ReplayAttacker",
    "SecureEndpoint",
    "TamperAttacker",
]
