"""SSL-like secure channels between cloud entities.

Paper §3.4.1-3.4.2: entities authenticate with long-term public/private
identity key pairs, then protect traffic with symmetric session keys
(Kx between customer and controller, Ky controller-attestation server,
Kz attestation server-cloud server). This module provides that layer:

- **Handshake** (RSA key transport, both sides certificate-
  authenticated): the initiator sends its certificate, a session seed
  encrypted to the responder's public key, and a signature over the
  transcript; the responder replies with its certificate, its own
  transcript signature, and a key-confirmation MAC.
- **Record layer**: canonical-encoded bodies sealed with authenticated
  encryption; strictly increasing sequence numbers per direction defeat
  within-channel replay, and per-channel keys defeat cross-channel
  replay.

What the attacker tests show: an eavesdropper sees only ciphertext; any
bit flip is rejected; a replayed record is rejected by sequence check;
a forged record fails authentication; an endpoint presenting a
certificate not issued by the trusted CA is refused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.common.errors import (
    CryptoError,
    ProtocolError,
    RecordError,
    ReplayError,
    SignatureError,
)
from repro.crypto.certificates import (
    Certificate,
    CertificateAuthority,
    certificate_from_dict,
    certificate_to_dict,
)
from repro.crypto import fastpath
from repro.crypto.drbg import HmacDrbg
from repro.crypto.encoding import decode, encode
from repro.crypto.encryption import private_decrypt, public_encrypt
from repro.crypto.hashing import sha256
from repro.crypto.kdf import hkdf
from repro.crypto.keys import KeyPair, RsaPublicKey
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import sign, verify
from repro.crypto.symmetric import SymmetricKey, open_sealed, seal
from repro.network.network import Network
from repro.telemetry import NULL_TELEMETRY, SPAN_HANDSHAKE, Telemetry


_cert_to_dict = certificate_to_dict
_cert_from_dict = certificate_from_dict


@dataclass
class _Channel:
    """Established session state with one peer."""

    key: SymmetricKey
    channel_id: bytes
    send_seq: int = 0
    recv_seq: int = 0


def _record_nonce(channel_id: bytes, direction: str, seq: int) -> bytes:
    return sha256(["nonce", channel_id, direction, seq])[:16]


class SecureEndpoint:
    """One entity's presence on the network, with authenticated channels.

    The entity plugs in an application handler::

        endpoint.handler = lambda peer, body: {...}

    and calls peers with :meth:`call`. Channel establishment is lazy and
    transparent; each peer pair shares one session key per direction of
    establishment.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        drbg: HmacDrbg,
        ca: CertificateAuthority,
        key_bits: int = 1024,
        telemetry: Optional[Telemetry] = None,
    ):
        self.name = name
        self._network = network
        self._drbg = drbg
        self.telemetry = telemetry or NULL_TELEMETRY
        self._keypair: KeyPair = generate_keypair(drbg.fork("identity"), key_bits)
        self.certificate: Certificate = ca.issue(name, self._keypair.public)
        self._ca_key: RsaPublicKey = ca.public_key
        self._channels: dict[str, _Channel] = {}
        #: monotonically increasing handshake count per peer — the seed
        #: fork label must never repeat, even after a channel teardown
        #: shrinks ``self._channels`` back to a previous size
        self._handshake_counts: dict[str, int] = {}
        # the endpoint's own certificate never changes: encode it (and
        # the hello-ack frame that carries it) once instead of per
        # handshake — certificate serialization was a measurable slice
        # of channel establishment
        self._cert_dict: Optional[dict] = None
        self._hello_ack_wire: Optional[bytes] = None
        if fastpath.config().cache_wire_encodings:
            self._cert_dict = _cert_to_dict(self.certificate)
            self._hello_ack_wire = encode(
                {"t": "hello-ack", "cert": self._cert_dict}
            )
        self.handler: Optional[Callable[[str, dict], dict]] = None
        network.register(name, self._on_wire)

    @property
    def public_key(self) -> RsaPublicKey:
        """This endpoint's identity verification key."""
        return self._keypair.public

    def sign(self, payload: Any) -> bytes:
        """Sign ``payload`` with this entity's long-term identity key.

        The protocol layers use this for the report signatures of paper
        Fig. 3 ([...]SKc, [...]SKa) — end-to-end authenticity on top of
        the channel encryption.
        """
        return sign(self._keypair.private, payload)

    @staticmethod
    def _expect(message: Any, msg_type: str) -> dict:
        """Validate a decoded wire message's type tag."""
        if not isinstance(message, dict) or message.get("t") != msg_type:
            raise RecordError(f"expected {msg_type!r} message")
        return message

    @staticmethod
    def _record_fields(message: dict) -> tuple[int, bytes]:
        """Extract and type-check a data record's (seq, sealed) fields.

        Wire corruption can decode into a structurally valid dict with
        mangled field names or types; that must surface as a protocol
        error, never an internal KeyError/TypeError.
        """
        seq = message.get("seq")
        sealed = message.get("sealed")
        if not isinstance(seq, int) or not isinstance(sealed, (bytes, bytearray)):
            raise RecordError("malformed data record")
        return seq, bytes(sealed)

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------

    def call(self, peer: str, body: dict) -> dict:
        """Send ``body`` to ``peer`` over an authenticated channel.

        On any failure — delivery, authentication, or sequencing — the
        channel is torn down before the error propagates, so the next
        call re-handshakes from scratch. This mirrors TLS semantics: a
        corrupted or lost record kills the connection; it never leaves a
        half-synchronized session behind.
        """
        if peer not in self._channels:
            self._handshake(peer)
        try:
            return self._exchange(peer, body)
        except Exception:
            self._channels.pop(peer, None)
            raise

    def _exchange(self, peer: str, body: dict) -> dict:
        channel = self._channels[peer]
        seq = channel.send_seq
        channel.send_seq += 1
        sealed = seal(
            channel.key, encode(body), _record_nonce(channel.channel_id, "i2r", seq)
        )
        wire = encode({"t": "data", "from": self.name, "seq": seq, "sealed": sealed})
        if self.telemetry.enabled:
            self.telemetry.counter("channel.records_sent").inc(endpoint=self.name)
            self.telemetry.histogram(
                "channel.record_bytes", buckets=(256, 1024, 4096, 16384, 65536)
            ).observe(len(wire), endpoint=self.name)
        raw_response = self._network.rpc(self.name, peer, wire)
        response = self._expect(decode(raw_response), "data")
        response_seq, response_sealed = self._record_fields(response)
        if response_seq != channel.recv_seq:
            raise ReplayError(
                f"response sequence {response_seq} != expected {channel.recv_seq}"
            )
        channel.recv_seq += 1
        plaintext = open_sealed(channel.key, response_sealed)
        return decode(plaintext)

    def _handshake(self, peer: str) -> None:
        """Establish a session key with ``peer`` (initiator side)."""
        with self.telemetry.span(
            SPAN_HANDSHAKE,
            initiator=self.name,
            peer=peer,
            # a repeat handshake means the previous channel was torn
            # down (call failure) — the flight recorder's causal chain
            # renders it as a "re-handshake" step
            rehandshake=self._handshake_counts.get(peer, 0) > 0,
        ):
            self._handshake_rounds(peer)
        self.telemetry.counter("channel.handshakes").inc(endpoint=self.name)

    def _handshake_rounds(self, peer: str) -> None:
        # per-peer handshake counter, NOT len(self._channels): the
        # channel count shrinks back after a teardown, so a count-based
        # label could repeat and re-derive a previous session seed
        attempt = self._handshake_counts.get(peer, 0) + 1
        self._handshake_counts[peer] = attempt
        seed = self._drbg.fork(f"seed-{peer}-{attempt}").generate(32)
        # fetch the peer's certificate out of band via a hello round;
        # in TLS terms this is ServerHello+Certificate before key exchange
        hello_wire = self._network.rpc(
            self.name, peer, encode({"t": "hello", "from": self.name})
        )
        hello = self._expect(decode(hello_wire), "hello-ack")
        peer_cert = _cert_from_dict(hello["cert"])
        self._check_cert(peer_cert, expected_subject=peer)
        enc_seed = public_encrypt(
            peer_cert.public_key, seed, self._drbg.fork(f"pad-{peer}")
        )
        transcript = {
            "from": self.name,
            "to": peer,
            "enc_seed": enc_seed,
            "initiator_cert": self._cert_dict or _cert_to_dict(self.certificate),
        }
        hs1 = {
            "t": "hs1",
            "transcript": transcript,
            "sig": sign(self._keypair.private, transcript),
        }
        hs2 = self._expect(decode(self._network.rpc(self.name, peer, encode(hs1))), "hs2")
        channel_id = sha256(transcript)
        key = SymmetricKey(hkdf(seed, b"channel-key", 32, salt=channel_id))
        verify(peer_cert.public_key, {"confirm-transcript": channel_id}, bytes(hs2["sig"]))
        expected_confirm = hkdf(key.material, b"confirm", 32)
        if bytes(hs2["confirm"]) != expected_confirm:
            raise CryptoError("handshake key confirmation failed")
        self._channels[peer] = _Channel(key=key, channel_id=channel_id)

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------

    def _on_wire(self, sender: str, wire: bytes) -> bytes:
        message = decode(wire)
        if not isinstance(message, dict) or "t" not in message:
            raise RecordError("malformed wire message")
        msg_type = message["t"]
        if msg_type == "hello":
            if self._hello_ack_wire is not None:
                return self._hello_ack_wire
            return encode(
                {"t": "hello-ack", "cert": _cert_to_dict(self.certificate)}
            )
        if msg_type == "hs1":
            return self._accept_handshake(message)
        if msg_type == "data":
            return self._accept_data(message)
        raise RecordError(f"unknown message type {msg_type!r}")

    def _accept_handshake(self, message: dict) -> bytes:
        transcript = message["transcript"]
        if transcript["to"] != self.name:
            raise ProtocolError("handshake addressed to a different endpoint")
        initiator_cert = _cert_from_dict(transcript["initiator_cert"])
        self._check_cert(initiator_cert)
        verify(initiator_cert.public_key, transcript, bytes(message["sig"]))
        seed = private_decrypt(self._keypair.private, bytes(transcript["enc_seed"]))
        channel_id = sha256(transcript)
        key = SymmetricKey(hkdf(seed, b"channel-key", 32, salt=channel_id))
        # bind the channel to the *certified* identity, not the claimed one
        self._channels[initiator_cert.subject] = _Channel(
            key=key, channel_id=channel_id
        )
        return encode(
            {
                "t": "hs2",
                "sig": sign(self._keypair.private, {"confirm-transcript": channel_id}),
                "confirm": hkdf(key.material, b"confirm", 32),
            }
        )

    def _accept_data(self, message: dict) -> bytes:
        peer = message.get("from")
        if not isinstance(peer, str):
            raise RecordError("malformed data record (sender)")
        channel = self._channels.get(peer)
        if channel is None:
            # the responder lost (or never had) session state for this
            # peer; a fresh initiator handshake repairs it, so this is a
            # RecordError — transient for the resilience layer
            raise RecordError(f"no established channel with {peer!r}")
        seq, sealed = self._record_fields(message)
        if seq != channel.recv_seq:
            raise ReplayError(f"record sequence {seq} != expected {channel.recv_seq}")
        plaintext = open_sealed(channel.key, sealed)
        channel.recv_seq += 1
        if self.telemetry.enabled:
            self.telemetry.counter("channel.records_received").inc(
                endpoint=self.name
            )
        body = decode(plaintext)
        if self.handler is None:
            raise ProtocolError(f"endpoint {self.name!r} has no application handler")
        response_body = self.handler(peer, body)
        response_seq = channel.send_seq
        channel.send_seq += 1
        sealed = seal(
            channel.key,
            encode(response_body),
            _record_nonce(channel.channel_id, "r2i", response_seq),
        )
        return encode({"t": "data", "seq": response_seq, "sealed": sealed})

    def _check_cert(
        self, certificate: Certificate, expected_subject: Optional[str] = None
    ) -> None:
        try:
            verify(self._ca_key, certificate.tbs(), certificate.signature)
        except SignatureError as exc:
            raise SignatureError(
                f"certificate for {certificate.subject!r} not issued by trusted CA"
            ) from exc
        if expected_subject is not None and certificate.subject != expected_subject:
            raise SignatureError(
                f"certificate subject {certificate.subject!r} != {expected_subject!r}"
            )
