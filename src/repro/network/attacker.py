"""Dolev-Yao attacker implementations for the security evaluation.

Each class exercises one capability of the paper's network adversary
(§3.3): eavesdropping, falsification, replay, denial, and forgery. The
security tests assert that the secure-channel layer defeats each one —
except denial, which no cryptography prevents (the protocol surfaces it
as a delivery failure rather than a forged report).
"""

from __future__ import annotations

from typing import Optional

from repro.network.network import Envelope


class Eavesdropper:
    """Passive: records every payload, delivers unchanged.

    Secrecy holds if recorded traffic never contains protected plaintext.
    """

    def __init__(self):
        self.captured: list[Envelope] = []

    def process(self, envelope: Envelope) -> Optional[bytes]:
        self.captured.append(envelope)
        return envelope.payload

    def saw_plaintext(self, marker: bytes) -> bool:
        """Whether any captured payload contains ``marker`` in the clear."""
        return any(marker in env.payload for env in self.captured)


class TamperAttacker:
    """Active: flips one byte in messages matching a direction filter."""

    def __init__(self, direction: str = "response", flip_offset: int = -10):
        self.direction = direction
        self.flip_offset = flip_offset
        self.tampered_count = 0

    def process(self, envelope: Envelope) -> Optional[bytes]:
        if envelope.direction != self.direction or not envelope.payload:
            return envelope.payload
        payload = bytearray(envelope.payload)
        payload[self.flip_offset % len(payload)] ^= 0x01
        self.tampered_count += 1
        return bytes(payload)


class ReplayAttacker:
    """Active: records payloads, then replays a captured one on demand.

    ``arm(index)`` makes the attacker substitute the recorded payload
    for the next message in the same direction — modelling an adversary
    who suppresses a fresh report and replays a stale favourable one.
    """

    def __init__(self, direction: str = "response"):
        self.direction = direction
        self.captured: list[bytes] = []
        self._armed: Optional[int] = None

    def arm(self, index: int = 0) -> None:
        """Substitute capture #``index`` for the next matching message."""
        self._armed = index

    def process(self, envelope: Envelope) -> Optional[bytes]:
        if envelope.direction != self.direction:
            return envelope.payload
        if self._armed is not None and self._armed < len(self.captured):
            stale = self.captured[self._armed]
            self._armed = None
            return stale
        self.captured.append(envelope.payload)
        return envelope.payload


class DropAttacker:
    """Active: drops every ``n``-th matching message (denial of service)."""

    def __init__(self, direction: str = "request", drop_every: int = 1):
        if drop_every < 1:
            raise ValueError("drop_every must be >= 1")
        self.direction = direction
        self.drop_every = drop_every
        self._count = 0

    def process(self, envelope: Envelope) -> Optional[bytes]:
        if envelope.direction != self.direction:
            return envelope.payload
        self._count += 1
        if self._count % self.drop_every == 0:
            return None
        return envelope.payload


class ForgeAttacker:
    """Active: replaces matching payloads with attacker-chosen bytes.

    Models an adversary fabricating an entire "attestation report"
    without knowing any keys; the channel layer must reject it.
    """

    def __init__(self, forged_payload: bytes, direction: str = "response"):
        self.forged_payload = forged_payload
        self.direction = direction
        self.forged_count = 0

    def process(self, envelope: Envelope) -> Optional[bytes]:
        if envelope.direction != self.direction:
            return envelope.payload
        self.forged_count += 1
        return self.forged_payload
