"""The wire: named endpoints, latency, and the attacker interposition.

Transport is synchronous request/response (the attestation protocol of
Fig. 3 is strictly request/response at every hop), but *time is real*:
each wire crossing advances the shared event engine by the modelled
latency, so VM execution, measurement windows and scheduler events
interleave naturally with protocol traffic. This is what makes the
launch/attestation timing figures (9-11) fall out of the same clock as
the scheduler experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.common.errors import LegTimeoutError, NetworkError, UnknownEndpointError
from repro.common.rng import DeterministicRng
from repro.resilience.legs import leg_of
from repro.sim.engine import Engine


@dataclass(frozen=True)
class Envelope:
    """One message in transit."""

    sender: str
    receiver: str
    payload: bytes
    #: "request" or "response" — lets attackers target a direction
    direction: str = "request"


class WireAttacker(Protocol):
    """Attacker interposed on every wire crossing.

    ``process`` may return the payload unchanged (eavesdrop), a modified
    payload (tamper/forge), or ``None`` to drop the message.
    """

    def process(self, envelope: Envelope) -> Optional[bytes]: ...


class Network:
    """Request/response transport between named endpoints."""

    def __init__(
        self,
        engine: Engine,
        rng: DeterministicRng,
        latency_ms: float = 0.35,
        latency_jitter: float = 0.15,
        leg_timeouts: Optional[dict[str, float]] = None,
    ):
        if latency_ms < 0:
            raise NetworkError("latency cannot be negative")
        self.engine = engine
        self._rng = rng
        self.latency_ms = latency_ms
        self.latency_jitter = latency_jitter
        #: per-leg crossing budgets in ms (see repro.resilience.legs);
        #: a crossing that would exceed its leg's budget raises
        #: LegTimeoutError after advancing the clock by exactly the
        #: budget. Legs absent from the dict never time out.
        self.leg_timeouts: dict[str, float] = dict(leg_timeouts or {})
        self._handlers: dict[str, Callable[[str, bytes], bytes]] = {}
        self.attacker: Optional[WireAttacker] = None
        #: environment fault model (see repro.network.faults); applied
        #: after the attacker, before latency
        self.fault_injector = None
        #: total messages carried (for the performance evaluation)
        self.messages_sent = 0
        #: total bytes carried
        self.bytes_sent = 0

    def register(self, name: str, handler: Callable[[str, bytes], bytes]) -> None:
        """Attach an endpoint: ``handler(sender_name, request) -> response``."""
        if name in self._handlers:
            raise NetworkError(f"endpoint {name!r} already registered")
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        """Detach an endpoint (server decommissioned)."""
        self._handlers.pop(name, None)

    def install_attacker(self, attacker: Optional[WireAttacker]) -> None:
        """Put an attacker on the wire (or remove with ``None``)."""
        self.attacker = attacker

    def install_fault_injector(self, injector) -> None:
        """Put an environment fault model on the wire (``None`` removes)."""
        self.fault_injector = injector

    def _cross_wire(self, envelope: Envelope) -> bytes:
        """One direction of transit: attacker, faults, then latency."""
        payload: Optional[bytes] = envelope.payload
        if self.attacker is not None:
            payload = self.attacker.process(envelope)
        if payload is None:
            raise NetworkError(
                f"message {envelope.sender} -> {envelope.receiver} "
                "dropped in transit"
            )
        extra_delay = 0.0
        leg = None
        if self.fault_injector is not None or self.leg_timeouts:
            leg = leg_of(envelope.sender, envelope.receiver)
        if self.fault_injector is not None:
            payload, extra_delay = self.fault_injector.apply(leg, envelope, payload)
            if payload is None:
                raise NetworkError(
                    f"message {envelope.sender} -> {envelope.receiver} "
                    "dropped in transit (injected fault)"
                )
        latency = self._rng.jitter(self.latency_ms, self.latency_jitter) + extra_delay
        timeout = self.leg_timeouts.get(leg) if leg is not None else None
        if timeout is not None and latency > timeout:
            # deterministic timeout: the caller waits out exactly its
            # budget before giving up on the crossing
            self.engine.run_until(self.engine.now + timeout)
            raise LegTimeoutError(
                f"crossing {envelope.sender} -> {envelope.receiver} exceeded "
                f"the {timeout:.0f} ms budget for leg {leg!r}"
            )
        self.engine.run_until(self.engine.now + latency)
        self.messages_sent += 1
        self.bytes_sent += len(payload)
        return payload

    def rpc(self, sender: str, receiver: str, request: bytes) -> bytes:
        """Send a request and return the response, paying latency each way."""
        handler = self._handlers.get(receiver)
        if handler is None:
            raise UnknownEndpointError(f"no endpoint {receiver!r} on the network")
        delivered = self._cross_wire(
            Envelope(sender=sender, receiver=receiver, payload=request)
        )
        response = handler(sender, delivered)
        return self._cross_wire(
            Envelope(
                sender=receiver, receiver=sender, payload=response,
                direction="response",
            )
        )
