"""Seeded fault injection on the wire, per protocol leg.

Where :class:`~repro.network.network.WireAttacker` models an *adversary*
(tamper, forge, targeted drops), this module models the *environment*:
probabilistic drops, delays, and corruptions of the kind a congested or
flaky datacenter network produces. Faults are drawn from a dedicated
:class:`~repro.common.rng.DeterministicRng` child, so a fault plan plus
a seed fully determines which crossings fail — the property the
byte-identical-recovery tests in ``tests/test_resilience.py`` rely on.

A plan maps leg names (see :mod:`repro.resilience.legs`) to
:class:`FaultSpec`\\ s. Crossings outside the four protocol legs (pCA
enrollment) are never faulted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.network.network import Envelope

FAULT_DROP = "drop"
FAULT_CORRUPT = "corrupt"
FAULT_DELAY = "delay"


@dataclass(frozen=True)
class FaultSpec:
    """Fault probabilities for one protocol leg.

    Each crossing on the leg draws (in fixed drop → corrupt → delay
    order) against the configured probabilities; at most one fault is
    injected per crossing. ``limit`` bounds the *total* number of
    faults injected on the leg — ``FaultSpec(drop=1.0, limit=1)`` is
    the canonical "one transient drop, then a clean network" burst.
    ``direction`` restricts faults to ``"request"`` or ``"response"``
    crossings (``None`` = both).
    """

    drop: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    delay_ms: float = 0.0
    direction: Optional[str] = None
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        for name in (FAULT_DROP, FAULT_CORRUPT, FAULT_DELAY):
            probability = getattr(self, name)
            if not 0.0 <= probability <= 1.0:
                raise ConfigurationError(
                    f"{name} probability must be in [0, 1], got {probability}"
                )
        if self.delay_ms < 0:
            raise ConfigurationError("injected delay cannot be negative")
        if self.direction not in (None, "request", "response"):
            raise ConfigurationError(
                f"direction must be 'request', 'response' or None, "
                f"got {self.direction!r}"
            )
        if self.limit is not None and self.limit < 0:
            raise ConfigurationError("fault limit cannot be negative")


class FaultInjector:
    """Applies a per-leg fault plan to wire crossings, deterministically."""

    def __init__(self, rng: DeterministicRng, plan: dict[str, FaultSpec]):
        self._rng = rng
        self.plan = dict(plan)
        #: faults injected so far: leg -> kind -> count
        self.injected: dict[str, dict[str, int]] = {
            leg: {FAULT_DROP: 0, FAULT_CORRUPT: 0, FAULT_DELAY: 0}
            for leg in self.plan
        }

    def total_injected(self, leg: Optional[str] = None) -> int:
        """Faults injected so far, on one leg or overall."""
        legs = [leg] if leg is not None else list(self.injected)
        return sum(
            count
            for name in legs
            for count in self.injected.get(name, {}).values()
        )

    def apply(
        self, leg: Optional[str], envelope: Envelope, payload: bytes
    ) -> tuple[Optional[bytes], float]:
        """One crossing: returns ``(payload_or_None, extra_delay_ms)``.

        ``None`` payload means the message was dropped; a corrupted
        payload has one byte flipped at a seeded offset.
        """
        spec = self.plan.get(leg) if leg is not None else None
        if spec is None:
            return payload, 0.0
        if spec.direction is not None and envelope.direction != spec.direction:
            return payload, 0.0
        if spec.limit is not None and self.total_injected(leg) >= spec.limit:
            return payload, 0.0
        counts = self.injected[leg]
        if spec.drop > 0.0 and self._rng.random() < spec.drop:
            counts[FAULT_DROP] += 1
            return None, 0.0
        if spec.corrupt > 0.0 and self._rng.random() < spec.corrupt:
            counts[FAULT_CORRUPT] += 1
            offset = self._rng.randint(0, len(payload) - 1) if payload else 0
            corrupted = bytearray(payload)
            if corrupted:
                corrupted[offset] ^= 0xFF
            return bytes(corrupted), 0.0
        if spec.delay > 0.0 and self._rng.random() < spec.delay:
            counts[FAULT_DELAY] += 1
            return payload, spec.delay_ms
        return payload, 0.0
