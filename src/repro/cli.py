"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``demo`` — launch a monitored VM and attest all four properties;
- ``attack <scenario>`` — run one attack scenario end to end and show
  detection plus remediation (scenarios: ``covert``, ``bus-covert``,
  ``availability``, ``rootkit``, ``tampered-image``);
- ``verify-protocol [--variant V]`` — run the symbolic verifier;
- ``leak-analysis`` — the key-leak trust-dependency matrix;
- ``export-proverif [PATH]`` — write the ProVerif cross-check model;
- ``launch-matrix`` — the Fig. 9 launch-stage breakdown;
- ``telemetry [TRACE]`` — run the demo workload with tracing on (or
  summarize an existing JSONL trace) and print the per-span latency
  summary;
- ``policy validate|show|status`` — check a monitoring-policy JSON
  document against the schema and property catalog, render its
  compiled checks, or run it over a seeded demo fleet and print the
  schedule entries and alarm-transition timeline;
- ``health TRACE`` — the fleet health scoreboard of a recorded run;
- ``alerts TRACE`` — the alert log of a recorded run;
- ``trace TRACE`` — query the span store of a recorded run (filters,
  per-leg percentiles, waterfall rendering).

Every simulating command accepts ``--telemetry-out PATH``: the run
executes with the observability hub (and its observatory consumer
layer) enabled and exports a JSONL trace — spans, metrics, events,
alerts, scoreboard, SLO report, stamped with the run's seed — when it
finishes. ``--telemetry-format prometheus`` writes the final metrics
in the Prometheus text exposition format instead. The ``--slo-*``
flags set the per-leg latency targets the alert engine enforces.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import CloudMonatt, SecurityProperty
from repro.controller.response import ResponseAction


def _slo_targets(args: argparse.Namespace):
    """The per-leg SLO override dict from the --slo-* flags, if any."""
    from repro.telemetry import DEFAULT_SLO_TARGETS
    from repro.telemetry.tracer import SPAN_APPRAISAL, SPAN_Q1, SPAN_Q2, SPAN_Q3

    overrides = {
        SPAN_Q1: getattr(args, "slo_q1", None),
        SPAN_Q2: getattr(args, "slo_q2", None),
        SPAN_Q3: getattr(args, "slo_q3", None),
        SPAN_APPRAISAL: getattr(args, "slo_appraisal", None),
    }
    if all(value is None for value in overrides.values()):
        return None
    targets = dict(DEFAULT_SLO_TARGETS)
    for leg, value in overrides.items():
        if value is not None:
            targets[leg] = float(value)
    return targets


def _make_cloud(args: argparse.Namespace, **kwargs) -> CloudMonatt:
    """Build a cloud honoring the global --seed / --telemetry-out flags."""
    kwargs.setdefault("seed", args.seed)
    if getattr(args, "telemetry_out", None) or getattr(args, "_telemetry", False):
        kwargs.setdefault("telemetry_enabled", True)
        kwargs.setdefault("slo_targets", _slo_targets(args))
    return CloudMonatt(**kwargs)


def _export_telemetry(
    args: argparse.Namespace, cloud: CloudMonatt, append: bool = False
) -> None:
    """Write the run's trace if --telemetry-out was given."""
    path = getattr(args, "telemetry_out", None)
    if not path or not cloud.telemetry.enabled:
        return
    from repro.telemetry import write_jsonl, write_prometheus

    fmt = getattr(args, "telemetry_format", "jsonl")
    try:
        if fmt == "prometheus":
            # snapshot semantics: the last run's final metrics win
            write_prometheus(cloud.telemetry, path)
        else:
            write_jsonl(cloud.telemetry, path, seed=args.seed, append=append)
    except OSError as exc:
        print(f"error: cannot write telemetry trace to {path}: {exc}",
              file=sys.stderr)
        raise SystemExit(2)
    if not append:
        print(f"telemetry trace written to {path}")


def _load_trace(path: str) -> list[dict]:
    """Read a JSONL trace, exiting cleanly on unreadable/malformed input."""
    from repro.telemetry import TraceFormatError, read_jsonl

    try:
        return read_jsonl(path)
    except OSError as exc:
        print(f"error: cannot read trace {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    except TraceFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _print_report(label: str, result) -> None:
    status = "healthy" if result.report.healthy else "COMPROMISED"
    print(f"  {label:28s} {status:12s} ({result.attest_ms:6.0f} ms)")
    print(f"    -> {result.report.explanation}")
    if result.response and result.response["action"] != "none":
        print(f"    remediation: {result.response['action']} "
              f"({result.response['reaction_ms']:.0f} ms)")


def cmd_demo(args: argparse.Namespace) -> int:
    cloud = _make_cloud(args, num_servers=3)
    alice = cloud.register_customer("alice")
    vm = alice.launch_vm(
        "small", "ubuntu",
        properties=[SecurityProperty.STARTUP_INTEGRITY,
                    SecurityProperty.RUNTIME_INTEGRITY,
                    SecurityProperty.COVERT_CHANNEL_FREEDOM,
                    SecurityProperty.CPU_AVAILABILITY],
        workload={"name": "app"},
    )
    print(f"VM {vm.vid}: launch {'accepted' if vm.accepted else 'rejected'} "
          f"in {vm.total_ms / 1000.0:.2f} s")
    for stage, duration in vm.stage_times_ms.items():
        print(f"  {stage:22s} {duration:8.0f} ms")
    print("\nruntime attestations:")
    for prop in (SecurityProperty.RUNTIME_INTEGRITY,
                 SecurityProperty.COVERT_CHANNEL_FREEDOM,
                 SecurityProperty.CPU_AVAILABILITY):
        _print_report(prop.value, alice.attest(vm.vid, prop))
    _export_telemetry(args, cloud)
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    scenario = args.scenario
    if scenario == "covert":
        cloud = _make_cloud(args, num_servers=1, num_pcpus=1)
        cloud.controller.response.set_policy(
            SecurityProperty.COVERT_CHANNEL_FREEDOM, ResponseAction.MIGRATE
        )
        alice = cloud.register_customer("alice")
        target = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.COVERT_CHANNEL_FREEDOM,
                        SecurityProperty.STARTUP_INTEGRITY],
            workload={"name": "covert_channel_sender"}, pins=[0],
        )
        alice.launch_vm("small", "ubuntu", workload={"name": "cpu_bound"},
                        pins=[0])
        prop = SecurityProperty.COVERT_CHANNEL_FREEDOM
    elif scenario == "bus-covert":
        cloud = _make_cloud(args, num_servers=1, num_pcpus=2)
        alice = cloud.register_customer("alice")
        target = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.COVERT_CHANNEL_FREEDOM,
                        SecurityProperty.STARTUP_INTEGRITY],
            workload={"name": "bus_covert_channel_sender"}, pins=[1],
        )
        alice.launch_vm("small", "ubuntu", workload={"name": "cpu_bound"},
                        pins=[0])
        prop = SecurityProperty.COVERT_CHANNEL_FREEDOM
    elif scenario == "availability":
        cloud = _make_cloud(args, num_servers=2, num_pcpus=1)
        cloud.controller.response.set_policy(
            SecurityProperty.CPU_AVAILABILITY, ResponseAction.MIGRATE
        )
        alice = cloud.register_customer("alice")
        target = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.CPU_AVAILABILITY,
                        SecurityProperty.STARTUP_INTEGRITY],
            workload={"name": "cpu_bound"}, pins=[0],
        )
        server = cloud.controller.database.vm(target.vid).server
        alice.launch_vm(
            "medium", "ubuntu", workload={"name": "cpu_availability_attack"},
            pins=[0, 0], force_server=str(server),
        )
        prop = SecurityProperty.CPU_AVAILABILITY
    elif scenario == "rootkit":
        from repro.guest import Rootkit

        cloud = _make_cloud(args, num_servers=1)
        alice = cloud.register_customer("alice")
        target = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.RUNTIME_INTEGRITY,
                        SecurityProperty.STARTUP_INTEGRITY],
        )
        Rootkit().infect(cloud.server_of(target.vid).hosted[target.vid].guest)
        prop = SecurityProperty.RUNTIME_INTEGRITY
    elif scenario == "tampered-image":
        from repro.attacks.image_tampering import tamper_image
        from repro.lifecycle.flavors import VmImage

        cloud = _make_cloud(args, num_servers=1)
        pristine = cloud.images["fedora"]
        cloud.controller.images["fedora"] = VmImage(
            name="fedora", size_mb=pristine.size_mb,
            content=tamper_image(pristine.content),
        )
        alice = cloud.register_customer("alice")
        result = alice.launch_vm(
            "small", "fedora", properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        print(f"launch accepted: {result.accepted}")
        print(f"  -> {result.report.explanation}")
        _export_telemetry(args, cloud)
        return 0
    else:  # pragma: no cover - argparse restricts choices
        print(f"unknown scenario {scenario}", file=sys.stderr)
        return 2
    _print_report(scenario, alice.attest(target.vid, prop))
    _export_telemetry(args, cloud)
    return 0


def cmd_verify_protocol(args: argparse.Namespace) -> int:
    from repro.verification import ProtocolVariant, ProtocolVerifier

    variant = ProtocolVariant(args.variant)
    verifier = ProtocolVerifier(variant)
    failures = 0
    for result in verifier.verify_all():
        status = "verified    " if result.holds else "ATTACK FOUND"
        print(f"[{status}] {result.property_id} {result.description}")
        if not result.holds:
            failures += 1
    print(f"\n{failures} attack(s) found on the {variant.value} protocol")
    return 0 if (failures == 0) == (variant is ProtocolVariant.STANDARD) else 1


def cmd_leak_analysis(args: argparse.Namespace) -> int:
    from repro.verification.verifier import trust_dependency_matrix

    for key, failures in trust_dependency_matrix().items():
        print(f"leak {key}:")
        if not failures:
            print("  (nothing breaks)")
        for failure in failures:
            print(f"  [{failure.property_id}] {failure.description}")
    return 0


def cmd_export_proverif(args: argparse.Namespace) -> int:
    from repro.verification.proverif_export import export_proverif, write_proverif

    if args.path:
        print(f"wrote {write_proverif(args.path)}")
    else:
        print(export_proverif())
    return 0


def cmd_launch_matrix(args: argparse.Namespace) -> int:
    first = True
    for image in ("cirros", "fedora", "ubuntu"):
        for flavor in ("small", "medium", "large"):
            cloud = _make_cloud(args, num_servers=3)
            alice = cloud.register_customer("alice")
            result = alice.launch_vm(
                flavor, image, properties=[SecurityProperty.STARTUP_INTEGRITY]
            )
            attest_pct = result.stage_times_ms["attestation"] / result.total_ms
            print(f"{image:8s} {flavor:8s} total {result.total_ms / 1000.0:5.2f} s "
                  f"(attestation {attest_pct:4.0%})")
            _export_telemetry(args, cloud, append=not first)
            first = False
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Run the demo workload with tracing on; print the span summary.

    With a TRACE argument, summarize that recorded artifact instead of
    running a fresh simulation.
    """
    from repro.telemetry import console_summary

    if args.trace:
        from repro.telemetry.observatory import TraceStore

        records = _load_trace(args.trace)
        store = TraceStore.from_records(records)
        print(store.render_leg_table(title=f"trace summary ({args.trace})"))
        return 0
    args._telemetry = True
    cloud = _make_cloud(args, num_servers=3)
    alice = cloud.register_customer("alice")
    vm = alice.launch_vm(
        "small", "ubuntu",
        properties=[SecurityProperty.STARTUP_INTEGRITY,
                    SecurityProperty.RUNTIME_INTEGRITY,
                    SecurityProperty.CPU_AVAILABILITY],
        workload={"name": "app"},
    )
    for prop in (SecurityProperty.RUNTIME_INTEGRITY,
                 SecurityProperty.CPU_AVAILABILITY):
        alice.attest(vm.vid, prop)
    print(console_summary(cloud.telemetry,
                          title=f"span latency summary (seed {args.seed})"))
    print()
    print(_fastpath_summary(cloud))
    _export_telemetry(args, cloud)
    return 0


def _fastpath_summary(cloud: CloudMonatt) -> str:
    """Crypto fast-path cache counters for the telemetry summary.

    Key-pool hits/misses/prefills come from the cloud's own hub (one
    series per Trust Module, summed); the verification-memo counters are
    process-global (the memo is shared across endpoints) and read from
    :mod:`repro.crypto.fastpath`. The degraded-path counters make a
    struggling fleet run visible from here: a non-zero
    ``pipeline.batch.fallbacks`` means a batched round fell back to the
    serial path, and ``crypto.keypool.exhausted`` means a pre-warmed
    pool ran dry and keygen landed on the critical path.
    """
    from repro.crypto import fastpath

    metrics = cloud.telemetry.metrics
    lines = ["=== crypto fast-path caches ==="]
    for name in ("crypto.keypool.hit", "crypto.keypool.miss",
                 "crypto.keypool.prefill"):
        lines.append(f"{name:<28} {metrics.counter(name).total():.0f}")
    stats = fastpath.stats()
    for name in ("verify_memo.hit", "verify_memo.miss"):
        lines.append(f"crypto.{name:<21} {stats.get(name, 0)}")
    lines.append("=== degraded paths ===")
    for name in ("pipeline.batch.fallbacks", "crypto.keypool.exhausted"):
        lines.append(f"{name:<28} {metrics.counter(name).total():.0f}")
    return "\n".join(lines)


def _load_policy(path: str):
    """Parse a policy JSON file, exiting cleanly on malformed input."""
    from repro.common.errors import PolicyError
    from repro.policy import MonitoringPolicy

    try:
        document = json.loads(open(path, encoding="utf-8").read())
    except OSError as exc:
        print(f"error: cannot read policy {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON: {exc}", file=sys.stderr)
        raise SystemExit(2)
    try:
        return MonitoringPolicy.from_dict(document)
    except PolicyError as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        raise SystemExit(1)


def cmd_policy(args: argparse.Namespace) -> int:
    """Validate, render, or demo-run a monitoring policy document."""
    from repro.common.errors import PolicyError
    from repro.properties.catalog import PropertyCatalog

    if args.policy_command == "validate":
        policy = _load_policy(args.path)
        try:
            policy.validate(PropertyCatalog())
        except PolicyError as exc:
            print(f"error: {args.path}: {exc}", file=sys.stderr)
            return 1
        checks = len(policy.checks) * len(policy.entities)
        print(f"{args.path}: policy {policy.name!r} v{policy.version} OK "
              f"({len(policy.checks)} check(s) x {len(policy.entities)} "
              f"entit(ies) = {checks} schedule entries)")
        return 0

    if args.policy_command == "show":
        policy = _load_policy(args.path)
        routing = policy.notifications
        print(f"policy {policy.name} v{policy.version}")
        print(f"  entities: {', '.join(policy.entities)}")
        print(f"  notifications: observatory={routing.observatory} "
              f"audit={routing.audit} auto_respond={routing.auto_respond}")
        print(f"  {'check':16s} {'property':24s} {'period_ms':>9s} "
              f"{'budget_ms':>9s} {'warn':>5s} {'crit':>5s} {'clear':>6s}")
        for check in policy.checks:
            print(f"  {check.name:16s} {check.prop.value:24s} "
                  f"{check.period_ms:9.0f} {check.staleness_budget_ms:9.0f} "
                  f"{check.warning_after:5d} {check.critical_after:5d} "
                  f"{check.clear_after:6d}")
        return 0

    # status: run the policy over a seeded demo fleet and report the
    # schedule entries, alarm states and transition timeline
    from repro.policy import MonitoringPolicy

    policy = _load_policy(args.path) if args.path else None
    cloud = _make_cloud(args, num_servers=2)
    alice = cloud.register_customer("alice")
    vids = [
        alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.RUNTIME_INTEGRITY],
            workload={"name": "app"},
        ).vid
        for _ in range(args.vms)
    ]
    if policy is None:
        policy = MonitoringPolicy.from_dict({
            "name": "demo",
            "version": 1,
            "entities": [str(vid) for vid in vids],
            "checks": [{
                "name": "runtime",
                "property": "runtime_integrity",
                "period_ms": 2_000.0,
                "staleness_budget_ms": 6_000.0,
            }],
        })
    else:
        # the document's entities name someone else's VMs; re-target the
        # demo fleet so its checks run against what we just launched
        policy = MonitoringPolicy.from_dict(
            {**policy.to_dict(), "entities": [str(vid) for vid in vids]}
        )
    alice.register_policy(policy)
    cloud.run_for(args.duration_ms)
    status = alice.policy_status()
    print(f"policy status after {args.duration_ms:.0f} ms "
          f"(seed {args.seed}):")
    print(f"  {'check':16s} {'vid':10s} {'state':9s} {'fired':>5s} "
          f"{'shed':>4s} {'stale':>5s}")
    for entry in status["entries"]:
        print(f"  {entry['check']:16s} {entry['vid']:10s} "
              f"{entry['state']:9s} {entry['fired']:5d} {entry['shed']:4d} "
              f"{str(entry['stale']).lower():>5s}")
    transitions = status["transitions"]
    print(f"{len(transitions)} alarm transition(s)")
    for t in transitions:
        print(f"  t={t['time_ms']:10.1f} ms {t['check']}/{t['vid']}: "
              f"{t['old_state']} -> {t['new_state']} ({t['verdict']})")
    _export_telemetry(args, cloud)
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    """Render the fleet health scoreboard of a recorded run."""
    from repro.telemetry import (
        events_from_records,
        render_scoreboard,
        scoreboard_from_records,
        slo_report_from_records,
    )

    records = _load_trace(args.trace)
    snapshot = scoreboard_from_records(records)
    if snapshot is None:
        print(f"error: {args.trace} holds no scoreboard snapshot "
              "(was the run recorded with the observatory enabled?)",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(snapshot, sort_keys=True))
        return 0
    print(render_scoreboard(snapshot))
    report = slo_report_from_records(records)
    if report:
        print("\nSLO compliance (per protocol leg):")
        for leg, stats in sorted(report.items()):
            if stats["compliance"] is None:
                line = "no observations"
            else:
                line = (f"{stats['compliance']:6.1%} within "
                        f"{stats['target_ms']:.0f} ms "
                        f"({stats['breached']}/{stats['observed']} breached)")
            print(f"  {leg:24s} {line}")
    # last-known circuit-breaker state per attestation server (only
    # present when a breaker transitioned during the run)
    breaker_last: dict[str, tuple[float, str]] = {}
    for event in events_from_records(records):
        if event.get("kind") != "breaker_state":
            continue
        fields = event.get("fields", {})
        breaker_last[str(fields.get("endpoint", ""))] = (
            float(event.get("time_ms", 0.0)),
            str(fields.get("state", "")),
        )
    if breaker_last:
        print("\ncircuit breakers:")
        for endpoint in sorted(breaker_last):
            time_ms, state = breaker_last[endpoint]
            marker = "!!" if state != "closed" else "ok"
            print(f"  {endpoint:24s} {state:10s} "
                  f"[{marker}] (since t={time_ms:.1f} ms)")
    return 0


def cmd_alerts(args: argparse.Namespace) -> int:
    """Print the alert log of a recorded run."""
    from repro.telemetry import alerts_from_records

    records = _load_trace(args.trace)
    alerts = alerts_from_records(records)
    if args.json:
        for alert in alerts:
            print(json.dumps(alert, sort_keys=True))
    else:
        for alert in alerts:
            line = (f"[{alert['severity']:8s}] t={alert['time_ms']:10.1f} ms "
                    f"{alert['rule']} ({alert['scope']}): {alert['message']}")
            print(line)
            action = alert.get("details", {}).get("response_action")
            if action:
                print(f"           -> response: {action}")
        print(f"{len(alerts)} alert(s)")
    if args.fail_on_alert and alerts:
        return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Query the span store of a recorded run."""
    from repro.telemetry.observatory import TraceStore, span_duration_ms

    records = _load_trace(args.trace)
    store = TraceStore.from_records(records)
    if args.waterfall is not None:
        rounds = store.rounds()
        if not rounds:
            print(f"error: {args.trace} holds no attestation rounds",
                  file=sys.stderr)
            return 2
        if not 0 <= args.waterfall < len(rounds):
            print(f"error: round {args.waterfall} out of range "
                  f"(trace holds {len(rounds)} round(s))", file=sys.stderr)
            return 2
        root = rounds[args.waterfall]
        if args.json:
            tree = [
                {"depth": depth, **span,
                 "duration_ms": span_duration_ms(span)}
                for depth, span in store.subtree(root)
            ]
            print(json.dumps(tree, sort_keys=True))
            return 0
        print(store.waterfall(root))
        return 0
    if args.vid or args.leg or args.min_ms is not None:
        spans = store.spans(
            name=args.leg, vid=args.vid, min_duration_ms=args.min_ms
        )
        if args.json:
            for span in spans:
                print(json.dumps(span, sort_keys=True))
            return 0
        for span in spans:
            vid = span.get("attrs", {}).get("vid", "-")
            print(f"{span['name']:32s} start {span['start_ms']:10.1f} ms  "
                  f"{span_duration_ms(span):8.1f} ms  vid={vid}")
        print(f"{len(spans)} span(s)")
        return 0
    if args.json:
        table = {name: store.percentiles(name) for name in store.leg_names()}
        print(json.dumps(table, sort_keys=True))
        return 0
    print(store.render_leg_table())
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Reconstruct the causal chain of recorded attestation rounds."""
    from repro.telemetry import flight_records_from_records
    from repro.telemetry.observatory import (
        render_flight_record,
        render_round_summary,
    )

    records = _load_trace(args.trace)
    flights = flight_records_from_records(records)
    if args.vid:
        flights = [f for f in flights if f.get("vid") == args.vid]
    if not flights:
        scope = f" for vid {args.vid}" if args.vid else ""
        print(f"error: {args.trace} holds no flight records{scope} "
              "(was the run recorded with the flight recorder enabled?)",
              file=sys.stderr)
        return 2
    if args.round is not None:
        if not 0 <= args.round < len(flights):
            print(f"error: round {args.round} out of range "
                  f"(trace holds {len(flights)} round(s))", file=sys.stderr)
            return 2
        flights = [flights[args.round]]
    if args.json:
        for flight in flights:
            print(json.dumps(flight, sort_keys=True))
        return 0
    if len(flights) == 1:
        print(render_flight_record(flights[0]))
        return 0
    for flight in flights:
        print(render_round_summary(flight))
    print(f"{len(flights)} round(s); use --round N for one full narrative")
    return 0


def cmd_shard(args: argparse.Namespace) -> int:
    """Run a sharded control-plane scenario and print its status."""
    from repro.properties.catalog import SecurityProperty
    from repro.shard import ShardPlane

    prop = SecurityProperty.RUNTIME_INTEGRITY
    plane = ShardPlane(
        num_shards=args.shards,
        seed=args.seed,
        vnodes=args.vnodes,
        num_servers=args.servers,
        num_pcpus=8,
        parallel=args.workers > 0,
        parallel_workers=args.workers,
    )
    plane.prewarm_for_fleet(args.vms // args.servers + 2)
    customer = plane.register_customer("operator")
    vids = [
        customer.launch_vm("small", "cirros", properties=[prop]).vid
        for _ in range(args.vms)
    ]
    fleet = customer.attest_fleet([(vid, prop) for vid in vids])
    status = plane.status()
    executor = status["executor"]
    executor_label = executor["mode"]
    if executor.get("workers"):
        executor_label += f" x{executor['workers']}"
    print(f"shard plane: {len(plane.shards)} shard(s), "
          f"{status['vms']} VM(s), {plane.ring.vnodes} vnodes/shard, "
          f"executor {executor_label} "
          f"(ring salt {status['ring']['salt']})")
    print(f"  {'shard':12s} {'vms':>4s} {'rounds':>7s} {'registered':>11s} "
          f"{'sim_ms':>9s}  batch root")
    for name in sorted(status["shards"]):
        row = status["shards"][name]
        registered = sum(
            entry["registered_vms"] for entry in row["attestation_servers"]
        )
        root = fleet.shard_roots.get(name)
        print(f"  {name:12s} {row['vms']:4d} "
              f"{fleet.by_shard.get(name, 0):7d} {registered:11d} "
              f"{row['now_ms']:9.0f}  "
              f"{root.hex()[:16] if root else '-'}")
    healthy = sum(1 for r in fleet.results if r.report.healthy)
    print(f"fleet: {healthy}/{len(fleet.results)} healthy, cross-shard root "
          f"{fleet.root.hex() if fleet.root else '-'}")
    plane.close()
    return 0 if healthy == len(fleet.results) else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro", description="CloudMonatt reproduction CLI"
    )
    parser.add_argument("--seed", type=int, default=42,
                        help="simulation seed (default 42)")
    parser.add_argument("--telemetry-out", default=None, metavar="PATH",
                        help="enable the telemetry hub and write the run's "
                             "trace (spans, metrics, events, alerts, "
                             "scoreboard) to PATH")
    parser.add_argument("--telemetry-format", default="jsonl",
                        choices=["jsonl", "prometheus"],
                        help="trace output format: jsonl (full trace) or "
                             "prometheus (text exposition of final metrics)")
    parser.add_argument("--slo-q1", type=float, default=None, metavar="MS",
                        help="latency SLO target for protocol leg Q1 (ms)")
    parser.add_argument("--slo-q2", type=float, default=None, metavar="MS",
                        help="latency SLO target for protocol leg Q2 (ms)")
    parser.add_argument("--slo-q3", type=float, default=None, metavar="MS",
                        help="latency SLO target for protocol leg Q3 (ms)")
    parser.add_argument("--slo-appraisal", type=float, default=None,
                        metavar="MS",
                        help="latency SLO target for report appraisal (ms)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="launch and attest a monitored VM"
                        ).set_defaults(func=cmd_demo)

    attack = commands.add_parser("attack", help="run one attack scenario")
    attack.add_argument(
        "scenario",
        choices=["covert", "bus-covert", "availability", "rootkit",
                 "tampered-image"],
    )
    attack.set_defaults(func=cmd_attack)

    verify = commands.add_parser("verify-protocol",
                                 help="run the symbolic verifier")
    verify.add_argument("--variant", default="standard",
                        choices=["standard", "plaintext", "no_nonces",
                                 "identity_key_reuse"])
    verify.set_defaults(func=cmd_verify_protocol)

    commands.add_parser("leak-analysis",
                        help="key-leak trust dependencies"
                        ).set_defaults(func=cmd_leak_analysis)

    export = commands.add_parser("export-proverif",
                                 help="emit the ProVerif cross-check model")
    export.add_argument("path", nargs="?", default=None)
    export.set_defaults(func=cmd_export_proverif)

    commands.add_parser("launch-matrix",
                        help="Fig. 9 launch-stage breakdown"
                        ).set_defaults(func=cmd_launch_matrix)

    telemetry = commands.add_parser(
        "telemetry",
        help="traced demo run (or summary of a recorded trace)")
    telemetry.add_argument("trace", nargs="?", default=None, metavar="TRACE",
                           help="summarize this JSONL trace instead of "
                                "running the demo")
    telemetry.set_defaults(func=cmd_telemetry)

    policy = commands.add_parser(
        "policy", help="validate, render or demo-run a monitoring policy")
    policy_commands = policy.add_subparsers(dest="policy_command",
                                            required=True)
    policy_validate = policy_commands.add_parser(
        "validate", help="check a policy JSON document against the "
                         "schema and property catalog")
    policy_validate.add_argument("path", metavar="POLICY",
                                 help="policy document (JSON)")
    policy_show = policy_commands.add_parser(
        "show", help="render a policy document's compiled checks")
    policy_show.add_argument("path", metavar="POLICY",
                             help="policy document (JSON)")
    policy_status = policy_commands.add_parser(
        "status", help="run the policy over a seeded demo fleet and "
                       "print schedule entries and alarm transitions")
    policy_status.add_argument("path", nargs="?", default=None,
                               metavar="POLICY",
                               help="policy document (JSON); omit for the "
                                    "built-in demo policy")
    policy_status.add_argument("--vms", type=int, default=3,
                               help="demo fleet size (default 3)")
    policy_status.add_argument("--duration-ms", type=float, default=20_000.0,
                               help="how long to run the continuous "
                                    "scheduler (default 20000)")
    policy.set_defaults(func=cmd_policy)

    health = commands.add_parser(
        "health", help="fleet health scoreboard of a recorded run")
    health.add_argument("trace", metavar="TRACE",
                        help="JSONL trace written with --telemetry-out")
    health.add_argument("--json", action="store_true",
                        help="print the raw snapshot as JSON")
    health.set_defaults(func=cmd_health)

    alerts = commands.add_parser(
        "alerts", help="alert log of a recorded run")
    alerts.add_argument("trace", metavar="TRACE",
                        help="JSONL trace written with --telemetry-out")
    alerts.add_argument("--json", action="store_true",
                        help="print one JSON object per alert")
    alerts.add_argument("--fail-on-alert", action="store_true",
                        help="exit 1 if the trace holds any alerts")
    alerts.set_defaults(func=cmd_alerts)

    trace = commands.add_parser(
        "trace", help="query the span store of a recorded run")
    trace.add_argument("trace", metavar="TRACE",
                       help="JSONL trace written with --telemetry-out")
    trace.add_argument("--vid", default=None,
                       help="only spans attributed to this VM")
    trace.add_argument("--leg", default=None, metavar="NAME",
                       help="only spans with this name (e.g. protocol.q2)")
    trace.add_argument("--min-ms", type=float, default=None, metavar="MS",
                       help="only spans at least this long")
    trace.add_argument("--waterfall", type=int, default=None, metavar="N",
                       help="render attestation round N as a text waterfall")
    trace.add_argument("--json", action="store_true",
                       help="machine-readable output: one JSON object per "
                            "span (filter mode), a per-leg percentile "
                            "object (table mode), or the round's span "
                            "tree (waterfall mode)")
    trace.set_defaults(func=cmd_trace)

    explain = commands.add_parser(
        "explain",
        help="narrate recorded attestation rounds (the flight recorder)")
    explain.add_argument("trace", metavar="TRACE",
                         help="JSONL trace written with --telemetry-out")
    explain.add_argument("vid", nargs="?", default=None, metavar="VID",
                         help="only rounds attesting this VM")
    explain.add_argument("--round", type=int, default=None, metavar="N",
                         help="narrate only round N of the selection "
                              "(0-based, mint order)")
    explain.add_argument("--json", action="store_true",
                         help="print one JSON flight record per round")
    explain.set_defaults(func=cmd_explain)

    shard = commands.add_parser(
        "shard", help="sharded control plane (consistent-hash multi-"
                      "controller deployments)")
    shard_commands = shard.add_subparsers(dest="shard_command", required=True)
    shard_status = shard_commands.add_parser(
        "status", help="run a sharded fleet attestation and print the "
                       "per-shard placement, evidence roots and clocks")
    shard_status.add_argument("--shards", type=int, default=2,
                              help="number of control-plane shards "
                                   "(default 2)")
    shard_status.add_argument("--vms", type=int, default=8,
                              help="fleet size to launch and attest "
                                   "(default 8)")
    shard_status.add_argument("--vnodes", type=int, default=64,
                              help="virtual nodes per shard on the ring "
                                   "(default 64)")
    shard_status.add_argument("--servers", type=int, default=2,
                              help="cloud servers per shard (default 2)")
    shard_status.add_argument("--workers", type=int, default=0,
                              help="forked executor workers (0 = serial "
                                   "in-process execution, the default)")
    shard.set_defaults(func=cmd_shard)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)
