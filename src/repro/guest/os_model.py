"""A minimal guest OS: process table, kernel modules, inside/outside views."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import StateError


@dataclass(frozen=True)
class Process:
    """One entry in the guest's process table."""

    pid: int
    name: str
    #: set by rootkits: hidden processes are dropped from the inside view
    hidden: bool = False


@dataclass
class GuestOS:
    """The software state of one guest VM.

    Two views exist of the process table:

    - :meth:`query_tasks` — the *inside* view, what ``ps`` run in the
      guest reports. A rootkit filters its own processes out of this.
    - :meth:`memory_process_table` — the *outside* view, the raw table as
      the hypervisor's VMI tool reconstructs it from guest memory.

    A healthy guest has identical views; a divergence is the runtime
    integrity signal CloudMonatt attests (paper §4.3.2).
    """

    name: str
    _processes: dict[int, Process] = field(default_factory=dict)
    kernel_modules: list[str] = field(default_factory=list)
    _next_pid: int = 100

    @staticmethod
    def with_standard_services(name: str) -> "GuestOS":
        """A guest booted with a typical service set."""
        guest = GuestOS(name)
        for service in ("init", "sshd", "cron", "rsyslogd", "app-server"):
            guest.spawn(service)
        guest.kernel_modules.extend(["ext4", "e1000", "iptables"])
        return guest

    def spawn(self, name: str, hidden: bool = False) -> Process:
        """Start a process; returns its table entry."""
        process = Process(pid=self._next_pid, name=name, hidden=hidden)
        self._processes[process.pid] = process
        self._next_pid += 1
        return process

    def kill(self, pid: int) -> None:
        """Remove a process from the table."""
        if pid not in self._processes:
            raise StateError(f"no process with pid {pid}")
        del self._processes[pid]

    def load_module(self, module: str) -> None:
        """Load a kernel module (rootkits use this hook)."""
        self.kernel_modules.append(module)

    def query_tasks(self) -> list[Process]:
        """The **inside** view: what the guest OS itself reports.

        Hidden processes are filtered — this is the lie a compromised
        guest tells its own administrator.
        """
        return sorted(
            (p for p in self._processes.values() if not p.hidden),
            key=lambda p: p.pid,
        )

    def to_snapshot(self) -> dict:
        """Serialize the full guest state (for VM migration).

        The snapshot is the guest's *memory image*: hidden malware
        travels with it, exactly as live migration moves a compromised
        guest unchanged.
        """
        return {
            "name": self.name,
            "processes": [
                {"pid": p.pid, "name": p.name, "hidden": p.hidden}
                for p in self._processes.values()
            ],
            "kernel_modules": list(self.kernel_modules),
            "next_pid": self._next_pid,
        }

    @staticmethod
    def from_snapshot(snapshot: dict) -> "GuestOS":
        """Reconstruct a guest from a migration snapshot."""
        guest = GuestOS(str(snapshot["name"]))
        for entry in snapshot["processes"]:
            process = Process(
                pid=int(entry["pid"]),
                name=str(entry["name"]),
                hidden=bool(entry["hidden"]),
            )
            guest._processes[process.pid] = process
        guest.kernel_modules = [str(m) for m in snapshot["kernel_modules"]]
        guest._next_pid = int(snapshot["next_pid"])
        return guest

    def memory_process_table(self) -> list[Process]:
        """The **outside** view: the true table as read from guest memory.

        Only the hypervisor's VMI tool calls this; nothing inside the
        guest can alter what is physically present in its memory image.
        """
        return sorted(self._processes.values(), key=lambda p: p.pid)
