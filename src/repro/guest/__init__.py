"""Guest operating-system model.

The runtime-integrity case study (paper §4.3) needs a semantic gap to
bridge: the view of a VM *from inside* (what a possibly-compromised guest
OS reports) versus *from outside* (what the hypervisor's VM Introspection
tool reads out of guest memory). This package models exactly enough of a
guest OS to make that gap real: a process table whose entries can be
hidden by a rootkit, kernel modules, and the two views.
"""

from repro.guest.malware import HiddenServiceMalware, Rootkit
from repro.guest.os_model import GuestOS, Process

__all__ = ["GuestOS", "HiddenServiceMalware", "Process", "Rootkit"]
