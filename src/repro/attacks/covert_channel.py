"""The CPU-based cross-VM covert channel (paper §4.4.1, Figs. 4-5).

"The sender VM can occupy the CPU for different amounts of time, to
indicate different information (e.g. long CPU usage indicates a '1'
while short CPU usage signals a '0')."

The sender modulates its continuous run-interval durations: a short
burst encodes 0, a long burst encodes 1, with an idle gap between bursts
to rebuild scheduler credits (so each wake-up is boosted and the burst
runs uninterrupted). A co-resident receiver on the same pCPU infers the
sender's occupancy from gaps in its own execution.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.identifiers import VmId
from repro.xen.workload import BlockSpec, Burst, CpuBoundWorkload, Workload


class CovertChannelSender(Workload):
    """Sender VM workload: run-interval modulation of a bit string.

    Parameters mirror the paper's experiment: interval granularity is
    1 ms and intervals stay under the 30 ms Xen timeslice so each burst
    is one continuous run interval. The default symbol times put the two
    histogram peaks well apart, as in Fig. 5 (top).
    """

    def __init__(
        self,
        bits: Sequence[int],
        zero_ms: float = 5.0,
        one_ms: float = 25.0,
        gap_ms: float = 30.0,
        repeat: bool = True,
    ):
        super().__init__()
        if not bits:
            raise ValueError("need at least one bit to transmit")
        if not 0 < zero_ms < one_ms:
            raise ValueError("need 0 < zero_ms < one_ms")
        self.bits = [int(b) & 1 for b in bits]
        self.zero_ms = zero_ms
        self.one_ms = one_ms
        self.gap_ms = gap_ms
        self.repeat = repeat
        self._position = 0
        #: total bits transmitted so far (for bandwidth accounting)
        self.bits_sent = 0

    def next_burst(self, vcpu) -> Burst:
        if self._position >= len(self.bits):
            if not self.repeat:
                return Burst(cpu_ms=0.0, block=BlockSpec.terminate())
            self._position = 0
        bit = self.bits[self._position]
        self._position += 1
        self.bits_sent += 1
        duration = self.one_ms if bit else self.zero_ms
        return Burst(cpu_ms=duration, block=BlockSpec.sleep(self.gap_ms))

    @property
    def symbol_period_ms(self) -> float:
        """Average wall time per transmitted bit."""
        mean_burst = (self.zero_ms + self.one_ms) / 2.0
        return mean_burst + self.gap_ms

    @property
    def bandwidth_bps(self) -> float:
        """Nominal channel bandwidth in bits per second."""
        return 1000.0 / self.symbol_period_ms


class CovertChannelReceiver:
    """Receiver-side observer: infers sender activity from its own gaps.

    The receiver VM runs a CPU-bound workload on the shared pCPU; every
    pause in its own execution is time the sender (or another VM) held
    the CPU. Attached as a scheduler listener, this class records the
    receiver's run intervals and reconstructs the gap sequence — the
    receiver's view of the sender's CPU usage (paper Fig. 4).
    """

    def __init__(self, receiver_vid: VmId, min_gap_ms: float = 1.0):
        self.receiver_vid = receiver_vid
        self.min_gap_ms = min_gap_ms
        self._last_end: float | None = None
        #: (gap_start, gap_duration) pairs — the observed sender intervals
        self.observed_gaps: list[tuple[float, float]] = []

    @staticmethod
    def workload() -> CpuBoundWorkload:
        """The busy-loop the receiver runs to sense its own preemption."""
        return CpuBoundWorkload()

    def on_run_interval(self, vcpu, start: float, end: float) -> None:
        """Scheduler hook: track the receiver's own execution intervals."""
        if vcpu.domain.vid != self.receiver_vid:
            return
        if self._last_end is not None:
            gap = start - self._last_end
            if gap >= self.min_gap_ms:
                self.observed_gaps.append((self._last_end, gap))
        self._last_end = end

    def decode(self, threshold_ms: float) -> list[int]:
        """Decode observed gaps into bits by thresholding duration."""
        return [1 if gap > threshold_ms else 0 for _, gap in self.observed_gaps]


def decode_intervals(
    durations: Sequence[float], zero_ms: float, one_ms: float
) -> list[int]:
    """Decode a sequence of occupancy durations with the midpoint rule."""
    threshold = (zero_ms + one_ms) / 2.0
    return [1 if duration > threshold else 0 for duration in durations]


def bit_accuracy(sent: Sequence[int], received: Sequence[int]) -> float:
    """Fraction of correctly received bits over the aligned prefix."""
    if not sent or not received:
        return 0.0
    n = min(len(sent), len(received))
    matches = sum(1 for i in range(n) if sent[i] == received[i])
    return matches / n
