"""Resource-Freeing Attack (RFA) — the paper's cited availability attack.

§4.5.1: "The attacker can also change the victim VM's behavior to give
up computing resources to the attacker, such as in Resource-Freeing
Attacks (RFA) introduced in [40]."

The RFA has two halves:

- a **beneficiary** VM co-resident with the victim, contending for the
  victim's CPU (an ordinary CPU-bound workload here);
- a **helper** elsewhere in the network that sends the victim's public
  service expensive requests, shifting the victim toward its *other*
  bottleneck (I/O). The victim then voluntarily yields the CPU, which
  the beneficiary absorbs.

Unlike the boost-stealing attack, nothing here abuses the scheduler:
the victim's own workload is modified. CloudMonatt still observes the
effect — the victim's relative CPU usage collapses — which is exactly
the "resource usage of the attested VM" signal §4.5.2 monitors.
"""

from __future__ import annotations

from repro.common.errors import StateError
from repro.common.rng import DeterministicRng
from repro.sim.engine import Engine
from repro.xen.workload import BlockSpec, Burst, Workload


class RfaTargetWorkload(Workload):
    """A request-serving victim (e.g. a web server with a disk-bound tail).

    Each request costs ``cpu_ms`` of CPU and then ``io_ms`` of I/O wait.
    External *pressure* — expensive requests sent by the RFA helper —
    stretches the I/O phase by up to ``max_io_stretch``x, collapsing the
    victim's CPU demand (its duty cycle) while it drowns in I/O.
    """

    def __init__(
        self,
        rng: DeterministicRng,
        cpu_ms: float = 2.0,
        io_ms: float = 2.0,
        max_io_stretch: float = 12.0,
    ):
        super().__init__()
        if cpu_ms <= 0 or io_ms <= 0:
            raise ValueError("request phases must be positive")
        if max_io_stretch < 1.0:
            raise ValueError("max_io_stretch must be >= 1")
        self._rng = rng
        self.cpu_ms = cpu_ms
        self.io_ms = io_ms
        self.max_io_stretch = max_io_stretch
        #: externally applied pressure in [0, 1]; set by the campaign
        self.pressure = 0.0
        #: requests served (throughput accounting for the experiments)
        self.requests_served = 0

    def apply_pressure(self, level: float) -> None:
        """Set the fraction of maximal I/O stretching (0 = unattacked)."""
        if not 0.0 <= level <= 1.0:
            raise ValueError("pressure must be in [0, 1]")
        self.pressure = level

    @property
    def nominal_duty_cycle(self) -> float:
        """CPU demand fraction at the current pressure level."""
        io = self.io_ms * (1.0 + self.pressure * (self.max_io_stretch - 1.0))
        return self.cpu_ms / (self.cpu_ms + io)

    def next_burst(self, vcpu) -> Burst:
        self.requests_served += 1
        io = self.io_ms * (1.0 + self.pressure * (self.max_io_stretch - 1.0))
        return Burst(
            cpu_ms=self._rng.jitter(self.cpu_ms, 0.1),
            block=BlockSpec.sleep(self._rng.jitter(io, 0.1)),
        )


class RfaPressureCampaign:
    """The helper's request campaign, as a schedule of pressure changes.

    The helper itself runs on some other machine (it costs the attacker
    nothing on the contended server); what the simulation needs is its
    *effect*: the victim's I/O phases stretching while the campaign is
    active.
    """

    def __init__(self, engine: Engine, target: RfaTargetWorkload):
        self._engine = engine
        self._target = target
        self._schedule: list[tuple[float, float]] = []

    def ramp(self, start_ms: float, level: float) -> None:
        """Apply ``level`` pressure at ``start_ms`` from now."""
        if start_ms < 0:
            raise StateError("campaign events cannot be scheduled in the past")
        self._schedule.append((start_ms, level))
        self._engine.schedule(start_ms, self._target.apply_pressure, level)

    def pulse(self, start_ms: float, duration_ms: float, level: float) -> None:
        """Apply ``level`` for ``duration_ms`` then release."""
        self.ramp(start_ms, level)
        self.ramp(start_ms + duration_ms, 0.0)

    @property
    def schedule(self) -> list[tuple[float, float]]:
        """The (offset_ms, level) events registered so far."""
        return list(self._schedule)
