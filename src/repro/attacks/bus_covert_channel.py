"""Memory-bus covert channel: the cross-core second channel.

The CPU-interval channel of §4.4 needs sender and receiver to share a
CPU. The bus channel does not: the sender modulates its rate of atomic
(bus-locking) memory operations while keeping its CPU usage perfectly
uniform; a receiver on *any other core* recovers the bits by timing its
own memory accesses. This is the channel class the paper cites from Wu
et al. [44] ("memory bus activities (locked or unlocked bus)") and the
reason §4.4.3 proposes monitoring multiple covert-channel sources.

Evasion property: because every burst has the same CPU duration, the
CPU-usage-interval histogram of this sender is unimodal — the attack is
invisible to the Fig. 5 monitor and only the bus-lock monitor sees it.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.rng import DeterministicRng
from repro.xen.workload import BlockSpec, Burst, Workload


class BusCovertChannelSender(Workload):
    """Sender workload: lock-rate modulation at constant CPU usage.

    Each transmitted bit occupies one ``symbol_ms`` burst: a ``1`` issues
    ``high_rate`` locked operations per ms; a ``0`` issues none. The
    burst length never varies, so scheduler-level interval monitoring
    sees a benign, uniform pattern.
    """

    def __init__(
        self,
        bits: Sequence[int],
        symbol_ms: float = 10.0,
        high_rate: float = 20.0,
        repeat: bool = True,
    ):
        super().__init__()
        if not bits:
            raise ValueError("need at least one bit to transmit")
        if symbol_ms <= 0 or high_rate <= 0:
            raise ValueError("symbol duration and rate must be positive")
        self.bits = [int(b) & 1 for b in bits]
        self.symbol_ms = symbol_ms
        self.high_rate = high_rate
        self.repeat = repeat
        self._position = 0
        self.bits_sent = 0

    def next_burst(self, vcpu) -> Burst:
        if self._position >= len(self.bits):
            if not self.repeat:
                return Burst(cpu_ms=0.0, block=BlockSpec.terminate())
            self._position = 0
        bit = self.bits[self._position]
        self._position += 1
        self.bits_sent += 1
        return Burst(
            cpu_ms=self.symbol_ms,
            block=BlockSpec.sleep(0.01),
            bus_lock_rate=self.high_rate if bit else 0.0,
        )

    @property
    def bandwidth_bps(self) -> float:
        """Nominal channel bandwidth in bits per second."""
        return 1000.0 / (self.symbol_ms + 0.01)


class RandomizedRateBusSender(Workload):
    """Histogram-evading variant: per-symbol rates drawn from a continuum.

    Instead of two fixed rates (which make two histogram peaks), each
    ``1`` symbol draws its rate uniformly from ``high_band`` and each
    ``0`` from ``low_band``. The rate *distribution* is then smeared
    across many bins — below any peak detector's mass threshold — while
    a receiver thresholding at the band gap still decodes perfectly.

    What survives is the time structure: fixed ``symbol_ms`` cells give
    the autocorrelation plateau the CC-Hunter-style detector keys on.
    This workload exists to show why the defender needs event-train
    analysis in addition to distribution analysis.
    """

    def __init__(
        self,
        bits: Sequence[int],
        rng: DeterministicRng,
        symbol_ms: float = 10.0,
        low_band: tuple[float, float] = (0.0, 7.0),
        high_band: tuple[float, float] = (13.0, 28.0),
        repeat: bool = True,
    ):
        super().__init__()
        if not bits:
            raise ValueError("need at least one bit to transmit")
        if low_band[1] >= high_band[0]:
            raise ValueError("bands must not overlap (the receiver thresholds)")
        self.bits = [int(b) & 1 for b in bits]
        self._rng = rng
        self.symbol_ms = symbol_ms
        self.low_band = low_band
        self.high_band = high_band
        self.repeat = repeat
        self._position = 0
        self.bits_sent = 0

    def next_burst(self, vcpu) -> Burst:
        if self._position >= len(self.bits):
            if not self.repeat:
                return Burst(cpu_ms=0.0, block=BlockSpec.terminate())
            self._position = 0
        bit = self.bits[self._position]
        self._position += 1
        self.bits_sent += 1
        band = self.high_band if bit else self.low_band
        rate = self._rng.uniform(band[0], band[1])
        return Burst(
            cpu_ms=self.symbol_ms,
            block=BlockSpec.sleep(0.01),
            bus_lock_rate=rate,
        )
