"""Attack implementations.

The paper designs two new cloud attacks (its §8 contribution (4)) and
reuses two classic ones; all four are implemented here against our
substrates, plus the network attacker used in the protocol evaluation:

- :class:`~repro.attacks.covert_channel.CovertChannelSender` /
  :class:`~repro.attacks.covert_channel.CovertChannelReceiver` — the
  CPU-based cross-VM covert channel of §4.4 (Fig. 4/5).
- :class:`~repro.attacks.availability.AvailabilityAttackWorkload` — the
  CPU availability attack of §4.5 against the credit scheduler's boost
  mechanism (Fig. 6/7).
- :mod:`repro.attacks.malware` — in-VM malware injection for the runtime
  integrity case study (§4.3).
- :mod:`repro.attacks.image_tampering` — corrupted VM images / platform
  software for the startup integrity case study (§4.2).

Network attacks (replay, forgery, eavesdropping) live with the network
substrate in :mod:`repro.network.attacker` since they operate on wires,
not hosts.
"""

from repro.attacks.availability import AvailabilityAttackWorkload
from repro.attacks.bus_covert_channel import BusCovertChannelSender
from repro.attacks.covert_channel import (
    CovertChannelReceiver,
    CovertChannelSender,
    decode_intervals,
)
from repro.attacks.image_tampering import tamper_image, tamper_platform
from repro.attacks.malware import infect_with_hidden_service, infect_with_rootkit
from repro.attacks.rfa import RfaPressureCampaign, RfaTargetWorkload

__all__ = [
    "AvailabilityAttackWorkload",
    "BusCovertChannelSender",
    "CovertChannelReceiver",
    "CovertChannelSender",
    "RfaPressureCampaign",
    "RfaTargetWorkload",
    "decode_intervals",
    "infect_with_hidden_service",
    "infect_with_rootkit",
    "tamper_image",
    "tamper_platform",
]
