"""Image and platform tampering (startup integrity case study, §4.2.1).

"Attackers may try to launch a malicious hypervisor, host OS, or guest
OS... Similarly, the VM image could have been compromised, with malware
inserted."

Tampering is content substitution: the measured-boot chains then diverge
from the Attestation Server's pre-computed good values.
"""

from __future__ import annotations

from repro.monitors.integrity_unit import SoftwareInventory


def tamper_image(image_content: bytes, implant: bytes = b"<malware implant>") -> bytes:
    """Corrupt a VM image by appending a malware implant."""
    return image_content + implant


def tamper_platform(
    inventory: SoftwareInventory,
    component: str = "xen-hypervisor-4.2",
    implant: bytes = b" with hypervisor backdoor",
) -> SoftwareInventory:
    """Corrupt one platform component (e.g. a backdoored hypervisor)."""
    original = dict(inventory.components)[component]
    return inventory.tampered(component, original + implant)
