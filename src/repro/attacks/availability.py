"""The CPU availability attack (paper §4.5.1, Figs. 6-7).

"This attack targets the boost mechanism of Xen's credit scheduler...
the attacker's strategy is to launch a VM with multiple vCPUs and use
them to keep sending and receiving Inter Processor Interrupts (IPIs) to
each other, so one of the attacker's vCPUs always has the highest
priority."

Two scheduler weaknesses combine:

1. **Sampled accounting** — credits are debited only from the vCPU
   running at each 10 ms tick instant, so a vCPU that sleeps across
   ticks is never charged and stays UNDER (non-negative credits).
2. **Wake-up boost** — a waking UNDER vCPU gets BOOST priority and
   preempts the victim instantly.

The attack workload runs its *runner* vCPU from just after one tick to
just before the next, sleeps across the tick instant (leaving the victim
holding the bill), and wakes boosted to seize the CPU back. A *helper*
vCPU exchanges IPIs with the runner, keeping a boosted attacker vCPU
available at every moment, per the paper's description.
"""

from __future__ import annotations

from repro.common.errors import StateError
from repro.xen.scheduler import TICK_MS
from repro.xen.workload import BlockSpec, Burst, Workload


class AvailabilityAttackWorkload(Workload):
    """Two-vCPU boost-stealing attack workload.

    vCPU 0 is the runner; vCPU 1 is the IPI helper. Both must be pinned
    to the victim's pCPU (vCPU 1 barely runs). ``margin_before_ms`` /
    ``margin_after_ms`` control how tightly the runner straddles tick
    instants — the victim's only CPU time is these margins, which is why
    its slowdown exceeds 10x.
    """

    RUNNER = 0
    HELPER = 1

    def __init__(self, margin_before_ms: float = 0.4, margin_after_ms: float = 0.15):
        super().__init__()
        if margin_before_ms <= 0 or margin_after_ms <= 0:
            raise ValueError("margins must be positive")
        if margin_before_ms + margin_after_ms >= TICK_MS:
            raise ValueError("margins must leave room to run between ticks")
        self.margin_before_ms = margin_before_ms
        self.margin_after_ms = margin_after_ms

    def initial_delay_ms(self, vcpu) -> float:
        """Phase the runner just after a tick; stagger the helper."""
        if vcpu.index == self.RUNNER:
            return self.margin_after_ms
        return TICK_MS / 2.0

    def next_burst(self, vcpu) -> Burst:
        if self.hypervisor is None:
            raise StateError("attack workload not bound to a hypervisor")
        if vcpu.index == self.HELPER:
            # The helper wakes on the runner's IPI, runs a sliver (well
            # clear of the tick instant, since the runner's burst ends
            # margin_before ahead of it), IPIs back, and waits again —
            # the paper's "keep sending and receiving IPIs to each other".
            return Burst(
                cpu_ms=0.05,
                block=BlockSpec.wait_ipi(),
                ipi_targets=(self.RUNNER,),
            )
        # The CPU demand is provisional: on_scheduled() retimes it against
        # the tick grid when the runner actually gets the core. The sleep
        # is fixed at (margin_before + margin_after): because the burst
        # *ends* margin_before ahead of a tick, the wake always lands
        # margin_after past that tick, off the accounting grid.
        sleep = self.margin_before_ms + self.margin_after_ms
        return Burst(
            cpu_ms=TICK_MS,
            block=BlockSpec.sleep(sleep),
            ipi_targets=(self.HELPER,),
        )

    def on_scheduled(self, vcpu, now: float) -> None:
        """Retime the runner's burst to end just before the next tick.

        Models the attacker reading the clock in a tight loop while
        running — the only way a real attack can stay phase-locked to the
        scheduler tick when its own dispatch is delayed by contention.
        """
        if vcpu.index != self.RUNNER or self.hypervisor is None:
            return
        next_tick = self.hypervisor.scheduler.next_tick_time()
        run_for = next_tick - self.margin_before_ms - now
        if run_for < 0.05:
            # too close to the tick: yield a sliver and sleep past it
            run_for = 0.05
        vcpu.burst_remaining = run_for
