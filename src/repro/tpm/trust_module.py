"""The Trust Module — the paper's new hardware block (Fig. 2).

Responsibilities, per §3.2.4 and §3.4.2:

- **Identity**: a long-term identity key pair {VKs, SKs}; the private
  half never leaves the module.
- **Attestation sessions**: a fresh key pair {AVKs, ASKs} per attestation
  request, endorsed by the identity key so the privacy CA can certify it
  anonymously; measurements are signed with ASKs.
- **Trust Evidence Registers**: hardware registers that hold security
  measurements, analogous to performance counters. The covert-channel
  monitor uses 30 of them as CPU-usage-interval counters; availability
  monitoring uses one for CPU_measure. Only the Trust/Monitor modules
  may write them.
- **Crypto engine / Key Gen / RNG**: signing, key generation and nonce
  material, all inside the module boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.common.errors import StateError
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.crypto import fastpath
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keypool import KeyPool
from repro.crypto.keys import KeyPair, RsaPublicKey
from repro.crypto.nonces import NonceGenerator
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import sign
from repro.tpm.tpm_emulator import TpmEmulator

NUM_EVIDENCE_REGISTERS = 32
"""Register file size: 30 interval counters (covert channel) + spares."""


@dataclass(frozen=True)
class AttestationSession:
    """A per-request attestation key with its identity-key endorsement.

    ``endorsement`` is SKs's signature over the attestation public key;
    the privacy CA verifies it before certifying AVKs (paper §3.4.2).
    """

    keypair: KeyPair
    endorsement: bytes

    @property
    def public(self) -> RsaPublicKey:
        """AVKs — shared with the privacy CA and the attestation server."""
        return self.keypair.public


class TrustModule:
    """One server's hardware trust anchor."""

    def __init__(
        self,
        drbg: HmacDrbg,
        key_bits: int = 1024,
        telemetry: Optional[Telemetry] = None,
    ):
        self._drbg = drbg
        self._key_bits = key_bits
        self.telemetry = telemetry or NULL_TELEMETRY
        self._identity: KeyPair = generate_keypair(drbg.fork("identity"), key_bits)
        self.nonce_generator = NonceGenerator(drbg.fork("nonces"))
        self.tpm = TpmEmulator(drbg.fork("tpm"), key_bits=key_bits)
        self._registers: list[float] = [0.0] * NUM_EVIDENCE_REGISTERS
        self._evidence: dict[str, Any] = {}
        self._session_counter = 0
        #: pre-generates the ``attest-session-{i}`` keypairs from the
        #: same DRBG fork streams the lazy path uses; ``None`` when the
        #: fast path is disabled. Nothing else may fork ``self._drbg``
        #: after construction — the pool owns its fork order.
        self.key_pool: Optional[KeyPool] = None
        if fastpath.config().key_pool:
            self.key_pool = KeyPool(
                drbg, key_bits, telemetry=self.telemetry
            )

    # ------------------------------------------------------------------
    # identity and attestation keys
    # ------------------------------------------------------------------

    @property
    def identity_public(self) -> RsaPublicKey:
        """VKs — enrolled with the privacy CA at deployment time."""
        return self._identity.public

    def new_attestation_session(self) -> AttestationSession:
        """Mint {AVKs, ASKs} for one attestation request.

        A fresh pair per request prevents observers from linking
        attestations to a server (and thus locating a victim VM for
        co-location attacks, the risk the paper cites from [31]).
        """
        self._session_counter += 1
        self.telemetry.counter("tpm.attestation_sessions").inc()
        if self.key_pool is not None:
            keypair = self.key_pool.take()
        else:
            keypair = generate_keypair(
                self._drbg.fork(f"attest-session-{self._session_counter}"),
                self._key_bits,
            )
        endorsement = sign(self._identity.private, keypair.public.to_dict())
        return AttestationSession(keypair=keypair, endorsement=endorsement)

    def sign_with_session(self, session: AttestationSession, payload: Any) -> bytes:
        """Crypto engine: sign ``payload`` with the session key ASKs."""
        return sign(session.keypair.private, payload)

    def prewarm_sessions(self, count: int) -> int:
        """Pre-generate session keypairs for ``count`` expected rounds.

        The fleet pipeline calls this with its expected session count so
        batch drains never stall on Miller-Rabin keygen. A no-op (returns
        0) when the key-pool fast path is disabled — the lazy fork path
        stays byte-identical either way.
        """
        if self.key_pool is None:
            return 0
        needed = count - self.key_pool.available
        if needed <= 0:
            return 0
        return self.key_pool.prefill(needed)

    # ------------------------------------------------------------------
    # trust evidence registers
    # ------------------------------------------------------------------

    def write_register(self, index: int, value: float) -> None:
        """Store a measurement into a Trust Evidence Register."""
        if not 0 <= index < NUM_EVIDENCE_REGISTERS:
            raise StateError(f"trust evidence register {index} out of range")
        self._registers[index] = value
        self.telemetry.counter("tpm.register_writes").inc()

    def increment_register(self, index: int, amount: float = 1.0) -> None:
        """Counter-style update (the interval histogram uses this)."""
        if not 0 <= index < NUM_EVIDENCE_REGISTERS:
            raise StateError(f"trust evidence register {index} out of range")
        self._registers[index] += amount
        self.telemetry.counter("tpm.register_writes").inc()

    def read_registers(self, count: int = NUM_EVIDENCE_REGISTERS) -> list[float]:
        """Read the first ``count`` registers."""
        if not 0 < count <= NUM_EVIDENCE_REGISTERS:
            raise StateError("invalid register count")
        return list(self._registers[:count])

    def clear_registers(self) -> None:
        """Zero the register file (between monitoring windows)."""
        self._registers = [0.0] * NUM_EVIDENCE_REGISTERS

    # ------------------------------------------------------------------
    # structured evidence storage
    # ------------------------------------------------------------------

    def store_evidence(self, key: str, value: Any) -> None:
        """Store non-scalar evidence (task lists, measurement logs).

        The paper stores everything in registers or trusted RAM; we model
        the trusted-RAM option for structured values.
        """
        self._evidence[key] = value

    def load_evidence(self, key: str) -> Any:
        """Retrieve stored evidence; raises if absent."""
        if key not in self._evidence:
            raise StateError(f"no evidence stored under {key!r}")
        return self._evidence[key]
