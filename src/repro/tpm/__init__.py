"""TPM emulator and the paper's hardware Trust Module.

Two layers:

- :class:`~repro.tpm.tpm_emulator.TpmEmulator` — a software TPM with the
  subset of TCG semantics the architecture uses: a PCR bank with extend
  semantics, attestation identity keys, and signed quotes over selected
  PCRs plus a nonce. (The paper integrates the Strasser TPM-emulator;
  this is our from-scratch equivalent.)
- :class:`~repro.tpm.trust_module.TrustModule` — the new hardware block
  of paper Fig. 2: identity key, per-session attestation key generation,
  crypto engine, RNG, and the **Trust Evidence Registers** that store
  security measurements (the covert-channel detector uses 30 of them as
  interval counters).
"""

from repro.tpm.pcr import PcrBank
from repro.tpm.tpm_emulator import Quote, TpmEmulator
from repro.tpm.trust_module import AttestationSession, TrustModule

__all__ = ["AttestationSession", "PcrBank", "Quote", "TpmEmulator", "TrustModule"]
