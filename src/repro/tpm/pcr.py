"""Platform Configuration Register bank."""

from __future__ import annotations

from repro.common.errors import StateError
from repro.crypto.hashing import DIGEST_SIZE, HashChain


class PcrBank:
    """A bank of PCRs, each an extend-only hash chain.

    Conventional allocation in this reproduction (mirroring measured
    boot): PCR 0 holds the platform chain (hypervisor, host OS), PCR 8
    holds the VM image chain. The allocation is policy, not mechanism —
    any register works the same way.
    """

    PLATFORM_PCR = 0
    VM_IMAGE_PCR = 8

    def __init__(self, count: int = 24):
        if count < 1:
            raise StateError("a PCR bank needs at least one register")
        self._registers = [HashChain() for _ in range(count)]

    def __len__(self) -> int:
        return len(self._registers)

    def _check(self, index: int) -> None:
        if not 0 <= index < len(self._registers):
            raise StateError(f"PCR index {index} out of range")

    def extend(self, index: int, measurement: bytes) -> bytes:
        """Extend PCR ``index`` with a measurement digest."""
        self._check(index)
        return self._registers[index].extend(measurement)

    def read(self, index: int) -> bytes:
        """Current value of PCR ``index``."""
        self._check(index)
        return self._registers[index].value

    def log(self, index: int) -> tuple[bytes, ...]:
        """The measurement log (extensions in order) for PCR ``index``."""
        self._check(index)
        return self._registers[index].history

    def snapshot(self, selection: list[int]) -> dict[str, bytes]:
        """Read several PCRs at once, keyed by stringified index.

        String keys keep the snapshot directly canonically encodable for
        inclusion in signed quotes.
        """
        return {str(i): self.read(i) for i in selection}

    def reset(self, index: int) -> None:
        """Reset a resettable PCR to zeros (used on VM teardown for the
        per-VM image register)."""
        self._check(index)
        self._registers[index] = HashChain()

    @staticmethod
    def zero() -> bytes:
        """The initial all-zeros register value."""
        return b"\x00" * DIGEST_SIZE
