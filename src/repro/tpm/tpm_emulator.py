"""Software TPM: PCR bank + attestation identity keys + signed quotes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SignatureError
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import KeyPair, RsaPublicKey
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import sign, verify
from repro.tpm.pcr import PcrBank


@dataclass(frozen=True)
class Quote:
    """A TPM quote: signed snapshot of selected PCRs bound to a nonce."""

    pcr_values: dict[str, bytes]
    nonce: bytes
    signature: bytes

    def tbs(self) -> dict:
        """The to-be-signed structure."""
        return {"pcr_values": self.pcr_values, "nonce": self.nonce}


class TpmEmulator:
    """The subset of TPM behaviour the architecture needs.

    - ``extend``/``read`` on the PCR bank;
    - an Attestation Identity Key (AIK) minted at construction;
    - ``quote``: sign (selected PCR values, nonce) with the AIK.

    Key material derives from the supplied DRBG, keeping whole-cloud runs
    reproducible.
    """

    def __init__(self, drbg: HmacDrbg, key_bits: int = 1024, pcr_count: int = 24):
        self.pcrs = PcrBank(pcr_count)
        self._aik: KeyPair = generate_keypair(drbg.fork("tpm-aik"), key_bits)

    @property
    def aik_public(self) -> RsaPublicKey:
        """Public half of the attestation identity key."""
        return self._aik.public

    def extend(self, index: int, measurement: bytes) -> bytes:
        """Extend a PCR; returns the new register value."""
        return self.pcrs.extend(index, measurement)

    def read(self, index: int) -> bytes:
        """Read a PCR value."""
        return self.pcrs.read(index)

    def quote(self, selection: list[int], nonce: bytes) -> Quote:
        """Produce a signed quote over the selected PCRs and ``nonce``."""
        values = self.pcrs.snapshot(selection)
        tbs = {"pcr_values": values, "nonce": nonce}
        return Quote(pcr_values=values, nonce=nonce, signature=sign(self._aik.private, tbs))


def verify_quote(aik_public: RsaPublicKey, quote: Quote, expected_nonce: bytes) -> None:
    """Check a quote's signature and nonce binding.

    Raises :class:`SignatureError` on forgery or a stale nonce.
    """
    if quote.nonce != expected_nonce:
        raise SignatureError("quote nonce does not match the challenge")
    verify(aik_public, quote.tbs(), quote.signature)
