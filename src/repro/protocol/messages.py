"""Shared message-field vocabulary for the attestation protocol.

Entities exchange canonical-encodable dicts over secure channels; these
constants are the field names, kept in one place so a typo cannot split
the protocol silently. Validation helpers raise
:class:`~repro.common.errors.ProtocolError` with the missing field named.
"""

from __future__ import annotations

from repro.common.errors import ProtocolError

KEY_TYPE = "type"
KEY_VID = "vid"
KEY_SERVER = "server"
KEY_PROPERTY = "property"
KEY_NONCE = "nonce"
KEY_REQUESTED = "requested_measurements"
KEY_WINDOW = "window_ms"
KEY_MEASUREMENTS = "measurements"
KEY_QUOTE = "quote"
KEY_SIGNATURE = "signature"
KEY_SESSION_CERT = "session_certificate"
KEY_REPORT = "report"
KEY_HEALTHY = "healthy"
KEY_STATUS = "status"
KEY_FREQ = "frequency_ms"

# message type tags
MSG_ATTEST_REQUEST = "attest_request"
MSG_MEASURE_REQUEST = "measure_request"
MSG_LAUNCH = "launch_vm"
MSG_TERMINATE = "terminate_vm"
MSG_SUSPEND = "suspend_vm"
MSG_RESUME = "resume_vm"
MSG_MIGRATE_OUT = "migrate_out"
MSG_MIGRATE_IN = "migrate_in"
MSG_PERIODIC_RESULT = "periodic_attestation_result"


def require_fields(message: dict, *fields: str) -> None:
    """Assert the presence of all ``fields``; raise naming the first gap."""
    for field in fields:
        if field not in message:
            raise ProtocolError(f"message missing required field {field!r}")
