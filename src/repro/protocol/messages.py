"""Shared message-field vocabulary for the attestation protocol.

Entities exchange canonical-encodable dicts over secure channels; these
constants are the field names, kept in one place so a typo cannot split
the protocol silently. Validation helpers raise
:class:`~repro.common.errors.ProtocolError` with the missing field named.
"""

from __future__ import annotations

from repro.common.errors import ProtocolError

KEY_TYPE = "type"
KEY_VID = "vid"
KEY_SERVER = "server"
KEY_PROPERTY = "property"
KEY_NONCE = "nonce"
KEY_REQUESTED = "requested_measurements"
KEY_WINDOW = "window_ms"
KEY_MEASUREMENTS = "measurements"
KEY_QUOTE = "quote"
KEY_SIGNATURE = "signature"
KEY_SESSION_CERT = "session_certificate"
KEY_REPORT = "report"
KEY_HEALTHY = "healthy"
KEY_STATUS = "status"
KEY_FREQ = "frequency_ms"
#: per-round sub-requests of a batched (fleet-pipeline) message
KEY_ENTRIES = "entries"
#: Merkle root over the per-entry quote leaves of a batched response
KEY_BATCH_ROOT = "batch_root"

# message type tags
MSG_ATTEST_REQUEST = "attest_request"
MSG_MEASURE_REQUEST = "measure_request"
#: fleet pipeline: many logical rounds in one wire crossing per hop.
#: Each entry keeps its own fresh nonce and its own single-round quote
#: (Q1/Q2/Q3 semantics unchanged); one signature binds the Merkle root
#: over the sorted per-entry quote leaves.
MSG_ATTEST_BATCH_REQUEST = "attest_batch_request"
MSG_MEASURE_BATCH_REQUEST = "measure_batch_request"
MSG_ATTEST_FLEET = "runtime_attest_batch"
MSG_LAUNCH = "launch_vm"
MSG_TERMINATE = "terminate_vm"
MSG_SUSPEND = "suspend_vm"
MSG_RESUME = "resume_vm"
MSG_MIGRATE_OUT = "migrate_out"
MSG_MIGRATE_IN = "migrate_in"
MSG_PERIODIC_RESULT = "periodic_attestation_result"


def require_fields(message: dict, *fields: str) -> None:
    """Assert the presence of all ``fields``; raise naming the first gap."""
    for field in fields:
        if field not in message:
            raise ProtocolError(f"message missing required field {field!r}")
