"""Quote computation: the cumulative hashes of paper Fig. 3.

- ``Q3 = H(Vid || rM || M || N3)`` — computed by the cloud server over
  its measurements, signed with the session key ASKs;
- ``Q2 = H(Vid || I || P || R || N2)`` — computed by the Attestation
  Server over its report, signed with SKa;
- ``Q1 = H(Vid || P || R || N1)`` — computed by the Cloud Controller,
  signed with SKc.

Hashes use the canonical encoding, so "||" concatenation ambiguity does
not exist: each quote is a hash of a well-typed tuple.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.crypto.hashing import sha256
from repro.telemetry import NULL_TELEMETRY, Telemetry


def attestation_quote(
    vid: str,
    requested: list[str],
    measurements: dict[str, Any],
    nonce: bytes,
    telemetry: Optional[Telemetry] = None,
) -> bytes:
    """Q3: binds measurements to the VM, the request and the nonce."""
    (telemetry or NULL_TELEMETRY).counter("protocol.quotes").inc(kind="q3")
    return sha256([vid, list(requested), measurements, nonce])


def report_quote_q2(
    vid: str,
    server: str,
    prop: str,
    report: dict,
    nonce: bytes,
    telemetry: Optional[Telemetry] = None,
) -> bytes:
    """Q2: binds the interpreted report to VM, server, property, nonce."""
    (telemetry or NULL_TELEMETRY).counter("protocol.quotes").inc(kind="q2")
    return sha256([vid, server, prop, report, nonce])


def report_quote_q1(
    vid: str,
    prop: str,
    report: dict,
    nonce: bytes,
    telemetry: Optional[Telemetry] = None,
) -> bytes:
    """Q1: the customer-facing binding (the server identity is omitted —
    the customer must not learn which server hosts the VM)."""
    (telemetry or NULL_TELEMETRY).counter("protocol.quotes").inc(kind="q1")
    return sha256([vid, prop, report, nonce])


def merkle_root(
    leaves: list[bytes],
    telemetry: Optional[Telemetry] = None,
) -> bytes:
    """Merkle root over per-round quote leaves of one batched message.

    The fleet pipeline keeps per-round Q1/Q2/Q3 semantics intact — each
    entry still hashes its own fresh nonce — but a single signature per
    hop binds the root over all leaves, so signing cost stays constant
    as the batch grows. Leaf order must already be deterministic (the
    pipeline sorts entries by (Vid, nonce) before hashing). Leaves and
    interior nodes are domain-separated; odd levels promote the last
    node unchanged rather than duplicating it.
    """
    (telemetry or NULL_TELEMETRY).counter("protocol.quotes").inc(kind="merkle_root")
    if not leaves:
        return sha256(["merkle-empty"])
    # domain-separate leaves from interior nodes
    level = [sha256(["merkle-leaf", leaf]) for leaf in leaves]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(sha256(["merkle-node", level[i], level[i + 1]]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
