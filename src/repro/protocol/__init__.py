"""The attestation protocol of paper Fig. 3.

Message schemas and quote computation shared by the four entities. Each
hop of the protocol carries its own nonce (N1 customer-controller, N2
controller-attestation server, N3 attestation server-cloud server) and a
cumulative hash "quote" (Q1/Q2/Q3) binding the hop's content, signed by
the producing entity's key (SKc / SKa / ASKs).
"""

from repro.protocol.messages import (
    KEY_HEALTHY,
    KEY_MEASUREMENTS,
    KEY_NONCE,
    KEY_PROPERTY,
    KEY_QUOTE,
    KEY_REPORT,
    KEY_REQUESTED,
    KEY_SERVER,
    KEY_SIGNATURE,
    KEY_VID,
)
from repro.protocol.quotes import attestation_quote, report_quote_q1, report_quote_q2

__all__ = [
    "KEY_HEALTHY",
    "KEY_MEASUREMENTS",
    "KEY_NONCE",
    "KEY_PROPERTY",
    "KEY_QUOTE",
    "KEY_REPORT",
    "KEY_REQUESTED",
    "KEY_SERVER",
    "KEY_SIGNATURE",
    "KEY_VID",
    "attestation_quote",
    "report_quote_q1",
    "report_quote_q2",
]
