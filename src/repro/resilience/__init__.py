"""Deterministic fault tolerance for the attestation path.

The paper's protocol (Fig. 3) assumes every message arrives; this layer
supplies the production discipline the ROADMAP north-star demands
without giving up replayability:

- :mod:`repro.resilience.retry` — capped exponential backoff with
  DRBG-derived jitter, scheduled on the simulation clock, so identical
  seeds produce identical retry schedules;
- :mod:`repro.resilience.breaker` — a closed/open/half-open circuit
  breaker on the sim clock, used per attestation server by the
  controller's attest service;
- :mod:`repro.resilience.legs` — names and default timeouts for the
  four protocol legs of Fig. 3, shared by the network's per-leg
  timeout enforcement and the fault injector.

**Batched rounds.** The fleet pipeline shares wire crossings across
many logical rounds, but fault tolerance always targets the *logical
round*, never the shared batch: a transient failure of a batched
request records one breaker failure and then replays each member round
through the serial path — its own fresh nonces, its own retry budget,
its own degraded outcome — while an open circuit serves per-round
degraded reports immediately. A batch is an optimization, not a fate-
sharing domain (counted by the ``pipeline.batch.fallbacks`` telemetry).

See ``docs/FAILURE_MODEL.md`` for the full fault taxonomy and the
degraded-mode (``UNREACHABLE``) reporting semantics.
"""

from repro.resilience.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.resilience.legs import (
    DEFAULT_LEG_TIMEOUTS_MS,
    LEG_AS_SERVER,
    LEG_CONTROLLER_AS,
    LEG_CONTROLLER_SERVER,
    LEG_CUSTOMER_CONTROLLER,
    PROTOCOL_LEGS,
    leg_of,
)
from repro.resilience.retry import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY,
    RetryExecutor,
    RetryPolicy,
    is_transient,
)

__all__ = [
    "CircuitBreaker",
    "DEFAULT_LEG_TIMEOUTS_MS",
    "DEFAULT_RETRY_POLICY",
    "LEG_AS_SERVER",
    "LEG_CONTROLLER_AS",
    "LEG_CONTROLLER_SERVER",
    "LEG_CUSTOMER_CONTROLLER",
    "NO_RETRY",
    "PROTOCOL_LEGS",
    "RetryExecutor",
    "RetryPolicy",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "is_transient",
    "leg_of",
]
