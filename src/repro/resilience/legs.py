"""The four protocol legs of Fig. 3, as wire-level classifications.

Every secure-channel crossing happens between two named endpoints; the
endpoint naming convention (``controller``, ``attestation-server[-N]``,
``server-NNNN``, ``pca``, anything else = a customer) is stable enough
to classify each crossing into one of the paper's protocol legs:

- ``customer_controller`` — Table 1 requests and report delivery
  (carries N1/Q1), including periodic-result pushes;
- ``controller_as`` — attestation brokering (N2/Q2);
- ``as_server`` — the measurement round (N3/Q3);
- ``controller_server`` — VM lifecycle commands (spawn, terminate,
  migrate) from the controller to a cloud server.

pCA enrollment traffic is deliberately *not* a protocol leg: it is
trusted setup, outside the attestation path, so the fault injector and
per-leg timeouts never touch it.
"""

from __future__ import annotations

from typing import Optional

LEG_CUSTOMER_CONTROLLER = "customer_controller"
LEG_CONTROLLER_AS = "controller_as"
LEG_AS_SERVER = "as_server"
LEG_CONTROLLER_SERVER = "controller_server"

#: the four Fig. 3 legs, in protocol order
PROTOCOL_LEGS: tuple[str, ...] = (
    LEG_CUSTOMER_CONTROLLER,
    LEG_CONTROLLER_AS,
    LEG_AS_SERVER,
    LEG_CONTROLLER_SERVER,
)

#: Default per-leg timeout budget in simulated ms. Generous against the
#: default 55 ms crossing latency — a timeout should mean "injected
#: pathological delay", never a healthy-but-slow round.
DEFAULT_LEG_TIMEOUTS_MS: dict[str, float] = {
    LEG_CUSTOMER_CONTROLLER: 10_000.0,
    LEG_CONTROLLER_AS: 10_000.0,
    LEG_AS_SERVER: 10_000.0,
    LEG_CONTROLLER_SERVER: 10_000.0,
}

_ROLE_CONTROLLER = "controller"
_ROLE_AS = "as"
_ROLE_SERVER = "server"
_ROLE_PCA = "pca"
_ROLE_CUSTOMER = "customer"

_LEG_BY_ROLES: dict[frozenset, str] = {
    frozenset({_ROLE_CUSTOMER, _ROLE_CONTROLLER}): LEG_CUSTOMER_CONTROLLER,
    frozenset({_ROLE_CONTROLLER, _ROLE_AS}): LEG_CONTROLLER_AS,
    frozenset({_ROLE_AS, _ROLE_SERVER}): LEG_AS_SERVER,
    frozenset({_ROLE_CONTROLLER, _ROLE_SERVER}): LEG_CONTROLLER_SERVER,
}


def _role(endpoint: str) -> str:
    if endpoint == "controller":
        return _ROLE_CONTROLLER
    if endpoint.startswith("attestation-server"):
        return _ROLE_AS
    if endpoint.startswith("server-"):
        return _ROLE_SERVER
    if endpoint == "pca":
        return _ROLE_PCA
    return _ROLE_CUSTOMER


def leg_of(sender: str, receiver: str) -> Optional[str]:
    """Classify one crossing into a Fig. 3 leg (direction-agnostic).

    Returns ``None`` for traffic outside the attestation path (pCA
    enrollment, or exotic endpoint pairings a test wires up directly).
    """
    return _LEG_BY_ROLES.get(frozenset({_role(sender), _role(receiver)}))
