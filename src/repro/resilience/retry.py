"""Deterministic retries: capped exponential backoff on the sim clock.

Production RPC stacks (the OpenStack tooling in PAPERS.md) wrap every
call in retry discipline; this module does the same without breaking
replayability. Two sources of nondeterminism are eliminated:

1. **Jitter** comes from a dedicated :class:`~repro.crypto.drbg.HmacDrbg`
   fork, not wall-clock entropy — the jitter fraction for attempt *k*
   is a pure function of the seed and the number of prior draws.
2. **Waiting** advances the shared discrete-event engine
   (``engine.run_until``), exactly like a wire crossing pays latency —
   so backoff interleaves deterministically with scheduler events,
   measurement windows and periodic attestation fires.

Retry is *operation-level*, not message-level: the retried closure
mints a fresh nonce each attempt, so a retry is a brand-new protocol
round and never trips the receiver's replay cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.common.errors import (
    CloudMonattError,
    ConfigurationError,
    CryptoError,
    NetworkError,
    RecordError,
    ReplayError,
    UnknownEndpointError,
)
from repro.crypto.drbg import HmacDrbg
from repro.sim.engine import Engine
from repro.telemetry import NULL_TELEMETRY, Telemetry

T = TypeVar("T")


def is_transient(exc: BaseException) -> bool:
    """Whether retrying can plausibly fix this failure.

    Transient: delivery failures (drops, timeouts — but not an
    unregistered endpoint), record-layer damage (a fresh handshake
    repairs the channel), tamper-induced crypto failures, and replayed
    or stale nonces (the retry mints a fresh one). Everything else —
    application-level protocol errors, state errors, placement errors —
    is deterministic and retrying would only repeat it.
    """
    if isinstance(exc, UnknownEndpointError):
        return False
    return isinstance(exc, (NetworkError, RecordError, CryptoError, ReplayError))


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with DRBG-derived jitter.

    The delay before retry attempt *k* (k = 1 for the first retry) is
    ``min(base * multiplier**(k-1), max_delay) * (1 + jitter * unit)``
    where ``unit`` is a uniform draw in [0, 1) from the executor's DRBG
    fork. ``max_attempts`` counts the initial try, so ``max_attempts=1``
    means no retries at all.
    """

    max_attempts: int = 4
    base_delay_ms: float = 40.0
    multiplier: float = 2.0
    max_delay_ms: float = 2_000.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ConfigurationError("backoff delays cannot be negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter fraction must be in [0, 1]")

    def backoff_ms(self, attempt: int, unit: float) -> float:
        """Delay before retry ``attempt`` (1-based), given a jitter unit."""
        delay = min(
            self.base_delay_ms * self.multiplier ** (attempt - 1),
            self.max_delay_ms,
        )
        return delay * (1.0 + self.jitter * unit)


#: The library default: 1 try + 3 retries, 40/80/160 ms base backoff.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: Disable retries while keeping the executor plumbing in place.
NO_RETRY = RetryPolicy(max_attempts=1)


class RetryExecutor:
    """Runs operations under a :class:`RetryPolicy`, deterministically.

    One executor per call-site owner (customer, attest service,
    appraiser), each with its own DRBG fork so jitter streams never
    interleave across entities.
    """

    def __init__(
        self,
        engine: Engine,
        drbg: HmacDrbg,
        policy: Optional[RetryPolicy] = None,
        telemetry: Optional[Telemetry] = None,
        site: str = "",
    ):
        self.engine = engine
        self.policy = policy or DEFAULT_RETRY_POLICY
        self.telemetry = telemetry or NULL_TELEMETRY
        self.site = site
        self._drbg = drbg

    def _jitter_unit(self) -> float:
        return int.from_bytes(self._drbg.generate(8), "big") / 2**64

    def run(
        self,
        operation: Callable[[], T],
        classify: Callable[[BaseException], bool] = is_transient,
    ) -> T:
        """Call ``operation`` until it succeeds or the policy is spent.

        Only exceptions ``classify`` deems transient are retried; the
        rest propagate immediately. On exhaustion the *last* transient
        exception propagates (after a ``retry_giveup`` event).
        """
        policy = self.policy
        last_error: BaseException | None = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return operation()
            except CloudMonattError as exc:
                if not classify(exc):
                    raise
                last_error = exc
                if attempt >= policy.max_attempts:
                    break
                delay = policy.backoff_ms(attempt, self._jitter_unit())
                self.telemetry.counter("resilience.retries").inc(site=self.site)
                self.telemetry.observe_event(
                    "retry",
                    site=self.site,
                    attempt=attempt,
                    backoff_ms=delay,
                    error=type(exc).__name__,
                    detail=str(exc),
                )
                # unrelated callbacks (policy ticks, pipeline drains)
                # fire during the wait on this round's Python stack:
                # suspend the round scope so they are not mis-tagged
                with self.telemetry.isolate_rounds():
                    self.engine.run_until(self.engine.now + delay)
        self.telemetry.counter("resilience.giveups").inc(site=self.site)
        self.telemetry.observe_event(
            "retry_giveup",
            site=self.site,
            attempts=policy.max_attempts,
            error=type(last_error).__name__,
            detail=str(last_error),
        )
        assert last_error is not None
        raise last_error
