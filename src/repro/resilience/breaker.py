"""A circuit breaker on the simulation clock.

Classic three-state breaker (closed → open → half-open), driven by a
deterministic clock so same-seed runs transition at identical instants:

- **closed** — operations flow; consecutive failures are counted, and
  reaching ``failure_threshold`` opens the circuit;
- **open** — operations are refused outright (the caller serves a
  degraded answer instead of burning retries against a dark peer)
  until ``reset_after_ms`` of simulated time has passed;
- **half-open** — exactly one probe operation is allowed through;
  success closes the circuit, failure re-opens it for another full
  reset window.

Failures are counted per *operation* (a whole retried round), not per
attempt — a single round that exhausts three retries is one failure.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.errors import ConfigurationError

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"

#: transition hook: ``callback(old_state, new_state)``
TransitionCallback = Callable[[str, str], None]


class CircuitBreaker:
    """Per-peer failure gate with deterministic timing."""

    def __init__(
        self,
        clock: Callable[[], float],
        failure_threshold: int = 3,
        reset_after_ms: float = 60_000.0,
        on_transition: Optional[TransitionCallback] = None,
    ):
        if failure_threshold < 1:
            raise ConfigurationError("failure threshold must be >= 1")
        if reset_after_ms <= 0:
            raise ConfigurationError("reset window must be positive")
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.reset_after_ms = reset_after_ms
        self.on_transition = on_transition
        self._state = STATE_CLOSED
        self._failures = 0
        self._opened_at_ms: float = 0.0

    @property
    def state(self) -> str:
        """Current state, accounting for reset-window expiry."""
        if (
            self._state == STATE_OPEN
            and self._clock() - self._opened_at_ms >= self.reset_after_ms
        ):
            self._transition(STATE_HALF_OPEN)
        return self._state

    @property
    def failures(self) -> int:
        """Consecutive failures since the last success."""
        return self._failures

    def allow(self) -> bool:
        """Whether the caller may attempt an operation right now.

        In half-open state this admits the probe; the breaker stays
        half-open until the probe's outcome is recorded, which in the
        single-threaded simulation means exactly one probe at a time.
        """
        return self.state != STATE_OPEN

    def record_success(self) -> None:
        """A completed operation: close the circuit, clear the count."""
        self._failures = 0
        if self._state != STATE_CLOSED:
            self._transition(STATE_CLOSED)

    def record_failure(self) -> None:
        """A failed operation: count it; maybe open the circuit."""
        state = self.state
        if state == STATE_HALF_OPEN:
            # the probe failed: straight back to open, fresh window
            self._open()
            return
        self._failures += 1
        if state == STATE_CLOSED and self._failures >= self.failure_threshold:
            self._open()

    def _open(self) -> None:
        self._opened_at_ms = self._clock()
        self._transition(STATE_OPEN)

    def _transition(self, new_state: str) -> None:
        old_state, self._state = self._state, new_state
        if self.on_transition is not None and old_state != new_state:
            self.on_transition(old_state, new_state)
