"""The VM lifecycle state machine.

States and legal transitions follow §5: a VM is requested, scheduled,
launched (possibly rejected at startup attestation), runs, may be
suspended/resumed or migrated, and ends terminated. Illegal transitions
raise :class:`~repro.common.errors.StateError` — the controller's
response module relies on these guards.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import StateError
from repro.common.identifiers import CustomerId, ServerId, VmId
from repro.properties.catalog import SecurityProperty


class VmState(enum.Enum):
    """Lifecycle states of a VM in the controller's database."""

    REQUESTED = "requested"
    SCHEDULED = "scheduled"
    ACTIVE = "active"
    SUSPENDED = "suspended"
    MIGRATING = "migrating"
    TERMINATED = "terminated"
    REJECTED = "rejected"  # launch refused (failed startup attestation)


_TRANSITIONS: dict[VmState, set[VmState]] = {
    VmState.REQUESTED: {VmState.SCHEDULED, VmState.REJECTED},
    VmState.SCHEDULED: {VmState.ACTIVE, VmState.REJECTED},
    VmState.ACTIVE: {VmState.SUSPENDED, VmState.MIGRATING, VmState.TERMINATED},
    VmState.SUSPENDED: {VmState.ACTIVE, VmState.TERMINATED},
    VmState.MIGRATING: {VmState.ACTIVE, VmState.TERMINATED},
    VmState.TERMINATED: set(),
    VmState.REJECTED: set(),
}


@dataclass
class VmRecord:
    """Everything the controller knows about one VM."""

    vid: VmId
    customer: CustomerId
    flavor: str
    image: str
    properties: list[SecurityProperty] = field(default_factory=list)
    state: VmState = VmState.REQUESTED
    server: ServerId | None = None
    #: SLA-contracted CPU share (None = the interpreter's default)
    entitled_share: float | None = None
    #: anti-co-location: this VM must not share a server with other
    #: customers' VMs (defense against the co-residence attacks of
    #: Ristenpart et al., the paper's [31])
    dedicated: bool = False

    def transition(self, new_state: VmState) -> None:
        """Move to ``new_state``, enforcing the lifecycle graph."""
        if new_state not in _TRANSITIONS[self.state]:
            raise StateError(
                f"VM {self.vid}: illegal transition {self.state.value} -> "
                f"{new_state.value}"
            )
        self.state = new_state

    @property
    def live(self) -> bool:
        """Whether the VM still exists from the customer's perspective."""
        return self.state in {
            VmState.ACTIVE,
            VmState.SUSPENDED,
            VmState.MIGRATING,
        }
