"""Flavors and images matching the paper's evaluation matrix (Fig. 9).

Three images (cirros, fedora, ubuntu) by three flavors (small, medium,
large). Image contents are synthetic but content-addressed: tampering
with the bytes changes the measured hash, which is all startup
attestation needs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Flavor:
    """A VM size: vCPUs, memory and root disk."""

    name: str
    vcpus: int
    memory_mb: int
    disk_gb: int


@dataclass(frozen=True)
class VmImage:
    """A bootable VM image with synthetic content for hashing."""

    name: str
    size_mb: int
    content: bytes
    #: services this image runs when booted (runtime-integrity whitelist)
    standard_tasks: tuple[str, ...] = (
        "init",
        "sshd",
        "cron",
        "rsyslogd",
        "app-server",
    )
    standard_modules: tuple[str, ...] = ("ext4", "e1000", "iptables")


def default_flavors() -> dict[str, Flavor]:
    """The small/medium/large flavors of the paper's launch experiments."""
    return {
        "small": Flavor("small", vcpus=1, memory_mb=2048, disk_gb=20),
        "medium": Flavor("medium", vcpus=2, memory_mb=4096, disk_gb=40),
        "large": Flavor("large", vcpus=4, memory_mb=8192, disk_gb=80),
    }


def default_images() -> dict[str, VmImage]:
    """The cirros/fedora/ubuntu images of the paper's launch experiments."""
    return {
        "cirros": VmImage("cirros", size_mb=25, content=b"cirros-0.3.1 minimal cloud image"),
        "fedora": VmImage("fedora", size_mb=250, content=b"fedora-19 cloud image contents"),
        "ubuntu": VmImage("ubuntu", size_mb=700, content=b"ubuntu-12.04 server cloud image"),
    }
