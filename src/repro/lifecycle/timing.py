"""The operation cost model.

Substitution note (DESIGN.md §2): the paper measures wall-clock times on
a physical OpenStack testbed. Our substrate executes the same *logical*
operations but in simulated time, so management and crypto operations
charge simulated milliseconds through this model. Base costs are
calibrated so the reproduced Figures 9-11 match the paper's shape:

- network transmission dominates attestation cost ("the main overhead of
  an attestation is from the message transmitting in the network",
  §7.1.1);
- a full VM launch lands in the 2.5-5 s band with attestation ≈ 20%;
- responses order as Termination < Suspension < Migration, with
  migration scaling in VM memory size (Fig. 11).

All costs are jittered through the injected RNG so repeated stages look
like measurements; the jitter is seeded, so runs remain reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.sim.engine import Engine

DEFAULT_COSTS_MS: dict[str, float] = {
    # management-plane operations (OpenStack-equivalents)
    "db_access": 12.0,
    "scheduling_base": 420.0,
    "scheduling_property_filter": 130.0,
    "networking": 760.0,
    "block_device_mapping": 240.0,
    "spawn_base": 850.0,
    "boot_per_flavor_vcpu": 90.0,
    # crypto / trust operations — calibrated below the per-attestation
    # network cost so that message transmission dominates, matching the
    # paper's §7.1.1 observation
    "tpm_extend": 18.0,
    "tpm_quote_sign": 110.0,
    "session_keygen": 70.0,
    "pca_certify": 30.0,
    "verify_signature": 8.0,
    "interpret_measurements": 25.0,
    "report_sign": 10.0,
    # data movement
    "image_fetch_per_mb": 1.1,
    "memory_copy_per_gb": 900.0,
    "state_save_per_gb": 380.0,
    "vm_destroy": 260.0,
    "vm_resume": 420.0,
}


@dataclass
class CostModel:
    """Charges simulated time for named operations.

    ``costs_ms`` can be overridden wholesale or per key; unknown
    operation names raise, so typos cannot silently cost nothing.
    """

    engine: Engine
    rng: DeterministicRng
    costs_ms: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_COSTS_MS))
    jitter: float = 0.08
    #: accumulated charge per operation name (for breakdown figures)
    charged_ms: dict[str, float] = field(default_factory=dict)

    def charge(self, operation: str, scale: float = 1.0) -> float:
        """Advance simulated time by the operation's jittered cost.

        ``scale`` multiplies the base (e.g. per-MB costs). Returns the
        charged duration in ms.
        """
        if operation not in self.costs_ms:
            raise ConfigurationError(f"unknown cost operation {operation!r}")
        duration = self.rng.jitter(self.costs_ms[operation] * scale, self.jitter)
        self.engine.run_until(self.engine.now + duration)
        self.charged_ms[operation] = self.charged_ms.get(operation, 0.0) + duration
        return duration

    def set_cost(self, operation: str, base_ms: float) -> None:
        """Override one operation's base cost (ablation experiments)."""
        if base_ms < 0:
            raise ConfigurationError("costs cannot be negative")
        self.costs_ms[operation] = base_ms

    def reset_accounting(self) -> None:
        """Clear the per-operation charge accumulator."""
        self.charged_ms.clear()
