"""VM lifecycle: states, flavors/images, and the operation cost model.

The paper evaluates attestation at every lifecycle stage (launch,
runtime, migration, termination — §5, Figs. 9-11). This package holds
the shared lifecycle vocabulary: the VM state machine, the flavor/image
catalogs of the evaluation testbed, and the :class:`CostModel` that
charges simulated time for management and crypto operations (in place
of the authors' physical OpenStack testbed — see DESIGN.md §2).
"""

from repro.lifecycle.flavors import Flavor, VmImage, default_flavors, default_images
from repro.lifecycle.states import VmRecord, VmState
from repro.lifecycle.timing import CostModel

__all__ = [
    "CostModel",
    "Flavor",
    "VmImage",
    "VmRecord",
    "VmState",
    "default_flavors",
    "default_images",
]
