"""CloudMonatt reproduction (ISCA 2015, Zhang & Lee).

A complete, self-contained simulation of the CloudMonatt architecture
for security health monitoring and attestation of virtual machines:
cloud controller, attestation server, privacy CA, Xen-credit-scheduler
cloud servers with Trust and Monitor modules, the property-based
attestation protocol with end-to-end signatures and nonces, the paper's
two new cloud attacks, and a symbolic Dolev-Yao protocol verifier.

Start with :class:`repro.cloud.CloudMonatt`.
"""

from repro.cloud import CloudMonatt, Customer
from repro.network.faults import FaultSpec
from repro.policy import CheckSpec, MonitoringPolicy, NotificationRouting
from repro.properties import PropertyReport, SecurityProperty
from repro.resilience import RetryPolicy

__version__ = "1.0.0"

__all__ = [
    "CheckSpec",
    "CloudMonatt",
    "Customer",
    "FaultSpec",
    "MonitoringPolicy",
    "NotificationRouting",
    "PropertyReport",
    "RetryPolicy",
    "SecurityProperty",
]
