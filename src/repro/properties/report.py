"""The attestation report R produced by property interpretation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.properties.catalog import SecurityProperty


@dataclass(frozen=True)
class PropertyReport:
    """Verdict of one property interpretation.

    ``healthy`` is the attestation decision the customer acts on;
    ``details`` carries the supporting evidence (interpreted, not raw);
    ``explanation`` is a human-readable summary.
    """

    prop: SecurityProperty
    healthy: bool
    explanation: str
    details: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Serializable form for signing and transport.

        Detail values are kept canonically encodable (the protocol signs
        reports end to end).
        """
        return {
            "prop": self.prop.value,
            "healthy": self.healthy,
            "explanation": self.explanation,
            "details": self.details,
        }

    @staticmethod
    def from_dict(data: dict) -> "PropertyReport":
        """Inverse of :meth:`to_dict`."""
        return PropertyReport(
            prop=SecurityProperty(data["prop"]),
            healthy=bool(data["healthy"]),
            explanation=str(data["explanation"]),
            details=dict(data["details"]),
        )
