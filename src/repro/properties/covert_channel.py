"""Covert-channel interpretation (case study III, paper §4.4.3).

"When the Attestation Server receives the 30 values, the Property
Interpretation Module calculates the probability distribution of the
CPU usage intervals. If a covert channel exists, the distribution graph
gives two peaks... For a benign VM, it typically gives one peak for the
default interval of 30 ms. The Attestation Server can use machine
learning techniques to cluster the covert-channel results and benign
results."

Two detectors are provided and combined:

- :func:`significant_peaks` — a direct peak counter over the smoothed
  distribution (transparent, used for the headline decision);
- :func:`kmeans_two_cluster` — weighted 1-D 2-means over interval
  values, the paper's "machine learning" clustering; its separation
  score corroborates the peak analysis.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.common.identifiers import VmId
from repro.common.rng import DeterministicRng
from repro.monitors.monitor_module import (
    MEAS_BUS_LOCK_HISTOGRAM,
    MEAS_CPU_INTERVAL_HISTOGRAM,
)
from repro.properties.catalog import SecurityProperty
from repro.properties.interpretation import PropertyInterpreter
from repro.properties.report import PropertyReport


def significant_peaks(
    distribution: Sequence[float],
    mass_threshold: float = 0.08,
    min_separation: int = 3,
) -> list[int]:
    """Find distinct mass concentrations in an interval distribution.

    Adjacent significant bins merge into one peak; two concentrations
    are distinct peaks only when separated by at least ``min_separation``
    insignificant bins. Returns the (mass-weighted) center bin of each.
    """
    significant = [i for i, mass in enumerate(distribution) if mass >= mass_threshold]
    if not significant:
        return []
    groups: list[list[int]] = [[significant[0]]]
    for bin_index in significant[1:]:
        if bin_index - groups[-1][-1] < min_separation:
            groups[-1].append(bin_index)
        else:
            groups.append([bin_index])
    centers = []
    for group in groups:
        total = sum(distribution[i] for i in group)
        center = sum(i * distribution[i] for i in group) / total
        centers.append(round(center))
    return centers


def kmeans_two_cluster(
    distribution: Sequence[float], iterations: int = 32
) -> dict[str, float]:
    """Weighted 1-D 2-means over bin indices.

    Deterministic initialization (first/last significant mass). Returns
    the two centroids, their mass split, and a separation score in bins.
    An empty or single-bin distribution degenerates to zero separation.
    """
    points = [(i, m) for i, m in enumerate(distribution) if m > 0]
    if len(points) < 2:
        only = points[0][0] if points else 0.0
        return {"centroid_low": float(only), "centroid_high": float(only),
                "mass_low": 1.0, "mass_high": 0.0, "separation": 0.0}
    low, high = float(points[0][0]), float(points[-1][0])
    for _ in range(iterations):
        sums = [0.0, 0.0]
        masses = [0.0, 0.0]
        for index, mass in points:
            cluster = 0 if abs(index - low) <= abs(index - high) else 1
            sums[cluster] += index * mass
            masses[cluster] += mass
        new_low = sums[0] / masses[0] if masses[0] else low
        new_high = sums[1] / masses[1] if masses[1] else high
        if new_low == low and new_high == high:
            break
        low, high = new_low, new_high
    total = masses[0] + masses[1]
    return {
        "centroid_low": low,
        "centroid_high": high,
        "mass_low": masses[0] / total,
        "mass_high": masses[1] / total,
        "separation": abs(high - low),
    }


class CovertChannelInterpreter(PropertyInterpreter):
    """Classifies an interval histogram as covert-channel-like or benign.

    Decision rule: the histogram is **suspicious** when it shows two or
    more distinct peaks (paper: "each peak representing the activity of
    transmitting a '0' or a '1'") corroborated by a two-cluster split
    where both clusters carry at least ``min_cluster_mass``. A benign
    CPU-bound VM shows a single peak at the 30 ms timeslice; a benign
    I/O-bound VM shows a single short-interval peak.
    """

    prop = SecurityProperty.COVERT_CHANNEL_FREEDOM

    def __init__(
        self,
        mass_threshold: float = 0.08,
        min_separation: int = 3,
        min_cluster_mass: float = 0.15,
        min_support: float = 20.0,
    ):
        self.mass_threshold = mass_threshold
        self.min_separation = min_separation
        self.min_cluster_mass = min_cluster_mass
        #: minimum histogram mass (interval count / run-ms) before the
        #: interpreter will convict — too small a sample is reported as
        #: inconclusive rather than risked as a false positive. Periodic
        #: attestation accumulates rounds until support is reached
        #: (paper §3.2.1).
        self.min_support = min_support

    def _analyze_histogram(self, counts: Sequence[float]) -> dict[str, Any]:
        """Peak + cluster analysis of one source's histogram."""
        total = float(sum(counts))
        if total == 0:
            return {"covert": False, "peaks": [], "total": 0.0,
                    "insufficient": False,
                    "distribution": [0.0] * len(counts)}
        if total < self.min_support:
            return {"covert": False, "peaks": [], "total": total,
                    "insufficient": True,
                    "distribution": [c / total for c in counts]}
        distribution = [count / total for count in counts]
        peaks = significant_peaks(
            distribution, self.mass_threshold, self.min_separation
        )
        clusters = kmeans_two_cluster(distribution)
        multi_peak = len(peaks) >= 2
        balanced_clusters = (
            clusters["separation"] >= self.min_separation
            and min(clusters["mass_low"], clusters["mass_high"])
            >= self.min_cluster_mass
        )
        return {
            "covert": multi_peak and balanced_clusters,
            "peaks": peaks,
            "total": total,
            "insufficient": False,
            "distribution": distribution,
            "cluster_separation": clusters["separation"],
            "cluster_mass_low": clusters["mass_low"],
            "cluster_mass_high": clusters["mass_high"],
        }

    def interpret(self, vid: VmId, measurements: dict[str, Any]) -> PropertyReport:
        cpu = self._analyze_histogram(
            measurements.get(MEAS_CPU_INTERVAL_HISTOGRAM, [])
        )
        bus = self._analyze_histogram(
            measurements.get(MEAS_BUS_LOCK_HISTOGRAM, [])
        )
        covert_detected = cpu["covert"] or bus["covert"]
        inconclusive = (cpu["insufficient"] or bus["insufficient"]) and not covert_detected
        if cpu["total"] == 0 and bus["total"] == 0:
            explanation = "VM showed no activity in the testing window"
        elif inconclusive:
            explanation = (
                "too little activity to judge confidently; accumulate "
                "further periodic rounds"
            )
        elif cpu["covert"] and bus["covert"]:
            explanation = (
                "bimodal patterns on both the CPU-interval and memory-bus "
                "sources: covert-channel communication"
            )
        elif cpu["covert"]:
            explanation = (
                f"bimodal interval distribution (peaks near bins {cpu['peaks']}): "
                "covert-channel communication pattern"
            )
        elif bus["covert"]:
            explanation = (
                f"bimodal bus-lock-rate distribution (peaks near rates "
                f"{bus['peaks']} ops/ms): memory-bus covert channel"
            )
        else:
            explanation = (
                f"unimodal interval distribution (peaks near bins {cpu['peaks']}): "
                "benign"
            )
        return PropertyReport(
            prop=self.prop,
            healthy=not covert_detected,
            explanation=explanation,
            details={
                "peaks": cpu["peaks"],
                "cluster_separation": cpu.get("cluster_separation", 0.0),
                "cluster_mass_low": cpu.get("cluster_mass_low", 0.0),
                "cluster_mass_high": cpu.get("cluster_mass_high", 0.0),
                "total_intervals": int(cpu["total"]),
                "distribution": cpu["distribution"],
                "bus_peaks": bus["peaks"],
                "bus_covert": bus["covert"],
                "bus_distribution": bus["distribution"],
                "inconclusive": inconclusive,
            },
        )


class RandomSourceSelector:
    """Randomized covert-channel source monitoring (paper §4.4.3).

    "The system could also be designed to switch randomly between
    monitoring different sources of covert channels, and use the
    periodic attestation mode." Each round, :meth:`next_measurements`
    picks one source uniformly, so an adaptive attacker cannot predict
    which medium is being watched.
    """

    SOURCES: tuple[tuple[str, ...], ...] = (
        (MEAS_CPU_INTERVAL_HISTOGRAM,),
        (MEAS_BUS_LOCK_HISTOGRAM,),
    )

    def __init__(self, rng: DeterministicRng):
        self._rng = rng
        #: the sources chosen so far (for auditing)
        self.history: list[tuple[str, ...]] = []

    def next_measurements(self) -> tuple[str, ...]:
        """The measurement subset to request this round."""
        choice = self._rng.choice(self.SOURCES)
        self.history.append(choice)
        return choice
