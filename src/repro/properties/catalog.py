"""The property vocabulary and the P → rM mapping (paper §4.1).

"The Attestation Server has a mapping of security property P to
measurements M. This gives a list of measurements M that can indicate
the security health with respect to the specified property P."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.monitors.monitor_module import (
    MEAS_BUS_LOCK_HISTOGRAM,
    MEAS_CPU_INTERVAL_HISTOGRAM,
    MEAS_CPU_USAGE,
    MEAS_KERNEL_MODULES,
    MEAS_PLATFORM_INTEGRITY,
    MEAS_TASK_LIST,
    MEAS_VM_IMAGE_INTEGRITY,
)


class SecurityProperty(str, enum.Enum):
    """The properties a customer can request (paper's four case studies).

    The architecture is open-ended — "CloudMonatt is flexible and allows
    the integration of an arbitrary number of security properties" — so
    the catalog accepts registrations beyond these built-ins.
    """

    STARTUP_INTEGRITY = "startup_integrity"
    RUNTIME_INTEGRITY = "runtime_integrity"
    COVERT_CHANNEL_FREEDOM = "covert_channel_freedom"
    CPU_AVAILABILITY = "cpu_availability"


@dataclass(frozen=True)
class PropertySpec:
    """Measurement requirements for one property."""

    measurements: tuple[str, ...]
    #: default testing-window length for windowed measurements, in ms
    default_window_ms: float = 0.0


_BUILTIN_SPECS: dict[SecurityProperty, PropertySpec] = {
    SecurityProperty.STARTUP_INTEGRITY: PropertySpec(
        measurements=(MEAS_PLATFORM_INTEGRITY, MEAS_VM_IMAGE_INTEGRITY),
    ),
    SecurityProperty.RUNTIME_INTEGRITY: PropertySpec(
        measurements=(MEAS_TASK_LIST, MEAS_KERNEL_MODULES),
    ),
    SecurityProperty.COVERT_CHANNEL_FREEDOM: PropertySpec(
        # both covert-channel sources (§4.4.3: "other types of covert
        # channels can also be monitored"): scheduler intervals and
        # memory-bus lock rates
        measurements=(MEAS_CPU_INTERVAL_HISTOGRAM, MEAS_BUS_LOCK_HISTOGRAM),
        default_window_ms=3000.0,
    ),
    SecurityProperty.CPU_AVAILABILITY: PropertySpec(
        measurements=(MEAS_CPU_USAGE,),
        default_window_ms=1000.0,
    ),
}


class PropertyCatalog:
    """Registry resolving a property to its required measurements."""

    def __init__(self):
        self._specs: dict[SecurityProperty, PropertySpec] = dict(_BUILTIN_SPECS)

    def register(self, prop: SecurityProperty, spec: PropertySpec) -> None:
        """Add or replace a property's measurement mapping."""
        if not spec.measurements:
            raise ConfigurationError("a property needs at least one measurement")
        self._specs[prop] = spec

    def supports(self, prop: SecurityProperty) -> bool:
        """Whether the catalog knows the property."""
        return prop in self._specs

    def spec(self, prop: SecurityProperty) -> PropertySpec:
        """The measurement spec for a property."""
        if prop not in self._specs:
            raise ConfigurationError(f"unknown security property {prop!r}")
        return self._specs[prop]

    def measurements_for(self, prop: SecurityProperty) -> tuple[str, ...]:
        """The rM list sent to the cloud server for property P."""
        return self.spec(prop).measurements

    def properties(self) -> list[SecurityProperty]:
        """All registered properties."""
        return list(self._specs)
