"""IMA-style per-component appraisal (paper §4.2.2).

"Alternatively, the Attestation Server can use a trusted Appraiser
system (like an Integrity Measurement Architecture (IMA)) to check if
the measured hash values conform to the correct values for a pristine,
malware-free system."

Where the aggregate-PCR comparison answers only "is the platform
pristine?", the IMA appraiser walks the named measurement log and
answers "which components are not" — diagnostics the response module
can act on (e.g. suspend only until the one bad agent is redeployed).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.monitors.integrity_unit import SoftwareInventory


@dataclass(frozen=True)
class ComponentVerdict:
    """Appraisal of one measurement-log entry."""

    name: str
    measured_digest: bytes
    status: str  # "ok" | "modified" | "unknown-component"


class ImaAppraiser:
    """Holds known-good per-component digests; appraises named logs."""

    def __init__(self):
        self._good_digests: dict[str, set[bytes]] = {}

    def trust_inventory(self, inventory: SoftwareInventory) -> None:
        """Whitelist every component version in a pristine inventory.

        Multiple calls accumulate: a component may have several
        acceptable versions (e.g. two patched hypervisor builds).
        """
        for (name, content) in inventory.components:
            digest = hashlib.sha256(content).digest()
            self._good_digests.setdefault(name, set()).add(digest)

    def knows_component(self, name: str) -> bool:
        """Whether any good digest is registered for the component."""
        return name in self._good_digests

    def appraise(
        self, components: list[str], log: list[bytes]
    ) -> list[ComponentVerdict]:
        """Judge each (component, digest) pair in the measurement log."""
        verdicts = []
        for name, digest in zip(components, log):
            good = self._good_digests.get(name)
            if good is None:
                status = "unknown-component"
            elif digest in good:
                status = "ok"
            else:
                status = "modified"
            verdicts.append(
                ComponentVerdict(name=name, measured_digest=digest, status=status)
            )
        return verdicts

    def violations(
        self, components: list[str], log: list[bytes]
    ) -> list[str]:
        """Names of components that are modified or unrecognized."""
        return [
            verdict.name
            for verdict in self.appraise(components, log)
            if verdict.status != "ok"
        ]
