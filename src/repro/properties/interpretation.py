"""Interpreter framework: measurements M in, attestation report R out."""

from __future__ import annotations

import abc
from typing import Any

from repro.common.errors import ConfigurationError
from repro.common.identifiers import VmId
from repro.properties.catalog import SecurityProperty
from repro.properties.report import PropertyReport


class PropertyInterpreter(abc.ABC):
    """Judges whether one security property holds, from measurements.

    Subclasses hold whatever reference data the judgement needs (good
    hash values, process whitelists, SLA shares) — that is Attestation
    Server state, not cloud-server state, which is what keeps the
    scheme trustworthy when servers are not.
    """

    prop: SecurityProperty

    @abc.abstractmethod
    def interpret(self, vid: VmId, measurements: dict[str, Any]) -> PropertyReport:
        """Produce the attestation report for ``vid``."""


class InterpreterRegistry:
    """Property → interpreter dispatch, owned by the Attestation Server."""

    def __init__(self):
        self._interpreters: dict[SecurityProperty, PropertyInterpreter] = {}

    def register(self, interpreter: PropertyInterpreter) -> None:
        """Install an interpreter for its declared property."""
        self._interpreters[interpreter.prop] = interpreter

    def supports(self, prop: SecurityProperty) -> bool:
        """Whether an interpreter is installed for the property."""
        return prop in self._interpreters

    def interpret(
        self, prop: SecurityProperty, vid: VmId, measurements: dict[str, Any]
    ) -> PropertyReport:
        """Dispatch measurement interpretation for one property."""
        interpreter = self._interpreters.get(prop)
        if interpreter is None:
            raise ConfigurationError(f"no interpreter for property {prop!r}")
        return interpreter.interpret(vid, measurements)
