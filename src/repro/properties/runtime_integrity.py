"""Runtime-integrity interpretation (case study II, paper §4.3).

The VMI tool returns the *true* task list from guest memory. Two checks:

1. **Whitelist** — every running task must be one the customer declared
   (the customer registers the service set their image runs).
2. **Module whitelist** — loaded kernel modules must likewise be known.

The paper additionally describes the customer comparing the attested
task list with the (possibly lying) in-guest view; that comparison is
surfaced by the customer-side helper :func:`detect_hidden_tasks`.
"""

from __future__ import annotations

from typing import Any

from repro.common.identifiers import VmId
from repro.monitors.monitor_module import MEAS_KERNEL_MODULES, MEAS_TASK_LIST
from repro.properties.catalog import SecurityProperty
from repro.properties.interpretation import PropertyInterpreter
from repro.properties.report import PropertyReport


class RuntimeIntegrityInterpreter(PropertyInterpreter):
    """Appraises VMI task-list evidence against per-VM whitelists."""

    prop = SecurityProperty.RUNTIME_INTEGRITY

    def __init__(self):
        self._task_whitelists: dict[VmId, set[str]] = {}
        self._module_whitelists: dict[VmId, set[str]] = {}

    def set_whitelist(
        self, vid: VmId, tasks: list[str], modules: list[str] | None = None
    ) -> None:
        """Register the customer-declared expected tasks (and modules)."""
        self._task_whitelists[vid] = set(tasks)
        if modules is not None:
            self._module_whitelists[vid] = set(modules)

    def registered_vms(self) -> int:
        """How many VMs have a registered task whitelist."""
        return len(self._task_whitelists)

    def interpret(self, vid: VmId, measurements: dict[str, Any]) -> PropertyReport:
        tasks = measurements[MEAS_TASK_LIST]
        modules = measurements.get(MEAS_KERNEL_MODULES, [])
        task_whitelist = self._task_whitelists.get(vid)

        if task_whitelist is None:
            return PropertyReport(
                prop=self.prop,
                healthy=False,
                explanation="no task whitelist registered for this VM",
                details={"unknown_tasks": [t["name"] for t in tasks]},
            )

        unknown_tasks = sorted(
            {t["name"] for t in tasks if t["name"] not in task_whitelist}
        )
        module_whitelist = self._module_whitelists.get(vid)
        unknown_modules = (
            sorted(set(modules) - module_whitelist)
            if module_whitelist is not None
            else []
        )

        healthy = not unknown_tasks and not unknown_modules
        if healthy:
            explanation = "all running tasks and modules are whitelisted"
        else:
            parts = []
            if unknown_tasks:
                parts.append(f"unexpected tasks: {', '.join(unknown_tasks)}")
            if unknown_modules:
                parts.append(f"unexpected kernel modules: {', '.join(unknown_modules)}")
            explanation = "; ".join(parts)
        return PropertyReport(
            prop=self.prop,
            healthy=healthy,
            explanation=explanation,
            details={
                "task_count": len(tasks),
                "unknown_tasks": unknown_tasks,
                "unknown_modules": unknown_modules,
            },
        )


def detect_hidden_tasks(
    attested_tasks: list[dict], guest_reported_tasks: list[dict]
) -> list[dict]:
    """Customer-side check: tasks in the attested (true) list that the
    guest's own query omits — i.e. processes malware is hiding.

    "The customer can compare this actual task list in the returned
    Attestation Report and compare it with the one he gets from querying
    the corrupted guest OS, to detect the malware running in his VM."
    """
    reported_pids = {t["pid"] for t in guest_reported_tasks}
    return [t for t in attested_tasks if t["pid"] not in reported_pids]
