"""CC-Hunter-style event-train analysis (paper §4.4.2, citing [11]).

"Covert channels are based on contention for shared resources. Programs
involved in covert channel communications give unique patterns of the
events happening on such hardware [11]."

The histogram detectors in :mod:`repro.properties.covert_channel` look
at the *distribution* of contention intensities; an adaptive sender can
flatten that distribution by drawing a fresh intensity per symbol. What
it cannot hide is the *time structure*: information transfer requires
symbol cells, and symbol cells leave fingerprints in the signal's
autocorrelation —

- **periodicity**: on-off keying at a fixed symbol time produces
  autocorrelation peaks at multiples of the symbol period;
- **block structure**: any per-symbol modulation produces a correlation
  plateau exactly as wide as the symbol cell (samples within a cell are
  identical; across cells, independent).

Benign signals lack both: a constant-rate service has (near-)zero
variance; bursty I/O decorrelates within a millisecond or two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def autocorrelation(series: Sequence[float], max_lag: int) -> np.ndarray:
    """Normalized autocorrelation of a mean-removed signal.

    Returns ``r[0..max_lag]`` with ``r[0] == 1`` for any signal with
    positive variance; a zero-variance signal returns all zeros (no
    structure to correlate).
    """
    signal = np.asarray(series, dtype=float)
    n = len(signal)
    if n == 0:
        return np.zeros(max_lag + 1)
    signal = signal - signal.mean()
    variance = float(np.dot(signal, signal))
    if variance <= 1e-12:
        return np.zeros(max_lag + 1)
    max_lag = min(max_lag, n - 1)
    result = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        result[lag] = float(np.dot(signal[: n - lag], signal[lag:])) / variance
    return result


def periodicity_score(corr: np.ndarray, min_lag: int = 4) -> tuple[float, int]:
    """The strongest autocorrelation peak beyond ``min_lag`` and its lag."""
    if len(corr) <= min_lag + 1:
        return 0.0, 0
    tail = corr[min_lag:]
    best = int(np.argmax(tail))
    return float(tail[best]), best + min_lag


def correlation_width(corr: np.ndarray, threshold: float = 0.15) -> int:
    """The first lag where correlation falls below ``threshold``.

    For a per-symbol-modulated signal this approximates the symbol cell
    length in samples (the correlation plateau width).
    """
    for lag in range(1, len(corr)):
        if corr[lag] < threshold:
            return lag
    return len(corr)


@dataclass(frozen=True)
class CcHunterVerdict:
    """Outcome of one event-train analysis."""

    covert: bool
    reason: str
    periodicity: float
    period_lag: int
    block_width: int
    variance_ratio: float


class CcHunterDetector:
    """Event-train covert-channel detector.

    Flags a signal as covert when it both *carries energy* (variance
    relative to its mean above ``min_variance_ratio``) and exhibits
    symbol structure: either strong periodicity or a correlation
    plateau in the plausible symbol-cell band
    [``min_block``, ``max_block``] samples.
    """

    def __init__(
        self,
        min_variance_ratio: float = 0.05,
        periodicity_threshold: float = 0.35,
        min_block: int = 4,
        max_block: int = 40,
        max_lag: int = 120,
    ):
        self.min_variance_ratio = min_variance_ratio
        self.periodicity_threshold = periodicity_threshold
        self.min_block = min_block
        self.max_block = max_block
        self.max_lag = max_lag

    def analyze(self, series: Sequence[float]) -> CcHunterVerdict:
        """Analyze one regularly sampled contention-intensity signal."""
        signal = np.asarray(series, dtype=float)
        if len(signal) < 2 * self.min_block or float(signal.max(initial=0.0)) <= 0:
            return CcHunterVerdict(
                covert=False, reason="insufficient activity",
                periodicity=0.0, period_lag=0, block_width=0,
                variance_ratio=0.0,
            )
        mean = float(signal.mean())
        variance_ratio = float(signal.var()) / (mean * mean) if mean > 0 else 0.0
        if variance_ratio < self.min_variance_ratio:
            return CcHunterVerdict(
                covert=False,
                reason="steady contention (no modulation energy)",
                periodicity=0.0, period_lag=0, block_width=0,
                variance_ratio=variance_ratio,
            )
        corr = autocorrelation(signal, self.max_lag)
        score, lag = periodicity_score(corr, min_lag=self.min_block)
        width = correlation_width(corr)
        if score >= self.periodicity_threshold and lag <= self.max_block * 3:
            return CcHunterVerdict(
                covert=True,
                reason=f"periodic modulation (autocorrelation {score:.2f} "
                f"at lag {lag})",
                periodicity=score, period_lag=lag, block_width=width,
                variance_ratio=variance_ratio,
            )
        if self.min_block <= width <= self.max_block:
            return CcHunterVerdict(
                covert=True,
                reason=f"symbol-cell structure (correlation plateau of "
                f"{width} samples)",
                periodicity=score, period_lag=lag, block_width=width,
                variance_ratio=variance_ratio,
            )
        return CcHunterVerdict(
            covert=False, reason="no symbol structure detected",
            periodicity=score, period_lag=lag, block_width=width,
            variance_ratio=variance_ratio,
        )
