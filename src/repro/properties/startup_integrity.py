"""Startup-integrity interpretation (case study I, paper §4.2).

The Attestation Server holds pre-calculated good values for platform
configurations and VM images ("the correct pre-calculated hash values of
its executable files"). Interpretation is hash-chain appraisal: the
measured PCR value must replay from the measurement log, and the final
value must match a known-good reference.
"""

from __future__ import annotations

from typing import Any

from repro.common.identifiers import VmId
from repro.crypto.hashing import HashChain
from repro.monitors.monitor_module import (
    MEAS_PLATFORM_INTEGRITY,
    MEAS_VM_IMAGE_INTEGRITY,
)
from repro.properties.catalog import SecurityProperty
from repro.properties.ima import ImaAppraiser
from repro.properties.interpretation import PropertyInterpreter
from repro.properties.report import PropertyReport


class StartupIntegrityInterpreter(PropertyInterpreter):
    """Appraises platform and VM-image measured-boot evidence."""

    prop = SecurityProperty.STARTUP_INTEGRITY

    def __init__(self):
        self._good_platform_values: set[bytes] = set()
        self._good_image_values: dict[str, bytes] = {}
        self._image_for_vm: dict[VmId, str] = {}
        #: optional IMA-style per-component appraiser (paper §4.2.2's
        #: "trusted Appraiser system (like IMA)") for diagnostics
        self.ima: "ImaAppraiser | None" = None

    # -- reference management (Attestation Server database state) -------

    def add_good_platform(self, pcr_value: bytes) -> None:
        """Whitelist a pristine platform configuration value."""
        self._good_platform_values.add(pcr_value)

    def add_good_image(self, image_name: str, chain_value: bytes) -> None:
        """Whitelist a pristine VM image's measurement chain value."""
        self._good_image_values[image_name] = chain_value

    def expect_image(self, vid: VmId, image_name: str) -> None:
        """Record which image a VM was launched from."""
        self._image_for_vm[vid] = image_name

    # -- appraisal -------------------------------------------------------

    @staticmethod
    def _log_consistent(evidence: dict) -> bool:
        """Does the measurement log replay to the reported PCR value?"""
        return HashChain.replay(list(evidence["log"])) == evidence["pcr"]

    def interpret(self, vid: VmId, measurements: dict[str, Any]) -> PropertyReport:
        platform = measurements[MEAS_PLATFORM_INTEGRITY]
        image = measurements[MEAS_VM_IMAGE_INTEGRITY]

        platform_log_ok = self._log_consistent(platform)
        platform_known = platform["pcr"] in self._good_platform_values
        image_log_ok = self._log_consistent(image)

        image_name = self._image_for_vm.get(vid)
        expected_image = self._good_image_values.get(image_name or "")
        image_known = expected_image is not None and image["pcr"] == expected_image

        tampered_components: list[str] = []
        if self.ima is not None and platform.get("components"):
            tampered_components = self.ima.violations(
                [str(c) for c in platform["components"]], list(platform["log"])
            )

        healthy = platform_log_ok and platform_known and image_log_ok and image_known
        reasons = []
        if not platform_log_ok:
            reasons.append("platform measurement log inconsistent")
        if not platform_known:
            if tampered_components:
                reasons.append(
                    "platform components modified: "
                    + ", ".join(tampered_components)
                )
            else:
                reasons.append("platform configuration not a known-good value")
        if not image_log_ok:
            reasons.append("VM image measurement log inconsistent")
        if not image_known:
            reasons.append(
                f"VM image does not match pristine {image_name!r}"
                if image_name
                else "no image expectation recorded for this VM"
            )
        explanation = (
            "platform and VM image match pristine references"
            if healthy
            else "; ".join(reasons)
        )
        return PropertyReport(
            prop=self.prop,
            healthy=healthy,
            explanation=explanation,
            details={
                "platform_log_consistent": platform_log_ok,
                "platform_known_good": platform_known,
                "image_log_consistent": image_log_ok,
                "image_known_good": image_known,
                "expected_image": image_name or "",
                "tampered_components": tampered_components,
            },
        )
