"""Trend analysis over accumulated attestation history.

The periodic mode (§3.2.1) gives the Attestation Server a *time series*
per (VM, property), not just the latest verdict. This module turns that
history into operational judgement for the availability property:

- a **transient dip** (one bad round between good ones) usually means a
  noisy neighbour burst or a measurement artifact — worth logging, not
  worth migrating over;
- **sustained degradation** (a significant negative usage trend, or a
  run of consecutive bad rounds) is what should trigger the §5.2
  remediation machinery.

The statistical test is a least-squares fit of relative usage against
time (``scipy.stats.linregress``): degradation is "sustained" when the
slope is significantly negative (p < alpha) or the recent mean sits
below the floor for ``min_bad_run`` consecutive rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from scipy import stats


@dataclass(frozen=True)
class TrendVerdict:
    """Outcome of one trend analysis."""

    classification: str  # "healthy" | "transient_dip" | "sustained_degradation"
    slope_per_second: float
    p_value: float
    bad_run_length: int
    mean_usage: float


class AvailabilityTrendAnalyzer:
    """Classifies an availability time series."""

    def __init__(
        self,
        floor: float = 0.3,
        alpha: float = 0.05,
        min_bad_run: int = 3,
        min_points: int = 4,
    ):
        if not 0 < floor < 1:
            raise ValueError("floor must be in (0, 1)")
        if min_points < 3:
            raise ValueError("need at least three points to fit a trend")
        self.floor = floor
        self.alpha = alpha
        self.min_bad_run = min_bad_run
        self.min_points = min_points

    def analyze(
        self, times_ms: Sequence[float], usages: Sequence[float]
    ) -> TrendVerdict:
        """Classify a (time, relative-usage) series."""
        if len(times_ms) != len(usages):
            raise ValueError("times and usages must align")
        n = len(usages)
        mean_usage = sum(usages) / n if n else 0.0
        # trailing run of below-floor rounds
        bad_run = 0
        for usage in reversed(usages):
            if usage < self.floor:
                bad_run += 1
            else:
                break

        if n < self.min_points:
            classification = (
                "sustained_degradation"
                if bad_run >= self.min_bad_run
                else ("transient_dip" if bad_run else "healthy")
            )
            return TrendVerdict(
                classification=classification,
                slope_per_second=0.0,
                p_value=1.0,
                bad_run_length=bad_run,
                mean_usage=mean_usage,
            )

        seconds = [t / 1000.0 for t in times_ms]
        if len(set(seconds)) < 2 or len(set(usages)) < 2:
            slope, p_value = 0.0, 1.0
        else:
            fit = stats.linregress(seconds, usages)
            slope, p_value = float(fit.slope), float(fit.pvalue)

        sustained = bad_run >= self.min_bad_run or (
            slope < 0 and p_value < self.alpha and usages[-1] < self.floor
        )
        if sustained:
            classification = "sustained_degradation"
        elif bad_run > 0:
            classification = "transient_dip"
        else:
            classification = "healthy"
        return TrendVerdict(
            classification=classification,
            slope_per_second=slope,
            p_value=p_value,
            bad_run_length=bad_run,
            mean_usage=mean_usage,
        )
