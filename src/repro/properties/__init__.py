"""Security properties, their measurement mappings, and interpreters.

This package is the semantic-gap bridge at the heart of the paper: the
customer asks about a *property* of a VM; the cloud can only measure
*facts* about servers, hypervisors and schedulers. The
:class:`~repro.properties.catalog.PropertyCatalog` maps each property P
to the measurement list rM a server must produce, and one interpreter
per property turns returned measurements M into a health verdict:

========================  =======================================  ==========================
Property                  Measurements (rM)                        Interpreter
========================  =======================================  ==========================
STARTUP_INTEGRITY         platform PCR + log, VM image PCR + log   hash-chain appraisal
RUNTIME_INTEGRITY         VMI task list, kernel modules            whitelist/divergence check
COVERT_CHANNEL_FREEDOM    30-bin CPU-interval histogram            peak/cluster analysis
CPU_AVAILABILITY          CPU_measure over a window                relative-usage threshold
========================  =======================================  ==========================
"""

from repro.properties.availability import AvailabilityInterpreter
from repro.properties.catalog import PropertyCatalog, SecurityProperty
from repro.properties.cchunter import CcHunterDetector, CcHunterVerdict
from repro.properties.covert_channel import (
    CovertChannelInterpreter,
    RandomSourceSelector,
    kmeans_two_cluster,
    significant_peaks,
)
from repro.properties.ima import ImaAppraiser
from repro.properties.trends import AvailabilityTrendAnalyzer, TrendVerdict
from repro.properties.interpretation import InterpreterRegistry, PropertyInterpreter
from repro.properties.report import PropertyReport
from repro.properties.runtime_integrity import RuntimeIntegrityInterpreter
from repro.properties.startup_integrity import StartupIntegrityInterpreter

__all__ = [
    "AvailabilityInterpreter",
    "AvailabilityTrendAnalyzer",
    "CcHunterDetector",
    "CcHunterVerdict",
    "CovertChannelInterpreter",
    "ImaAppraiser",
    "RandomSourceSelector",
    "TrendVerdict",
    "InterpreterRegistry",
    "PropertyCatalog",
    "PropertyInterpreter",
    "PropertyReport",
    "RuntimeIntegrityInterpreter",
    "SecurityProperty",
    "StartupIntegrityInterpreter",
    "kmeans_two_cluster",
    "significant_peaks",
]
