"""CPU-availability interpretation (case study IV, paper §4.5.3).

"The Attestation Server retrieves the attested VM's virtual running
time and calculates the relative CPU usage as the ratio of a VM's
virtual running time to real time. If the relative CPU usage is very
small, then the Attestation Server interprets the VM's CPU availability
as compromised."

The SLA context matters: a VM that *chose* to idle is healthy at 0%
usage. When the measurement includes **steal time** (time the VM's
vCPUs spent runnable but denied the CPU — observable from the same
vCPU transitions the VMM Profile Tool already watches), the interpreter
is demand-aware: availability is compromised only when the VM was
*asking* and being denied — a high steal ratio together with usage
below the SLA floor. Without steal data (legacy measurements), it falls
back to the raw usage threshold, which assumes an always-runnable VM
(the configuration the paper's Fig. 7 experiments use).
"""

from __future__ import annotations

from typing import Any

from repro.common.identifiers import VmId
from repro.monitors.monitor_module import MEAS_CPU_USAGE
from repro.properties.catalog import SecurityProperty
from repro.properties.interpretation import PropertyInterpreter
from repro.properties.report import PropertyReport


class AvailabilityInterpreter(PropertyInterpreter):
    """Thresholds relative CPU usage against the SLA's entitled share."""

    prop = SecurityProperty.CPU_AVAILABILITY

    def __init__(
        self,
        default_entitled_share: float = 0.5,
        tolerance: float = 0.6,
        steal_threshold: float = 0.6,
    ):
        if not 0.0 < default_entitled_share <= 1.0:
            raise ValueError("entitled share must be in (0, 1]")
        if not 0.0 < tolerance <= 1.0:
            raise ValueError("tolerance must be in (0, 1]")
        if not 0.0 < steal_threshold < 1.0:
            raise ValueError("steal threshold must be in (0, 1)")
        self.default_entitled_share = default_entitled_share
        self.tolerance = tolerance
        #: fraction of demanded CPU that must be denied before the VM
        #: counts as starved (fair halving of a contended core gives
        #: exactly 0.5, so the threshold sits above it)
        self.steal_threshold = steal_threshold
        self._entitled: dict[VmId, float] = {}

    def set_entitled_share(self, vid: VmId, share: float) -> None:
        """Record a VM's SLA-contracted CPU share."""
        if not 0.0 < share <= 1.0:
            raise ValueError("entitled share must be in (0, 1]")
        self._entitled[vid] = share

    def interpret(self, vid: VmId, measurements: dict[str, Any]) -> PropertyReport:
        usage = measurements[MEAS_CPU_USAGE]
        wall = float(usage["wall_ms"])
        cpu = float(usage["cpu_ms"])
        wait = float(usage["wait_ms"]) if "wait_ms" in usage else None
        relative = cpu / wall if wall > 0 else 0.0
        entitled = self._entitled.get(vid, self.default_entitled_share)
        floor = entitled * self.tolerance

        if wait is not None:
            demanded = cpu + wait
            steal = wait / demanded if demanded > 0 else 0.0
            below_floor = relative < floor
            starved = below_floor and steal > self.steal_threshold
            healthy = not starved
            if healthy and below_floor:
                explanation = (
                    f"relative CPU usage {relative:.1%} is below the floor "
                    f"but the VM demanded little CPU (steal {steal:.1%}): "
                    "idle by choice, not starved"
                )
            elif healthy:
                explanation = (
                    f"relative CPU usage {relative:.1%} meets the SLA floor "
                    f"({floor:.1%} of wall time)"
                )
            else:
                explanation = (
                    f"relative CPU usage {relative:.1%} below the SLA floor "
                    f"({floor:.1%}) with {steal:.1%} of demanded time denied: "
                    "availability compromised"
                )
        else:
            # legacy measurement without steal data: raw usage threshold
            steal = 0.0
            healthy = relative >= floor
            explanation = (
                f"relative CPU usage {relative:.1%} meets the SLA floor "
                f"({floor:.1%} of wall time)"
                if healthy
                else f"relative CPU usage {relative:.1%} below the SLA floor "
                f"({floor:.1%}): availability compromised"
            )
        return PropertyReport(
            prop=self.prop,
            healthy=healthy,
            explanation=explanation,
            details={
                "relative_usage": relative,
                "entitled_share": entitled,
                "floor": floor,
                "cpu_ms": cpu,
                "wall_ms": wall,
                "wait_ms": wait if wait is not None else 0.0,
                "steal_ratio": steal,
            },
        )
