"""The assembled CloudMonatt system.

One object owns the whole simulated deployment: the shared event engine,
the network (with its attacker interposition point), the privacy CA, the
Attestation Server, the Cloud Controller, a fleet of cloud servers, and
the trusted-setup wiring between them (pCA enrollment of Trust Module
identity keys, capability registration in both databases, pristine
platform/image references in the interpreter).

Everything stochastic derives from one seed, so experiments replay
identically.
"""

from __future__ import annotations

from typing import Optional

from repro.attest_server.privacy_ca import PrivacyCA
from repro.attest_server.server import AttestationServer
from repro.cloud.customer import Customer
from repro.common.errors import StateError
from repro.common.identifiers import IdFactory, ServerId
from repro.common.rng import DeterministicRng
from repro.controller.api import CloudController
from repro.controller.topology import DataCenterTopology
from repro.crypto.certificates import CertificateAuthority
from repro.crypto.drbg import HmacDrbg
from repro.lifecycle.flavors import default_flavors, default_images
from repro.lifecycle.timing import CostModel
from repro.monitors.integrity_unit import SoftwareInventory
from repro.network.faults import FaultInjector, FaultSpec
from repro.network.network import Network
from repro.resilience import DEFAULT_LEG_TIMEOUTS_MS, RetryPolicy
from repro.server.node import CloudServer
from repro.sim.engine import Engine
from repro.telemetry import Observatory, Telemetry

DEFAULT_KEY_BITS = 512
"""Default modulus size for the simulation. Small keys keep large
experiment sweeps fast; all protocol logic is key-size independent and
the test suite exercises 1024-bit keys too."""


class CloudMonatt:
    """A complete simulated CloudMonatt cloud."""

    def __init__(
        self,
        num_servers: int = 3,
        num_pcpus: int = 4,
        seed: int = 42,
        key_bits: int = DEFAULT_KEY_BITS,
        network_latency_ms: float = 55.0,
        insecure_servers: int = 0,
        num_attestation_servers: int = 1,
        rack_size: int = 4,
        telemetry_enabled: bool = False,
        telemetry: Optional[Telemetry] = None,
        flight_recorder_enabled: bool = True,
        observatory_enabled: Optional[bool] = None,
        slo_targets: Optional[dict[str, float]] = None,
        alert_streak_threshold: int = 3,
        retry_policy: Optional[RetryPolicy] = None,
        leg_timeouts: Optional[dict[str, float]] = None,
        fault_plan: Optional[dict[str, FaultSpec]] = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_after_ms: float = 60_000.0,
        shard_name: Optional[str] = None,
    ):
        if num_servers < 1:
            raise StateError("a cloud needs at least one server")
        #: which control-plane shard this deployment is, or ``None`` for
        #: the classic standalone cloud. Set by the shard plane
        #: (repro.shard): labels the telemetry hub (shard tags on events
        #: and flight records), the policy scheduler, and every AS.
        self.shard_name = shard_name
        self.engine = Engine()
        self.rng = DeterministicRng(seed)
        self._drbg = HmacDrbg(seed, "cloudmonatt")
        self.ids = IdFactory()
        self.key_bits = key_bits
        self.num_pcpus = num_pcpus
        #: one shared observability hub; every entity reports into it, and
        #: all of its timestamps come from the simulation clock (so two
        #: same-seed runs export byte-identical snapshots)
        if telemetry is None:
            telemetry = Telemetry(
                clock=lambda: self.engine.now,
                enabled=telemetry_enabled,
                seed=seed,
                round_tracking=flight_recorder_enabled,
            )
        self.telemetry = telemetry
        self.telemetry.attach_engine(self.engine)
        if shard_name is not None:
            self.telemetry.set_shard(shard_name)
        #: consumer layer over the hub (alert engine, fleet scoreboard,
        #: trace store); on by default whenever telemetry is enabled,
        #: and attached before any entity exists so setup spans land in
        #: the trace store too
        if observatory_enabled is None:
            observatory_enabled = self.telemetry.enabled
        self.observatory: Optional[Observatory] = None
        if observatory_enabled and self.telemetry.observatory is None:
            self.observatory = Observatory(
                clock=lambda: self.engine.now,
                slo_targets=slo_targets,
                streak_threshold=alert_streak_threshold,
            )
            self.telemetry.attach_observatory(self.observatory)
        else:
            self.observatory = self.telemetry.observatory

        #: the retry policy shared by every protocol entity (customer,
        #: attest service, appraiser, periodic push)
        self.retry_policy = retry_policy
        self.network = Network(
            self.engine,
            self.rng.child("network"),
            latency_ms=network_latency_ms,
            leg_timeouts={**DEFAULT_LEG_TIMEOUTS_MS, **(leg_timeouts or {})},
        )
        if fault_plan:
            self.network.install_fault_injector(
                FaultInjector(self.rng.child("faults"), fault_plan)
            )
        self.cost = CostModel(engine=self.engine, rng=self.rng.child("cost"))
        self.ca = CertificateAuthority(
            "pCA", self._drbg.fork("ca"), key_bits=key_bits
        )
        self.privacy_ca = PrivacyCA(
            self.network, self._drbg.fork("pca"), self.ca, key_bits=key_bits
        )
        if num_attestation_servers < 1:
            raise StateError("need at least one attestation server")
        # one Attestation Server per cluster of cloud servers (§3.2.3);
        # servers are assigned round-robin at add_server time
        self.attestation_servers: list[AttestationServer] = [
            AttestationServer(
                self.network,
                self._drbg.fork(f"as-{index}"),
                self.ca,
                self.cost,
                name=(
                    "attestation-server"
                    if num_attestation_servers == 1
                    else f"attestation-server-{index + 1}"
                ),
                key_bits=key_bits,
                telemetry=self.telemetry,
                retry_policy=retry_policy,
                shard=shard_name or "",
            )
            for index in range(num_attestation_servers)
        ]
        self.attestation_server = self.attestation_servers[0]
        self.flavors = default_flavors()
        self.images = default_images()
        self.controller = CloudController(
            self.network,
            self.engine,
            self._drbg.fork("controller"),
            self.rng.child("controller"),
            self.ca,
            self.cost,
            flavors=self.flavors,
            images=self.images,
            id_factory=self.ids,
            key_bits=key_bits,
            telemetry=self.telemetry,
            retry_policy=retry_policy,
            breaker_failure_threshold=breaker_failure_threshold,
            breaker_reset_after_ms=breaker_reset_after_ms,
            shard_name=shard_name,
        )
        self.topology = DataCenterTopology(rack_size=rack_size)
        self.controller.response.topology = self.topology
        if self.observatory is not None:
            # alert-driven remediation is wired but dormant: enable it
            # with cloud.observatory.alerts.auto_respond = True (or
            # bind_responder(..., auto_respond=True)) so it never races
            # the controller's per-attestation auto-response silently
            self.observatory.bind_responder(self.controller.response)
        for attestation_server in self.attestation_servers:
            self.controller.attest_service.set_attestation_server_key(
                attestation_server.endpoint.public_key,
                name=attestation_server.name,
            )
            # trusted references: every AS knows every pristine image
            for image in self.images.values():
                attestation_server.interpreter.trust_image(image)

        self.servers: dict[ServerId, CloudServer] = {}
        self.customers: dict[str, Customer] = {}
        for index in range(num_servers):
            self.add_server(secure=index >= insecure_servers)

    # ------------------------------------------------------------------
    # fleet management
    # ------------------------------------------------------------------

    def add_server(
        self,
        secure: bool = True,
        num_pcpus: Optional[int] = None,
        memory_mb: int = 32768,
        platform_inventory: Optional[SoftwareInventory] = None,
        trust_platform: bool = True,
        intercepting_vmi_scan_ms: float = 0.0,
    ) -> CloudServer:
        """Deploy a cloud server and perform its trusted setup.

        ``platform_inventory`` lets experiments deploy a *tampered*
        platform; ``trust_platform=False`` keeps a (pristine-looking)
        platform out of the attestation server's good list — both make
        startup attestation fail, exercising the launch rejection path.
        """
        server_id = self.ids.server_id()
        # cluster assignment: round-robin over the attestation servers
        cluster_as = self.attestation_servers[
            len(self.servers) % len(self.attestation_servers)
        ]
        server = CloudServer(
            server_id=server_id,
            network=self.network,
            engine=self.engine,
            drbg=self._drbg.fork(f"server-{server_id}"),
            rng=self.rng.child(f"server-{server_id}"),
            ca=self.ca,
            cost_model=self.cost,
            num_pcpus=num_pcpus or self.num_pcpus,
            memory_mb=memory_mb,
            platform_inventory=platform_inventory,
            secure=secure,
            key_bits=self.key_bits,
            intercepting_vmi_scan_ms=intercepting_vmi_scan_ms,
            telemetry=self.telemetry,
        )
        self.servers[server_id] = server

        # trusted setup: enroll the Trust Module with the pCA and record
        # capabilities in both databases
        if secure and server.trust_module is not None:
            self.privacy_ca.enroll_server(
                str(server_id), server.trust_module.identity_public
            )
            if trust_platform:
                for attestation_server in self.attestation_servers:
                    attestation_server.interpreter.trust_platform(
                        server.platform_inventory
                    )
        from repro.controller.database import ServerInfo

        self.controller.database.register_server(
            ServerInfo(
                server_id=server_id,
                num_pcpus=server.num_pcpus,
                memory_mb=memory_mb,
                capabilities=set(server.supported_measurements()),
                secure=secure,
                attestation_server=cluster_as.name,
            )
        )
        cluster_as.database.register_server(
            server_id, server.supported_measurements()
        )
        self.topology.add_server(server_id)
        return server

    def register_customer(self, name: str) -> Customer:
        """Create a customer with its own endpoint and verification keys."""
        if name in self.customers:
            raise StateError(f"customer {name!r} already registered")
        customer = Customer(
            name=name,
            network=self.network,
            drbg=self._drbg.fork(f"customer-{name}"),
            ca=self.ca,
            controller_key=self.controller.endpoint.public_key,
            key_bits=self.key_bits,
            telemetry=self.telemetry,
            retry_policy=self.retry_policy,
        )
        self.customers[name] = customer
        return customer

    # ------------------------------------------------------------------
    # conveniences for experiments
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in ms."""
        return self.engine.now

    def run_for(self, duration_ms: float) -> None:
        """Advance the whole cloud by ``duration_ms``."""
        self.engine.run_until(self.engine.now + duration_ms)

    def prewarm_for_fleet(self, expected_rounds: int) -> int:
        """Pre-generate attestation session keys for an expected burst.

        Sizes each secure server's KeyPool (PR 3 fast path) to the
        pipeline's expected session count so batch drains never stall on
        Miller-Rabin keygen mid-burst. Returns the total number of keys
        pre-generated (0 when the key-pool fast path is off). If the
        estimate is too low, the pool's ``crypto.keypool.exhausted``
        counter and the observatory's KeyPoolExhausted alert surface the
        fallback to on-demand keygen.
        """
        total = 0
        for server in self.servers.values():
            if server.secure and server.trust_module is not None:
                total += server.trust_module.prewarm_sessions(expected_rounds)
        return total

    def server_of(self, vid) -> CloudServer:
        """The cloud server currently hosting a VM."""
        record = self.controller.database.vm(vid)
        if record.server is None:
            raise StateError(f"VM {vid} is not placed")
        return self.servers[record.server]
