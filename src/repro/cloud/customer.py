"""The Cloud Customer: initiator and end-verifier (paper §3.2.1).

The customer talks only to the Cloud Controller, over a secure channel,
and independently verifies every attestation report it receives: the
controller's signature ([...]SKc), the quote Q1 = H(Vid‖P‖R‖N1), and
the freshness nonce N1 it minted for the request. A forged or replayed
report raises rather than being silently accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import (
    CloudMonattError,
    ProtocolError,
    ReplayError,
    SignatureError,
)
from repro.common.identifiers import VmId
from repro.crypto.certificates import CertificateAuthority
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import RsaPublicKey
from repro.crypto.nonces import NonceGenerator
from repro.crypto.signatures import verify
from repro.network.network import Network
from repro.network.secure_channel import SecureEndpoint
from repro.properties.catalog import SecurityProperty
from repro.properties.report import PropertyReport
from repro.protocol import messages as msg
from repro.protocol.quotes import merkle_root, report_quote_q1
from repro.resilience import RetryExecutor, RetryPolicy, is_transient
from repro.telemetry import KEY_ROUND, KEY_TRACE, NULL_TELEMETRY, SPAN_Q1, Telemetry
from repro.telemetry.observatory.flightrecorder import outcome_verdict


@dataclass(frozen=True)
class LaunchResult:
    """What the customer learns from a launch request."""

    vid: VmId
    accepted: bool
    stage_times_ms: dict[str, float]
    report: Optional[PropertyReport]

    @property
    def total_ms(self) -> float:
        """Total launch latency."""
        return sum(self.stage_times_ms.values())


@dataclass(frozen=True)
class FleetAttestation:
    """A verified fleet batch plus the signed Merkle root binding it.

    ``batch_root`` is the controller-signed root over the per-entry Q1
    leaves — the per-shard evidence the sharded control plane
    (:mod:`repro.shard`) aggregates hierarchically into a cross-shard
    fleet root. ``None`` only on the per-round fallback path, where no
    shared batch (and hence no root) existed.
    """

    results: list["VerifiedAttestation"]
    batch_root: Optional[bytes]


@dataclass(frozen=True)
class VerifiedAttestation:
    """An attestation report that passed the customer's own checks.

    ``degraded=True`` marks a *locally synthesized* report: the
    controller stayed unreachable through the whole retry budget, so
    there is nothing signed to verify — the report only says the VM's
    health is currently unknown (``UNREACHABLE``), never that it is
    healthy. See ``docs/FAILURE_MODEL.md``.
    """

    report: PropertyReport
    attest_ms: float
    response: Optional[dict] = None
    #: AS-issued property certificate (present a copy to third parties;
    #: verify with the AS public key and the revocation service)
    certificate: Optional[dict] = None
    #: True when the report was synthesized locally after retry
    #: exhaustion (not signed by the controller)
    degraded: bool = False


@dataclass(frozen=True)
class PeriodicResult:
    """One verified push from a periodic attestation subscription."""

    seq: int
    report: PropertyReport
    response: Optional[dict]
    received_at_ms: float


@dataclass
class _SubscriptionState:
    nonce: bytes
    last_seq: int = 0
    results: list[PeriodicResult] = field(default_factory=list)


class Customer:
    """A cloud customer with its own endpoint and verification state."""

    def __init__(
        self,
        name: str,
        network: Network,
        drbg: HmacDrbg,
        ca: CertificateAuthority,
        controller_key: RsaPublicKey,
        key_bits: int = 1024,
        controller_name: str = "controller",
        telemetry: Optional[Telemetry] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.name = name
        self.telemetry = telemetry or NULL_TELEMETRY
        self.endpoint = SecureEndpoint(
            name,
            network,
            drbg.fork("endpoint"),
            ca,
            key_bits=key_bits,
            telemetry=self.telemetry,
        )
        self.endpoint.handler = self._handle_push
        self._controller = controller_name
        self._controller_key = controller_key
        self._nonces = NonceGenerator(drbg.fork("n1"))
        self._network = network
        self._subscriptions: dict[tuple[VmId, str], _SubscriptionState] = {}
        # NOTE: appended after the endpoint/n1 forks so existing DRBG
        # streams stay byte-identical across library versions
        self._retry = RetryExecutor(
            engine=network.engine,
            drbg=drbg.fork("retry"),
            policy=retry_policy,
            telemetry=self.telemetry,
            site=f"customer.{name}",
        )

    # ------------------------------------------------------------------
    # VM lifecycle
    # ------------------------------------------------------------------

    def launch_vm(
        self,
        flavor_name: str,
        image_name: str,
        properties: Optional[list[SecurityProperty]] = None,
        workload: Optional[dict] = None,
        pins: Optional[list[int]] = None,
        entitled_share: Optional[float] = None,
        force_server: Optional[str] = None,
        dedicated: bool = False,
        vid: Optional[VmId] = None,
    ) -> LaunchResult:
        """Request a VM with the given resources and security properties.

        ``dedicated=True`` requests anti-co-location: the VM never
        shares a server with other customers (a defense against the
        co-residence attacks the paper cites). ``force_server`` is an
        operator placement hint used by the experiment harnesses to
        co-locate VMs deliberately. ``vid`` pre-assigns the VM's
        identifier — the sharded control plane mints globally unique
        vids before consistent-hash placement decides which controller
        runs the launch; the controller rejects duplicates.
        """
        body = {
            msg.KEY_TYPE: msg.MSG_LAUNCH,
            "flavor_name": flavor_name,
            "image_name": image_name,
            "properties": [p.value for p in (properties or [])],
            "workload": workload or {"name": "idle"},
            "pins": pins,
            "entitled_share": entitled_share,
            "force_server": force_server,
            "dedicated": dedicated,
        }
        if vid is not None:
            body[msg.KEY_VID] = str(vid)
        response = self.endpoint.call(self._controller, body)
        report = (
            PropertyReport.from_dict(response[msg.KEY_REPORT])
            if response.get(msg.KEY_REPORT)
            else None
        )
        return LaunchResult(
            vid=VmId(response[msg.KEY_VID]),
            accepted=response[msg.KEY_STATUS] == "active",
            stage_times_ms=dict(response["stage_times_ms"]),
            report=report,
        )

    def terminate_vm(self, vid: VmId) -> None:
        """Shut a VM down."""
        self.endpoint.call(
            self._controller, {msg.KEY_TYPE: msg.MSG_TERMINATE, msg.KEY_VID: str(vid)}
        )

    def resume_vm(self, vid: VmId) -> None:
        """Resume a VM the controller suspended."""
        self.endpoint.call(
            self._controller, {msg.KEY_TYPE: msg.MSG_RESUME, msg.KEY_VID: str(vid)}
        )

    # ------------------------------------------------------------------
    # Table 1: attestation requests
    # ------------------------------------------------------------------

    def attest(
        self,
        vid: VmId,
        prop: SecurityProperty,
        window_ms: Optional[float] = None,
        at_startup: bool = False,
        round_id: Optional[str] = None,
    ) -> VerifiedAttestation:
        """One-time attestation (``runtime_attest_current`` /
        ``startup_attest_current``), with full report verification.

        Transient faults (drops, timeouts, tampered records) are
        retried with fresh nonces; if the controller stays unreachable
        through the whole retry budget the customer receives a locally
        synthesized *degraded* report (``UNREACHABLE``, never healthy)
        instead of an exception.

        ``round_id`` adopts a flight-recorder round minted upstream
        (the per-entry fallback of :meth:`attest_fleet`); when ``None``
        this call mints its own round and publishes its ``round_start``.
        """
        owned = round_id is None
        rid = self.telemetry.mint_round_id() if owned else round_id
        if owned and rid is not None:
            self.telemetry.observe_event(
                "round_start",
                round_id=rid,
                vid=str(vid),
                property=prop.value,
                source="on-demand",
                customer=self.name,
            )

        def attempt() -> tuple[bytes, dict]:
            # a retry is a fresh protocol round: new nonce N1, so the
            # controller's replay cache never rejects it
            nonce = self._nonces.fresh()
            request = {
                msg.KEY_TYPE: (
                    "startup_attest_current"
                    if at_startup
                    else "runtime_attest_current"
                ),
                msg.KEY_VID: str(vid),
                msg.KEY_PROPERTY: prop.value,
                msg.KEY_NONCE: bytes(nonce),
            }
            if window_ms is not None:
                request[msg.KEY_WINDOW] = float(window_ms)
            context = self.telemetry.context()
            if context is not None:
                request[KEY_TRACE] = context
            if rid is not None:
                request[KEY_ROUND] = rid
            return bytes(nonce), self.endpoint.call(self._controller, request)

        with self.telemetry.round_scope(rid):
            with self.telemetry.span(
                SPAN_Q1, customer=self.name, vid=str(vid), property=prop.value
            ):
                try:
                    nonce, response = self._retry.run(attempt)
                except CloudMonattError as exc:
                    if not is_transient(exc):
                        raise
                    result = self._degraded_attestation(vid, prop, exc)
                else:
                    report = self._verify_report(vid, prop, nonce, response)
                    result = VerifiedAttestation(
                        report=report,
                        attest_ms=float(response.get("attest_ms", 0.0)),
                        response=response.get("response"),
                        certificate=response.get("certificate"),
                    )
        if rid is not None:
            verdict, degraded = outcome_verdict(result.report, result.degraded)
            self.telemetry.observe_event(
                "round_end",
                round_id=rid,
                vid=str(vid),
                property=prop.value,
                verdict=verdict,
                degraded=degraded,
            )
        return result

    def attest_fleet(
        self,
        requests: list[tuple[VmId, SecurityProperty]],
        window_ms: Optional[float] = None,
        with_root: bool = False,
    ) -> "list[VerifiedAttestation] | FleetAttestation":
        """Attest many VMs in one wire round (``runtime_attest_batch``).

        Each logical round keeps its own fresh N1 and its own verified
        Q1 leaf; one controller signature binds the Merkle root over
        the leaves. Results align with the input order. A transient
        failure of the shared request falls back to per-round
        :meth:`attest` — retries target the logical round, not the
        batch — while a response failing its crypto checks raises.

        ``with_root=True`` returns a :class:`FleetAttestation` carrying
        the verified batch root alongside the results, for callers (the
        shard coordinator) that aggregate roots across controllers.
        """
        if not requests:
            return FleetAttestation([], None) if with_root else []
        total = len(requests)
        order = sorted(
            range(total),
            key=lambda i: (str(requests[i][0]), requests[i][1].value),
        )
        nonce_to_index: dict[bytes, int] = {}
        entries = []
        rids: list[Optional[str]] = [None] * total
        for index in order:
            vid, prop = requests[index]
            nonce = bytes(self._nonces.fresh())
            nonce_to_index[nonce] = index
            # each logical round in the batch is its own flight-recorder
            # round: mint here (the round starts at the customer) and
            # carry the id inside the wire entry so the controller's
            # pipeline adopts it instead of minting a duplicate
            rid = self.telemetry.mint_round_id()
            rids[index] = rid
            if rid is not None:
                self.telemetry.observe_event(
                    "round_start",
                    round_id=rid,
                    vid=str(vid),
                    property=prop.value,
                    source="fleet",
                    customer=self.name,
                )
            entry = {
                msg.KEY_VID: str(vid),
                msg.KEY_PROPERTY: prop.value,
                msg.KEY_NONCE: nonce,
            }
            if rid is not None:
                entry[KEY_ROUND] = rid
            entries.append(entry)
        request = {
            msg.KEY_TYPE: msg.MSG_ATTEST_FLEET,
            msg.KEY_ENTRIES: entries,
        }
        if window_ms is not None:
            request[msg.KEY_WINDOW] = float(window_ms)
        context = self.telemetry.context()
        if context is not None:
            request[KEY_TRACE] = context
        span_attrs: dict = {
            "customer": self.name, "vid": f"batch:{total}", "property": "*",
        }
        batch_rids = [rids[i] for i in order if rids[i] is not None]
        if batch_rids:
            # the shared Q1 leg serves every round in the batch
            span_attrs["round_ids"] = batch_rids
        with self.telemetry.span(SPAN_Q1, **span_attrs):
            try:
                response = self.endpoint.call(self._controller, request)
            except CloudMonattError as exc:
                if not is_transient(exc):
                    raise
                self.telemetry.counter("pipeline.batch.fallbacks").inc(
                    site=f"customer.{self.name}"
                )
                fallback = [
                    self.attest(vid, prop, window_ms=window_ms,
                                round_id=rids[index])
                    for index, (vid, prop) in enumerate(requests)
                ]
                # no shared batch survived, so there is no root to bind
                return FleetAttestation(fallback, None) if with_root else fallback
            msg.require_fields(
                response, msg.KEY_ENTRIES, msg.KEY_BATCH_ROOT, msg.KEY_SIGNATURE
            )
            out_entries = list(response[msg.KEY_ENTRIES])
            if len(out_entries) != total:
                raise ProtocolError("fleet response entry count mismatch")
            batch_root = bytes(response[msg.KEY_BATCH_ROOT])
            verify(
                self._controller_key,
                {msg.KEY_ENTRIES: out_entries, msg.KEY_BATCH_ROOT: batch_root},
                bytes(response[msg.KEY_SIGNATURE]),
            )
            leaves: list[bytes] = []
            results: list[Optional[VerifiedAttestation]] = [None] * total
            seen: set[int] = set()
            for entry in out_entries:
                msg.require_fields(
                    entry,
                    msg.KEY_VID,
                    msg.KEY_PROPERTY,
                    msg.KEY_REPORT,
                    msg.KEY_NONCE,
                    msg.KEY_QUOTE,
                )
                nonce = bytes(entry[msg.KEY_NONCE])
                index = nonce_to_index.get(nonce)
                if index is None or index in seen:
                    raise ReplayError("controller echoed a stale nonce N1")
                seen.add(index)
                vid, prop = requests[index]
                if (
                    entry[msg.KEY_VID] != str(vid)
                    or entry[msg.KEY_PROPERTY] != prop.value
                ):
                    raise ProtocolError("fleet entry names a different VM/property")
                expected = report_quote_q1(
                    str(vid), prop.value, entry[msg.KEY_REPORT], nonce,
                    telemetry=self.telemetry,
                )
                if bytes(entry[msg.KEY_QUOTE]) != expected:
                    raise ProtocolError("quote Q1 does not bind the report")
                leaves.append(expected)
                results[index] = VerifiedAttestation(
                    report=PropertyReport.from_dict(entry[msg.KEY_REPORT]),
                    attest_ms=float(entry.get("attest_ms", 0.0)),
                    response=entry.get("response"),
                    certificate=None,
                )
            if merkle_root(leaves, telemetry=self.telemetry) != batch_root:
                raise SignatureError("batch root does not bind the per-entry quotes")
        for index, (vid, prop) in enumerate(requests):
            rid = rids[index]
            result = results[index]
            if rid is None or result is None:
                continue
            verdict, degraded = outcome_verdict(result.report, result.degraded)
            self.telemetry.observe_event(
                "round_end",
                round_id=rid,
                vid=str(vid),
                property=prop.value,
                verdict=verdict,
                degraded=degraded,
            )
        final = [result for result in results if result is not None]
        return FleetAttestation(final, batch_root) if with_root else final

    def _degraded_attestation(
        self, vid: VmId, prop: SecurityProperty, exc: CloudMonattError
    ) -> VerifiedAttestation:
        """Synthesize the degraded (UNREACHABLE) report locally.

        The report is *not* a controller-signed verdict: it asserts
        only that the VM's health could not be observed — a deliberate
        fail-closed stance (never a forged "healthy").
        """
        self.telemetry.counter("resilience.degraded_reports").inc(
            site=f"customer.{self.name}"
        )
        self.telemetry.observe_event(
            "degraded_attestation",
            customer=self.name,
            vid=str(vid),
            property=prop.value,
            error=type(exc).__name__,
            detail=str(exc),
        )
        report = PropertyReport(
            prop=prop,
            healthy=False,
            explanation=(
                f"attestation abandoned after retry exhaustion: {exc}"
            ),
            details={"verdict": "UNREACHABLE", "error": type(exc).__name__},
        )
        return VerifiedAttestation(report=report, attest_ms=0.0, degraded=True)

    def collect_raw_measurements(
        self, vid: VmId, prop: SecurityProperty, window_ms: Optional[float] = None
    ) -> dict:
        """Pass-through mode (§4.1): the validated raw measurements M for
        a property, leaving interpretation to the customer.

        Transient faults retry with fresh nonces; on exhaustion the
        last error propagates (there is no meaningful degraded form of
        raw measurements)."""

        def attempt() -> tuple[bytes, dict]:
            fresh = self._nonces.fresh()
            request = {
                msg.KEY_TYPE: "runtime_collect_raw",
                msg.KEY_VID: str(vid),
                msg.KEY_PROPERTY: prop.value,
                msg.KEY_NONCE: bytes(fresh),
            }
            if window_ms is not None:
                request[msg.KEY_WINDOW] = float(window_ms)
            return bytes(fresh), self.endpoint.call(self._controller, request)

        nonce, response = self._retry.run(attempt)
        msg.require_fields(
            response, msg.KEY_VID, msg.KEY_PROPERTY, msg.KEY_MEASUREMENTS,
            msg.KEY_NONCE, msg.KEY_QUOTE, msg.KEY_SIGNATURE,
        )
        if bytes(response[msg.KEY_NONCE]) != bytes(nonce):
            raise ReplayError("controller echoed a stale nonce N1")
        signed = {
            key: response[key]
            for key in (msg.KEY_VID, msg.KEY_PROPERTY, msg.KEY_MEASUREMENTS,
                        msg.KEY_NONCE, msg.KEY_QUOTE)
        }
        verify(self._controller_key, signed, bytes(response[msg.KEY_SIGNATURE]))
        expected = report_quote_q1(
            str(vid), prop.value, response[msg.KEY_MEASUREMENTS], bytes(nonce),
            telemetry=self.telemetry,
        )
        if bytes(response[msg.KEY_QUOTE]) != expected:
            raise ProtocolError("quote does not bind the raw measurements")
        return response[msg.KEY_MEASUREMENTS]

    def start_periodic_attestation(
        self,
        vid: VmId,
        prop: SecurityProperty,
        frequency_ms: Optional[float] = None,
        random_range_ms: Optional[tuple[float, float]] = None,
    ) -> None:
        """``runtime_attest_periodic``: fixed or random-interval mode."""
        nonce = self._nonces.fresh()
        request = {
            msg.KEY_TYPE: "runtime_attest_periodic",
            msg.KEY_VID: str(vid),
            msg.KEY_PROPERTY: prop.value,
            msg.KEY_NONCE: bytes(nonce),
        }
        if frequency_ms is not None:
            request[msg.KEY_FREQ] = float(frequency_ms)
        if random_range_ms is not None:
            request["random_range_ms"] = [float(random_range_ms[0]),
                                          float(random_range_ms[1])]
        self.endpoint.call(self._controller, request)
        self._subscriptions[(vid, prop.value)] = _SubscriptionState(nonce=bytes(nonce))

    def stop_periodic_attestation(self, vid: VmId, prop: SecurityProperty) -> None:
        """``stop_attest_periodic``."""
        self.endpoint.call(
            self._controller,
            {
                msg.KEY_TYPE: "stop_attest_periodic",
                msg.KEY_VID: str(vid),
                msg.KEY_PROPERTY: prop.value,
                msg.KEY_NONCE: bytes(self._nonces.fresh()),
            },
        )

    def periodic_results(
        self, vid: VmId, prop: SecurityProperty
    ) -> list[PeriodicResult]:
        """Verified results received so far for one subscription."""
        state = self._subscriptions.get((vid, prop.value))
        return list(state.results) if state else []

    # ------------------------------------------------------------------
    # declarative monitoring policies
    # ------------------------------------------------------------------

    def register_policy(self, policy) -> dict:
        """Register (or version-migrate) a monitoring policy.

        ``policy`` is a :class:`~repro.policy.model.MonitoringPolicy`
        or its plain-dict document form. Validation runs locally first
        so a malformed document fails fast without a round trip; the
        controller re-validates against its property catalog and checks
        that every entity belongs to this customer.
        """
        from repro.policy.model import MonitoringPolicy

        if not isinstance(policy, MonitoringPolicy):
            policy = MonitoringPolicy.from_dict(policy)
        policy.validate()
        return self.endpoint.call(
            self._controller,
            {msg.KEY_TYPE: "register_policy", "policy": policy.to_dict()},
        )

    def policy_status(self) -> dict:
        """This customer's policies, schedule entries and alarm timeline."""
        return self.endpoint.call(
            self._controller, {msg.KEY_TYPE: "policy_status"}
        )

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------

    def _verify_report(
        self, vid: VmId, prop: SecurityProperty, nonce: bytes, response: dict
    ) -> PropertyReport:
        msg.require_fields(
            response,
            msg.KEY_VID,
            msg.KEY_PROPERTY,
            msg.KEY_REPORT,
            msg.KEY_NONCE,
            msg.KEY_QUOTE,
            msg.KEY_SIGNATURE,
        )
        if bytes(response[msg.KEY_NONCE]) != nonce:
            raise ReplayError("controller echoed a stale nonce N1")
        if response[msg.KEY_VID] != str(vid) or response[msg.KEY_PROPERTY] != prop.value:
            raise ProtocolError("report names a different VM or property")
        signed = {
            key: response[key]
            for key in (
                msg.KEY_VID,
                msg.KEY_PROPERTY,
                msg.KEY_REPORT,
                msg.KEY_NONCE,
                msg.KEY_QUOTE,
            )
        }
        verify(self._controller_key, signed, bytes(response[msg.KEY_SIGNATURE]))
        expected = report_quote_q1(
            str(vid), prop.value, response[msg.KEY_REPORT], nonce,
            telemetry=self.telemetry,
        )
        if bytes(response[msg.KEY_QUOTE]) != expected:
            raise ProtocolError("quote Q1 does not bind the report")
        return PropertyReport.from_dict(response[msg.KEY_REPORT])

    def _handle_push(self, peer: str, body: dict) -> dict:
        """Receive a periodic attestation push from the controller."""
        if body.get(msg.KEY_TYPE) != msg.MSG_PERIODIC_RESULT:
            raise ProtocolError(f"customer: unexpected push {body.get(msg.KEY_TYPE)!r}")
        key = (VmId(body[msg.KEY_VID]), str(body[msg.KEY_PROPERTY]))
        state = self._subscriptions.get(key)
        if state is None:
            raise ProtocolError("push for an unknown subscription")
        signed = {
            k: body[k]
            for k in (
                msg.KEY_VID,
                msg.KEY_PROPERTY,
                msg.KEY_REPORT,
                "seq",
                msg.KEY_NONCE,
            )
        }
        verify(self._controller_key, signed, bytes(body[msg.KEY_SIGNATURE]))
        if bytes(body[msg.KEY_NONCE]) != state.nonce:
            raise ReplayError("periodic push bound to a different subscription nonce")
        seq = int(body["seq"])
        if seq <= state.last_seq:
            raise ReplayError(f"periodic push sequence {seq} not fresh")
        state.last_seq = seq
        state.results.append(
            PeriodicResult(
                seq=seq,
                report=PropertyReport.from_dict(body[msg.KEY_REPORT]),
                response=body.get("response"),
                received_at_ms=self._network.engine.now,
            )
        )
        return {msg.KEY_STATUS: "received"}
