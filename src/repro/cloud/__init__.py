"""Public API: the assembled CloudMonatt system and the customer handle.

Typical use::

    from repro.cloud import CloudMonatt
    from repro.properties import SecurityProperty

    cloud = CloudMonatt(num_servers=3, seed=42)
    alice = cloud.register_customer("alice")
    vm = alice.launch_vm(
        "small", "ubuntu",
        properties=[SecurityProperty.STARTUP_INTEGRITY,
                    SecurityProperty.CPU_AVAILABILITY],
    )
    result = alice.attest(vm.vid, SecurityProperty.CPU_AVAILABILITY)
    print(result.report.healthy, result.report.explanation)
"""

from repro.cloud.cloudmonatt import CloudMonatt
from repro.cloud.customer import Customer, LaunchResult, VerifiedAttestation

__all__ = ["CloudMonatt", "Customer", "LaunchResult", "VerifiedAttestation"]
