"""The symbolic term algebra (perfect cryptography assumption).

Terms are either atomic :class:`Name`\\ s (keys, nonces, identifiers,
payloads) or applications of a fixed constructor vocabulary:

========  =========================  =============================
symbol    meaning                    destructor semantics
========  =========================  =============================
pair      tupling                    both components extractable
senc      symmetric encryption       plaintext with the key
aenc      asymmetric encryption      plaintext with the private key
sign      digital signature          message extractable; forgery
                                     requires the signing key
pk        public key of a private    public, not invertible
h         hash                       not invertible
kdf       key derivation             not invertible
========  =========================  =============================

Terms are frozen and hashable, so knowledge sets are plain ``set``\\ s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

Term = Union["Name", "Func"]


@dataclass(frozen=True)
class Name:
    """An atomic symbol: a key, nonce, identity or payload."""

    label: str

    def __repr__(self) -> str:
        return self.label


@dataclass(frozen=True)
class Func:
    """A constructor application."""

    symbol: str
    args: tuple[Term, ...]

    def __repr__(self) -> str:
        inner = ",".join(repr(a) for a in self.args)
        return f"{self.symbol}({inner})"


def pair(left: Term, right: Term) -> Func:
    """Tupling."""
    return Func("pair", (left, right))


def tuple_t(*terms: Term) -> Term:
    """Right-nested tuple of any arity (n >= 1)."""
    if not terms:
        raise ValueError("tuple_t needs at least one term")
    result = terms[-1]
    for term in reversed(terms[:-1]):
        result = pair(term, result)
    return result


def senc(message: Term, key: Term) -> Func:
    """Symmetric encryption (authenticated — decryption needs the key)."""
    return Func("senc", (message, key))


def aenc(message: Term, public_key: Term) -> Func:
    """Asymmetric encryption to a public key."""
    return Func("aenc", (message, public_key))


def sign_t(message: Term, private_key: Term) -> Func:
    """Digital signature. The message is recoverable (signatures do not
    hide); creating the term requires the private key."""
    return Func("sign", (message, private_key))


def pk(private_key: Term) -> Func:
    """The public key corresponding to a private key."""
    return Func("pk", (private_key,))


def h(message: Term) -> Func:
    """Cryptographic hash (one-way)."""
    return Func("h", (message,))


def kdf(seed: Term, label: Term) -> Func:
    """Key derivation (one-way, label-separated)."""
    return Func("kdf", (seed, label))


def subterms(term: Term) -> set[Term]:
    """All subterms of ``term``, including itself."""
    found: set[Term] = {term}
    if isinstance(term, Func):
        for arg in term.args:
            found |= subterms(arg)
    return found
