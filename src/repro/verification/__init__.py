"""Symbolic protocol verification (the paper's ProVerif analysis, §7.2.2).

The paper models its attestation protocol in ProVerif and verifies six
secrecy / integrity / authentication properties against a Dolev-Yao
attacker. This package is a from-scratch equivalent:

- :mod:`repro.verification.terms` — a free term algebra with the usual
  perfect-cryptography constructors (pairing, symmetric and asymmetric
  encryption, signatures, hashing, key derivation);
- :mod:`repro.verification.deduction` — attacker-knowledge closure:
  decompose what was observed (analysis) and decide derivability of any
  target term (synthesis), the classic decidable two-phase procedure;
- :mod:`repro.verification.protocol_model` — the CloudMonatt attestation
  protocol of Fig. 3 as a symbolic message trace, plus deliberately
  weakened variants (plaintext, nonce-free, identity-key-reuse) used to
  show the verifier *finds* the corresponding attacks;
- :mod:`repro.verification.verifier` — the six properties ①-⑥ as
  queries, returning per-property verdicts with witnesses.
"""

from repro.verification.deduction import KnowledgeBase
from repro.verification.protocol_model import ProtocolModel, ProtocolVariant
from repro.verification.terms import (
    Name,
    aenc,
    h,
    kdf,
    pair,
    pk,
    senc,
    sign_t,
    tuple_t,
)
from repro.verification.verifier import ProtocolVerifier, VerificationResult

__all__ = [
    "KnowledgeBase",
    "Name",
    "ProtocolModel",
    "ProtocolVariant",
    "ProtocolVerifier",
    "VerificationResult",
    "aenc",
    "h",
    "kdf",
    "pair",
    "pk",
    "senc",
    "sign_t",
    "tuple_t",
]
