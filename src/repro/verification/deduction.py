"""Dolev-Yao deduction: what can the attacker derive?

Two-phase decision procedure (standard for this term algebra):

- **Analysis** — saturate the knowledge set under *destructors*: split
  pairs, open signatures (they reveal the message), decrypt symmetric
  and asymmetric ciphertexts whenever the needed key is itself
  derivable. Decryption conditions call back into synthesis, so the two
  phases iterate to a joint fixpoint.
- **Synthesis** — decide derivability of a target term: it is known
  directly, or it is a constructor application whose arguments are all
  derivable. Hashes, KDFs and public keys are synthesizable from their
  arguments but never invertible.

The procedure terminates: analysis only ever adds subterms of observed
messages (a finite set), and synthesis recursion structurally descends
the target term.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.verification.terms import Func, Term


class KnowledgeBase:
    """An attacker's knowledge with derivability queries."""

    def __init__(self, observed: Iterable[Term] = ()):
        self._atoms: set[Term] = set(observed)
        self._analyzed = False

    def learn(self, *terms: Term) -> None:
        """Add observed terms (invalidates the analysis cache)."""
        self._atoms.update(terms)
        self._analyzed = False

    @property
    def analyzed(self) -> set[Term]:
        """The analysis-saturated knowledge set."""
        self._analyze()
        return set(self._atoms)

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------

    def _analyze(self) -> None:
        if self._analyzed:
            return
        changed = True
        while changed:
            changed = False
            for term in list(self._atoms):
                for extracted in self._destruct(term):
                    if extracted not in self._atoms:
                        self._atoms.add(extracted)
                        changed = True
        self._analyzed = True

    def _destruct(self, term: Term) -> list[Term]:
        """Destructor applications possible on one known term."""
        if not isinstance(term, Func):
            return []
        if term.symbol == "pair":
            return list(term.args)
        if term.symbol == "sign":
            # signatures do not hide their message
            return [term.args[0]]
        if term.symbol == "senc":
            message, key = term.args
            if self._synthesize(key, frozenset()):
                return [message]
            return []
        if term.symbol == "aenc":
            message, public_key = term.args
            if (
                isinstance(public_key, Func)
                and public_key.symbol == "pk"
                and self._synthesize(public_key.args[0], frozenset())
            ):
                return [message]
            return []
        return []

    # ------------------------------------------------------------------
    # synthesis
    # ------------------------------------------------------------------

    _SYNTHESIZABLE = {"pair", "senc", "aenc", "sign", "pk", "h", "kdf"}

    def _synthesize(self, target: Term, pending: frozenset) -> bool:
        if target in self._atoms:
            return True
        if target in pending:
            return False  # cycle guard
        if isinstance(target, Func) and target.symbol in self._SYNTHESIZABLE:
            pending = pending | {target}
            return all(self._synthesize(arg, pending) for arg in target.args)
        return False

    def can_derive(self, target: Term) -> bool:
        """Whether the attacker can produce ``target``."""
        self._analyze()
        return self._synthesize(target, frozenset())

    def explain(self, target: Term) -> Optional[str]:
        """A one-line witness of how ``target`` derives (or None).

        Used to attach human-readable attack witnesses to verification
        failures.
        """
        self._analyze()
        if not self._synthesize(target, frozenset()):
            return None
        if target in self._atoms:
            return f"{target!r} is directly extractable from observed traffic"
        return f"{target!r} is constructible from extractable components"
