"""Symbolic model of the CloudMonatt attestation protocol (Fig. 3).

The model builds the complete wire trace of attestation sessions as
symbolic terms: the SSL-style handshakes that establish Kx/Ky/Kz (RSA
key transport signed by the initiator), the privacy-CA certification of
the per-session attestation key, and the three signed/quoted report
hops. The network attacker observes every wire message.

Deliberately weakened variants demonstrate that the verifier *finds*
attacks when protections are removed:

- ``PLAINTEXT`` — no channel encryption (secrecy of P/M/R must break);
- ``NO_NONCES`` — reports not bound to request nonces (replay of a
  stale report must become possible);
- ``IDENTITY_KEY_REUSE`` — the cloud server signs measurements with its
  long-term identity key instead of a fresh certified session key (the
  relying party can now link sessions to the server, breaking the
  anonymity goal of §3.4.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.verification.terms import (
    Func,
    Name,
    Term,
    aenc,
    h,
    kdf,
    pair,
    pk,
    senc,
    sign_t,
    tuple_t,
)


class ProtocolVariant(enum.Enum):
    """Protocol configurations the verifier can analyze."""

    STANDARD = "standard"
    PLAINTEXT = "plaintext"
    NO_NONCES = "no_nonces"
    IDENTITY_KEY_REUSE = "identity_key_reuse"


@dataclass
class SessionTerms:
    """Per-session fresh values and derived terms."""

    index: int
    n1: Name = field(init=False)
    n2: Name = field(init=False)
    n3: Name = field(init=False)
    asks: Name = field(init=False)
    report: Name = field(init=False)
    meas: Name = field(init=False)
    #: the verification key a relying party uses for the measurements
    measurement_key: Term | None = None
    #: the signed customer-facing report token
    customer_token: Term | None = None

    def __post_init__(self):
        self.n1 = Name(f"N1#{self.index}")
        self.n2 = Name(f"N2#{self.index}")
        self.n3 = Name(f"N3#{self.index}")
        self.asks = Name(f"ASKs#{self.index}")
        self.report = Name(f"R#{self.index}")
        self.meas = Name(f"M#{self.index}")


class ProtocolModel:
    """Builds the symbolic trace for a protocol variant."""

    def __init__(self, variant: ProtocolVariant = ProtocolVariant.STANDARD,
                 sessions: int = 2):
        self.variant = variant
        # long-term secrets
        self.skcust = Name("SKcust")
        self.skc = Name("SKc")
        self.ska = Name("SKa")
        self.sks = Name("SKs")
        self.skpca = Name("SKpca")
        # channel seeds (one set per run; sessions share channels, as a
        # customer keeps one SSL connection)
        self.seedx = Name("seedX")
        self.seedy = Name("seedY")
        self.seedz = Name("seedZ")
        self.seedp = Name("seedP")
        self.kx = kdf(self.seedx, Name("ck"))
        self.ky = kdf(self.seedy, Name("ck"))
        self.kz = kdf(self.seedz, Name("ck"))
        self.kp = kdf(self.seedp, Name("ck"))
        # public values
        self.vid = Name("Vid")
        self.prop = Name("P")
        self.rm = Name("rM")
        self.srv = Name("I")
        self.pseudonym = Name("anon-attester")
        #: messages the network attacker observes
        self.trace: list[Term] = []
        #: public values the attacker starts with
        self.public: list[Term] = [
            pk(self.skcust), pk(self.skc), pk(self.ska), pk(self.sks),
            pk(self.skpca), self.vid, self.rm, Name("ck"),
            Name("attacker-key"), Name("attacker-nonce"), Name("R-forged"),
            Name("M-forged"),
        ]
        self.sessions: list[SessionTerms] = []
        self._build_handshakes()
        for index in range(1, sessions + 1):
            self.sessions.append(self._build_session(index))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _emit(self, message: Term) -> None:
        self.trace.append(message)

    def _wrap(self, message: Term, key: Term) -> Term:
        """Channel protection: encrypt unless the plaintext variant."""
        if self.variant is ProtocolVariant.PLAINTEXT:
            return message
        return senc(message, key)

    def _build_handshakes(self) -> None:
        """SSL-style handshakes: signed RSA key transport per hop."""
        for seed, responder_sk, initiator_sk in (
            (self.seedx, self.skc, self.skcust),
            (self.seedy, self.ska, self.skc),
            (self.seedz, self.sks, self.ska),
            (self.seedp, self.skpca, self.sks),
        ):
            transported = aenc(seed, pk(responder_sk))
            self._emit(transported)
            self._emit(sign_t(transported, initiator_sk))

    def _measurement_signing_key(self, session: SessionTerms) -> Name:
        if self.variant is ProtocolVariant.IDENTITY_KEY_REUSE:
            return self.sks
        return session.asks

    def _build_session(self, index: int) -> SessionTerms:
        session = SessionTerms(index)
        use_nonces = self.variant is not ProtocolVariant.NO_NONCES

        # 1. customer -> controller: (Vid, P, N1) under Kx
        request1 = (
            tuple_t(self.vid, self.prop, session.n1)
            if use_nonces
            else tuple_t(self.vid, self.prop)
        )
        self._emit(self._wrap(request1, self.kx))

        # 2. controller -> attestation server: (Vid, I, P, N2) under Ky
        request2 = (
            tuple_t(self.vid, self.srv, self.prop, session.n2)
            if use_nonces
            else tuple_t(self.vid, self.srv, self.prop)
        )
        self._emit(self._wrap(request2, self.ky))

        # 3. attestation server -> cloud server: (Vid, rM, N3) under Kz
        request3 = (
            tuple_t(self.vid, self.rm, session.n3)
            if use_nonces
            else tuple_t(self.vid, self.rm)
        )
        self._emit(self._wrap(request3, self.kz))

        # privacy-CA round: certify the session attestation key
        signing_key = self._measurement_signing_key(session)
        certificate = sign_t(pair(self.pseudonym, pk(signing_key)), self.skpca)
        if self.variant is not ProtocolVariant.IDENTITY_KEY_REUSE:
            endorsement = sign_t(pk(session.asks), self.sks)
            self._emit(self._wrap(pair(pk(session.asks), endorsement), self.kp))
            self._emit(self._wrap(certificate, self.kp))
        session.measurement_key = pk(signing_key)

        # 4. cloud server -> attestation server: signed measurements + Q3
        body4 = (
            tuple_t(self.vid, self.rm, session.meas, session.n3)
            if use_nonces
            else tuple_t(self.vid, self.rm, session.meas)
        )
        payload4 = pair(body4, h(body4))
        self._emit(
            self._wrap(
                tuple_t(payload4, sign_t(payload4, signing_key), certificate),
                self.kz,
            )
        )

        # 5. attestation server -> controller: signed report + Q2
        body5 = (
            tuple_t(self.vid, self.srv, self.prop, session.report, session.n2)
            if use_nonces
            else tuple_t(self.vid, self.srv, self.prop, session.report)
        )
        payload5 = pair(body5, h(body5))
        self._emit(self._wrap(pair(payload5, sign_t(payload5, self.ska)), self.ky))

        # 6. controller -> customer: signed report + Q1
        body6 = (
            tuple_t(self.vid, self.prop, session.report, session.n1)
            if use_nonces
            else tuple_t(self.vid, self.prop, session.report)
        )
        payload6 = pair(body6, h(body6))
        token = sign_t(payload6, self.skc)
        session.customer_token = token
        self._emit(self._wrap(pair(payload6, token), self.kx))
        return session

    # ------------------------------------------------------------------
    # acceptance predicates (what honest parties would accept)
    # ------------------------------------------------------------------

    def acceptable_customer_token(self, report: Term, nonce: Term | None) -> Term:
        """The exact signed token the customer accepts for (report, N1).

        In the nonce-free variant acceptance cannot check freshness, so
        the token shape omits the nonce — which is precisely the replay
        hole.
        """
        if self.variant is ProtocolVariant.NO_NONCES or nonce is None:
            body = tuple_t(self.vid, self.prop, report)
        else:
            body = tuple_t(self.vid, self.prop, report, nonce)
        return sign_t(pair(body, h(body)), self.skc)


def network_attacker_knowledge(model: ProtocolModel):
    """Initial knowledge of the Dolev-Yao network attacker."""
    from repro.verification.deduction import KnowledgeBase

    return KnowledgeBase(list(model.public) + list(model.trace))


def curious_relying_party_knowledge(model: ProtocolModel):
    """Knowledge of an honest-but-curious Attestation Server.

    Used for the anonymity analysis: the AS additionally holds its own
    long-term key and the channel keys it participates in.
    """
    from repro.verification.deduction import KnowledgeBase

    kb = KnowledgeBase(list(model.public) + list(model.trace))
    kb.learn(model.ska, model.seedy, model.seedz, model.ky, model.kz)
    return kb
