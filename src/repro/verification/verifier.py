"""The protocol verifier: the six properties of paper §7.2.2 as queries.

Secrecy:
  ① the symmetric keys Kx/Ky/Kz and the private keys SKcust, SKc, SKa,
    SKs, ASKs are unknown to the attacker;
  ② the property P, measurements M and report R are unknown;
Integrity:
  ③ P, M and R cannot be modified (forging an acceptable token with
    attacker-chosen content requires an underivable signature);
Authentication:
  ④⑤⑥ each adjacent pair is mutually authenticated (impersonation at
    any hop requires an underivable handshake signature or certificate).

On the standard protocol every property must verify. On the weakened
variants the verifier must instead *find* the corresponding attack:
plaintext → secrecy violated; nonce-free → replay accepted;
identity-key reuse → relying party links sessions to the server.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.verification.deduction import KnowledgeBase
from repro.verification.protocol_model import (
    ProtocolModel,
    ProtocolVariant,
    curious_relying_party_knowledge,
    network_attacker_knowledge,
)
from repro.verification.terms import Name, Term, aenc, h, pair, pk, sign_t, tuple_t


@dataclass(frozen=True)
class VerificationResult:
    """Verdict for one property query."""

    property_id: str
    description: str
    holds: bool
    witness: str = ""

    def __str__(self) -> str:  # pragma: no cover - display helper
        status = "verified" if self.holds else "ATTACK FOUND"
        suffix = f" [{self.witness}]" if self.witness else ""
        return f"{self.property_id} {self.description}: {status}{suffix}"


class ProtocolVerifier:
    """Runs the property queries against a protocol model.

    ``leaked`` names long-term secrets handed to the attacker before
    analysis — the trust-dependency mode: "if this key leaks, which
    guarantees survive?" Valid names: ``SKcust``, ``SKc``, ``SKa``,
    ``SKs``, ``SKpca``.
    """

    LEAKABLE = ("SKcust", "SKc", "SKa", "SKs", "SKpca")

    def __init__(self, variant: ProtocolVariant = ProtocolVariant.STANDARD,
                 sessions: int = 2, leaked: tuple[str, ...] = ()):
        self.model = ProtocolModel(variant, sessions=sessions)
        self.attacker = network_attacker_knowledge(self.model)
        self.leaked = tuple(leaked)
        for name in leaked:
            if name not in self.LEAKABLE:
                raise ValueError(f"unknown leakable secret {name!r}")
            self.attacker.learn(self._secret_by_name(name))

    def _secret_by_name(self, name: str):
        return {
            "SKcust": self.model.skcust,
            "SKc": self.model.skc,
            "SKa": self.model.ska,
            "SKs": self.model.sks,
            "SKpca": self.model.skpca,
        }[name]

    # ------------------------------------------------------------------
    # individual queries
    # ------------------------------------------------------------------

    def _secret(self, property_id: str, description: str, term: Term
                ) -> VerificationResult:
        derivable = self.attacker.can_derive(term)
        return VerificationResult(
            property_id=property_id,
            description=description,
            holds=not derivable,
            witness=self.attacker.explain(term) or "",
        )

    def check_key_secrecy(self) -> list[VerificationResult]:
        """Property ①: session keys and private keys stay secret."""
        model = self.model
        targets = [
            ("Kx", model.kx), ("Ky", model.ky), ("Kz", model.kz),
            ("SKcust", model.skcust), ("SKc", model.skc),
            ("SKa", model.ska), ("SKs", model.sks),
        ] + [(f"ASKs#{s.index}", s.asks) for s in model.sessions]
        return [
            self._secret("①", f"secrecy of {label}", term)
            for label, term in targets
        ]

    def check_payload_secrecy(self) -> list[VerificationResult]:
        """Property ②: P, M and R are unknown to the attacker."""
        model = self.model
        targets = [("P", model.prop)]
        for session in model.sessions:
            targets.append((f"M#{session.index}", session.meas))
            targets.append((f"R#{session.index}", session.report))
        return [
            self._secret("②", f"secrecy of {label}", term)
            for label, term in targets
        ]

    def check_integrity(self) -> list[VerificationResult]:
        """Property ③: P, M, R cannot be modified undetected.

        Modification means making a verifier accept attacker-chosen
        content — i.e. deriving an acceptable signed token over a forged
        payload.
        """
        model = self.model
        session = model.sessions[0]
        forged_report_token = model.acceptable_customer_token(
            Name("R-forged"), session.n1
        )
        body4 = tuple_t(model.vid, model.rm, Name("M-forged"), session.n3)
        payload4 = pair(body4, h(body4))
        forged_meas_token = sign_t(
            payload4,
            model.sks
            if self.model.variant is ProtocolVariant.IDENTITY_KEY_REUSE
            else session.asks,
        )
        return [
            VerificationResult(
                property_id="③",
                description="integrity of report R toward the customer",
                holds=not self.attacker.can_derive(forged_report_token),
                witness=self.attacker.explain(forged_report_token) or "",
            ),
            VerificationResult(
                property_id="③",
                description="integrity of measurements M toward the appraiser",
                holds=not self.attacker.can_derive(forged_meas_token),
                witness=self.attacker.explain(forged_meas_token) or "",
            ),
        ]

    def check_authentication(self) -> list[VerificationResult]:
        """Properties ④⑤⑥: no hop can be impersonated.

        Impersonating an endpoint means producing the signed key-
        transport message (or, for the cloud server, a certified
        signature) that the peer would accept from it.
        """
        model = self.model
        attacker_seed = Name("attacker-key")
        results = []
        hops = [
            ("④", "customer to controller", model.skc, model.skcust),
            ("⑤", "controller to attestation server", model.ska, model.skc),
            ("⑥", "attestation server to cloud server", model.sks, model.ska),
        ]
        for property_id, description, responder_sk, initiator_sk in hops:
            forged_handshake = sign_t(
                aenc(attacker_seed, pk(responder_sk)), initiator_sk
            )
            results.append(
                VerificationResult(
                    property_id=property_id,
                    description=f"authentication of {description} hop",
                    holds=not self.attacker.can_derive(forged_handshake),
                    witness=self.attacker.explain(forged_handshake) or "",
                )
            )
        # ⑥ also requires a certified attestation key: an attacker cannot
        # obtain a pCA certificate for a key it controls
        rogue_cert = sign_t(
            pair(model.pseudonym, pk(Name("attacker-key"))), model.skpca
        )
        results.append(
            VerificationResult(
                property_id="⑥",
                description="pCA certification of attestation keys",
                holds=not self.attacker.can_derive(rogue_cert),
                witness=self.attacker.explain(rogue_cert) or "",
            )
        )
        # ...nor forge the identity-key endorsement that makes the pCA
        # certify an attacker-controlled attestation key (needs SKs)
        forged_endorsement = sign_t(pk(Name("attacker-key")), model.sks)
        results.append(
            VerificationResult(
                property_id="⑥",
                description="cloud-server endorsement of attestation keys",
                holds=not self.attacker.can_derive(forged_endorsement),
                witness=self.attacker.explain(forged_endorsement) or "",
            )
        )
        return results

    def check_replay(self) -> VerificationResult:
        """Nonce freshness: a stale report is not acceptable for a new
        request. Needs two modelled sessions."""
        model = self.model
        if len(model.sessions) < 2:
            raise ValueError("replay analysis needs at least two sessions")
        old, new = model.sessions[0], model.sessions[1]
        # the attacker additionally acts as a dishonest insider who has
        # seen the decrypted old token (e.g. the customer's own records)
        replayer = KnowledgeBase(self.attacker.analyzed)
        replayer.learn(old.customer_token)
        stale_token_for_new_request = model.acceptable_customer_token(
            old.report, new.n1
        )
        derivable = replayer.can_derive(stale_token_for_new_request)
        return VerificationResult(
            property_id="replay",
            description="freshness: stale report unacceptable for a new nonce",
            holds=not derivable,
            witness=replayer.explain(stale_token_for_new_request) or "",
        )

    def check_server_anonymity(self) -> VerificationResult:
        """§3.4.2 goal: the relying party cannot link an attestation to a
        specific cloud server's identity key."""
        model = self.model
        linked = any(
            session.measurement_key == pk(model.sks)
            for session in model.sessions
        )
        fresh_keys = {
            session.measurement_key for session in model.sessions
        }
        unlinkable = (not linked) and len(fresh_keys) == len(model.sessions)
        return VerificationResult(
            property_id="anonymity",
            description="per-session attestation keys hide the server identity",
            holds=unlinkable,
            witness=(
                "measurement signatures verify under the long-term identity "
                "key pk(SKs), linking every session to the server"
                if linked
                else ""
            ),
        )

    # ------------------------------------------------------------------
    # the full battery
    # ------------------------------------------------------------------

    def verify_all(self) -> list[VerificationResult]:
        """All queries: the paper's six properties plus the freshness and
        anonymity analyses."""
        results: list[VerificationResult] = []
        results.extend(self.check_key_secrecy())
        results.extend(self.check_payload_secrecy())
        results.extend(self.check_integrity())
        results.extend(self.check_authentication())
        results.append(self.check_replay())
        results.append(self.check_server_anonymity())
        return results

    def all_hold(self) -> bool:
        """Whether every property verifies."""
        return all(result.holds for result in self.verify_all())

    def attacks_found(self) -> list[VerificationResult]:
        """The failing queries (expected non-empty on weakened variants)."""
        return [result for result in self.verify_all() if not result.holds]


def trust_dependency_matrix(
    sessions: int = 2,
) -> dict[str, list[VerificationResult]]:
    """What breaks when each long-term key leaks (standard protocol).

    Returns, per leaked key, the property queries that *fail* under
    that leak — the protocol's trust dependencies made explicit. The
    paper's threat model (§3.3) assumes the Cloud Controller and
    Attestation Server are trusted; this analysis shows exactly which
    guarantees that trust carries.
    """
    matrix: dict[str, list[VerificationResult]] = {}
    for name in ProtocolVerifier.LEAKABLE:
        verifier = ProtocolVerifier(
            ProtocolVariant.STANDARD, sessions=sessions, leaked=(name,)
        )
        matrix[name] = verifier.attacks_found()
    return matrix
