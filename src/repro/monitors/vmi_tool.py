"""VM Introspection tool (paper §2.1, §4.3.2).

Located in the hypervisor's Monitor Module, the VMI tool probes the
target VM's memory to obtain ground truth about the guest — here, the
true process table and kernel module list — without any cooperation from
(or trust in) the guest OS.
"""

from __future__ import annotations

from repro.common.errors import StateError
from repro.common.identifiers import VmId
from repro.guest.os_model import GuestOS


class VmiTool:
    """Out-of-VM introspection over a registry of guest OS images."""

    def __init__(self):
        self._guests: dict[VmId, GuestOS] = {}

    def attach(self, vid: VmId, guest: GuestOS) -> None:
        """Register a guest's memory image for introspection."""
        self._guests[vid] = guest

    def detach(self, vid: VmId) -> None:
        """Remove a guest (VM terminated or migrated away)."""
        self._guests.pop(vid, None)

    def _guest(self, vid: VmId) -> GuestOS:
        guest = self._guests.get(vid)
        if guest is None:
            raise StateError(f"VMI: no guest memory mapped for {vid}")
        return guest

    def running_tasks(self, vid: VmId) -> list[dict]:
        """The true task list, reconstructed from guest memory.

        Serialized as plain dicts so the result can flow through quotes
        and signed messages unchanged.
        """
        return [
            {"pid": p.pid, "name": p.name}
            for p in self._guest(vid).memory_process_table()
        ]

    def reported_tasks(self, vid: VmId) -> list[dict]:
        """What the guest itself would report (the inside view).

        Exposed so the appraiser can demonstrate the divergence; a real
        deployment obtains this view from the customer's own query.
        """
        return [
            {"pid": p.pid, "name": p.name} for p in self._guest(vid).query_tasks()
        ]

    def kernel_modules(self, vid: VmId) -> list[str]:
        """Loaded kernel modules, from guest memory."""
        return list(self._guest(vid).kernel_modules)
