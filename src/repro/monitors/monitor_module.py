"""The Monitor Module registry and its measurement providers.

The Attestation Client receives a list of requested measurement names
``rM`` and drives the Monitor Module through a two-phase protocol:

1. :meth:`MonitorModule.begin` opens any measurement windows (the
   availability and covert-channel monitors measure over a testing
   period; integrity and VMI measurements are instantaneous);
2. after the window elapses, :meth:`MonitorModule.collect` gathers the
   actual measurements ``M`` as a name-keyed dict ready for hashing and
   signing by the Trust Module.

Measurement names are the shared vocabulary between the Attestation
Server's property→measurement mapping and the cloud servers' monitors.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import StateError
from repro.common.identifiers import VmId
from repro.monitors.integrity_unit import IntegrityMeasurementUnit
from repro.monitors.perf_counters import NUM_INTERVAL_BINS, RunIntervalHistogram
from repro.monitors.vmi_tool import VmiTool
from repro.monitors.vmm_profile import VmmProfileTool

# The measurement vocabulary (rM values).
MEAS_PLATFORM_INTEGRITY = "integrity.platform"
MEAS_VM_IMAGE_INTEGRITY = "integrity.vm_image"
MEAS_TASK_LIST = "vmi.task_list"
MEAS_KERNEL_MODULES = "vmi.kernel_modules"
MEAS_CPU_INTERVAL_HISTOGRAM = "perf.cpu_interval_histogram"
MEAS_BUS_LOCK_HISTOGRAM = "perf.bus_lock_histogram"
MEAS_CPU_USAGE = "profile.cpu_usage"


@dataclass(frozen=True)
class MeasurementRequest:
    """What the Attestation Server asks a cloud server to measure."""

    vid: VmId
    measurements: tuple[str, ...]
    #: measurement window for time-windowed monitors, in ms
    window_ms: float = 0.0
    params: dict[str, Any] = field(default_factory=dict)


class MeasurementProvider(abc.ABC):
    """One source of measurements, registered under a name."""

    name: str = ""
    requires_window: bool = False
    #: True when the value does not depend on the VM being measured, so
    #: one coalesced pass may share it across a same-server batch.
    vm_independent: bool = False

    def begin(self, vid: VmId, params: dict) -> None:
        """Open a measurement window (no-op for instant measurements)."""

    @abc.abstractmethod
    def collect(self, vid: VmId, params: dict) -> Any:
        """Produce the measurement value."""


class PlatformIntegrityProvider(MeasurementProvider):
    """Platform measured-boot evidence (PCR value + log)."""

    name = MEAS_PLATFORM_INTEGRITY
    vm_independent = True

    def __init__(self, integrity_unit: IntegrityMeasurementUnit):
        self._unit = integrity_unit

    def collect(self, vid: VmId, params: dict) -> Any:
        return self._unit.platform_measurement()


class VmImageIntegrityProvider(MeasurementProvider):
    """Per-VM image measurement evidence."""

    name = MEAS_VM_IMAGE_INTEGRITY

    def __init__(self, integrity_unit: IntegrityMeasurementUnit):
        self._unit = integrity_unit

    def collect(self, vid: VmId, params: dict) -> Any:
        return self._unit.vm_image_measurement(vid)


class TaskListProvider(MeasurementProvider):
    """True in-guest task list, via VM introspection."""

    name = MEAS_TASK_LIST

    def __init__(self, vmi: VmiTool):
        self._vmi = vmi

    def collect(self, vid: VmId, params: dict) -> Any:
        return self._vmi.running_tasks(vid)


class InterceptingTaskListProvider(TaskListProvider):
    """VMI task list with a consistent-snapshot pause.

    Paper §7.1.2: "Whether runtime attestation causes performance
    degradation to the VM execution time depends on the measurement
    collection mechanism." Some introspection tools must pause the guest
    to walk its memory consistently; this provider models that by
    holding the domain off the CPU for ``scan_pause_ms`` per collection.
    The intercepting-measurement ablation bench quantifies the cost.
    """

    def __init__(self, vmi: VmiTool, hypervisor, scan_pause_ms: float):
        super().__init__(vmi)
        if scan_pause_ms <= 0:
            raise StateError("scan pause must be positive")
        self._hypervisor = hypervisor
        self.scan_pause_ms = scan_pause_ms

    def collect(self, vid: VmId, params: dict) -> Any:
        self._hypervisor.pause_domain(vid, self.scan_pause_ms)
        # the scan itself takes wall time while the guest is frozen
        self._hypervisor.engine.run_until(
            self._hypervisor.engine.now + self.scan_pause_ms
        )
        return super().collect(vid, params)


class KernelModulesProvider(MeasurementProvider):
    """Loaded kernel modules, via VM introspection."""

    name = MEAS_KERNEL_MODULES

    def __init__(self, vmi: VmiTool):
        self._vmi = vmi

    def collect(self, vid: VmId, params: dict) -> Any:
        return self._vmi.kernel_modules(vid)


class CpuIntervalHistogramProvider(MeasurementProvider):
    """The 30-bin CPU-usage-interval histogram over a testing window."""

    name = MEAS_CPU_INTERVAL_HISTOGRAM
    requires_window = True

    def __init__(self, histogram_monitor: RunIntervalHistogram):
        self._monitor = histogram_monitor

    def begin(self, vid: VmId, params: dict) -> None:
        self._monitor.reset(vid)

    def collect(self, vid: VmId, params: dict) -> Any:
        counts = self._monitor.histogram(vid)
        # the paper sends 30 register values; honor a custom bin count
        return counts[:NUM_INTERVAL_BINS]


class BusLockHistogramProvider(MeasurementProvider):
    """Lock-rate histogram over a testing window (bus covert channels)."""

    name = MEAS_BUS_LOCK_HISTOGRAM
    requires_window = True

    def __init__(self, bus_monitor):
        self._monitor = bus_monitor

    def begin(self, vid: VmId, params: dict) -> None:
        self._monitor.reset(vid)

    def collect(self, vid: VmId, params: dict) -> Any:
        return self._monitor.histogram(vid)


class CpuUsageProvider(MeasurementProvider):
    """CPU_measure over a testing window (availability monitoring)."""

    name = MEAS_CPU_USAGE
    requires_window = True

    def __init__(self, profile_tool: VmmProfileTool):
        self._tool = profile_tool

    def begin(self, vid: VmId, params: dict) -> None:
        self._tool.start_window(vid)

    def collect(self, vid: VmId, params: dict) -> Any:
        window = self._tool.stop_window(vid)
        return {
            "cpu_ms": window.cpu_ms,
            "wall_ms": window.wall_ms,
            "wait_ms": window.wait_ms,
        }


class MonitorModule:
    """Registry of measurement providers on one cloud server."""

    def __init__(self):
        self._providers: dict[str, MeasurementProvider] = {}

    def register(self, provider: MeasurementProvider) -> None:
        """Add a provider; its class-level ``name`` keys the registry."""
        if not provider.name:
            raise StateError("provider has no measurement name")
        self._providers[provider.name] = provider

    def supports(self, measurement: str) -> bool:
        """Whether this server can produce the named measurement."""
        return measurement in self._providers

    def supported_measurements(self) -> list[str]:
        """All measurement names this server offers."""
        return sorted(self._providers)

    def _provider(self, measurement: str) -> MeasurementProvider:
        provider = self._providers.get(measurement)
        if provider is None:
            raise StateError(f"no monitor for measurement {measurement!r}")
        return provider

    def window_required(self, measurements: tuple[str, ...]) -> bool:
        """Whether any requested measurement needs a testing window."""
        return any(self._provider(name).requires_window for name in measurements)

    def begin(self, request: MeasurementRequest) -> None:
        """Phase 1: open windows for all windowed measurements."""
        for name in request.measurements:
            self._provider(name).begin(request.vid, request.params)

    def collect(self, request: MeasurementRequest) -> dict[str, Any]:
        """Phase 2: gather all requested measurements."""
        return {
            name: self._provider(name).collect(request.vid, request.params)
            for name in request.measurements
        }

    def begin_many(self, requests: list[MeasurementRequest]) -> None:
        """Phase 1 for a coalesced batch, in the given (sorted) order."""
        for request in requests:
            self.begin(request)

    def collect_many(
        self, requests: list[MeasurementRequest]
    ) -> tuple[list[dict[str, Any]], int]:
        """Phase 2 for a coalesced batch.

        VM-independent measurements (e.g. platform integrity) are
        collected once per batch and shared across entries; everything
        else is collected per VM. Returns the per-request measurement
        dicts (aligned with ``requests``) and the number of coalesce
        hits — collections avoided by sharing.
        """
        shared: dict[str, Any] = {}
        coalesce_hits = 0
        results: list[dict[str, Any]] = []
        for request in requests:
            values: dict[str, Any] = {}
            for name in request.measurements:
                provider = self._provider(name)
                if provider.vm_independent:
                    if name in shared:
                        coalesce_hits += 1
                    else:
                        shared[name] = provider.collect(request.vid, request.params)
                    values[name] = shared[name]
                else:
                    values[name] = provider.collect(request.vid, request.params)
            results.append(values)
        return results, coalesce_hits
