"""VMM Profile Tool: per-VM CPU-time accounting (paper §4.5.2).

"During the testing period for CPU availability, the VMM Profile Tool
measures the attested VM's CPU time: it observes the transitions of each
virtual CPU on each physical core, and keeps record of the virtual
running time for the attested VM."

Measurements are taken from the scheduler's own accounting at VM switch
time — the tool never intercepts the VM's execution, which is why the
paper's Fig. 10 shows no overhead from periodic runtime attestation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import StateError
from repro.common.identifiers import VmId
from repro.xen.hypervisor import Hypervisor


@dataclass(frozen=True)
class CpuWindow:
    """Result of one measurement window."""

    vid: VmId
    cpu_ms: float
    wall_ms: float
    #: steal time — runnable but denied the CPU — over the window. The
    #: demand signal that separates a starved VM from an idle one.
    wait_ms: float = 0.0

    @property
    def relative_usage(self) -> float:
        """CPU_measure / wall time — the paper's relative CPU usage."""
        if self.wall_ms <= 0:
            return 0.0
        return self.cpu_ms / self.wall_ms

    @property
    def steal_ratio(self) -> float:
        """Fraction of demanded CPU time that was denied."""
        demanded = self.cpu_ms + self.wait_ms
        if demanded <= 0:
            return 0.0
        return self.wait_ms / demanded


class VmmProfileTool:
    """Windows of CPU-time measurement over the hypervisor's domains."""

    def __init__(self, hypervisor: Hypervisor):
        self._hypervisor = hypervisor
        #: vid -> (t0, cpu0, wait0)
        self._open: dict[VmId, tuple[float, float, float]] = {}

    def _domain(self, vid: VmId):
        domain = self._hypervisor.domains.get(vid)
        if domain is None:
            raise StateError(f"no domain {vid} on this hypervisor")
        return domain

    def start_window(self, vid: VmId) -> None:
        """Begin a measurement window for the attested VM."""
        domain = self._domain(vid)
        now = self._hypervisor.now
        cpu = sum(vcpu.runtime_until(now) for vcpu in domain.vcpus)
        wait = sum(vcpu.wait_until(now) for vcpu in domain.vcpus)
        self._open[vid] = (now, cpu, wait)

    def stop_window(self, vid: VmId) -> CpuWindow:
        """End the window; returns (CPU_measure, steal time, wall time)."""
        if vid not in self._open:
            raise StateError(f"no open measurement window for {vid}")
        start_time, start_cpu, start_wait = self._open.pop(vid)
        domain = self._domain(vid)
        now = self._hypervisor.now
        cpu = sum(vcpu.runtime_until(now) for vcpu in domain.vcpus)
        wait = sum(vcpu.wait_until(now) for vcpu in domain.vcpus)
        return CpuWindow(
            vid=vid,
            cpu_ms=cpu - start_cpu,
            wall_ms=now - start_time,
            wait_ms=wait - start_wait,
        )

    def instantaneous_usage(self, vid: VmId) -> float:
        """Lifetime relative CPU usage (start of domain to now)."""
        return self._domain(vid).relative_cpu_usage(self._hypervisor.now)
