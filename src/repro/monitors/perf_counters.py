"""CPU-usage-interval counters for covert-channel detection (paper §4.4.2).

The monitor observes every continuous run interval of a target VM on the
scheduler and counts its duration into 30 one-millisecond bins,
(0,1], (1,2], ..., (29,30] — longer intervals land in the last bin, since
30 ms is the scheduler's maximum timeslice. The counters live in the
Trust Module's Trust Evidence Registers, exactly as the paper describes
("we use 30 programmable Trust Evidence Registers to count the occurrence
of each CPU usage interval").
"""

from __future__ import annotations

from typing import Optional

from repro.common.identifiers import VmId
from repro.tpm.trust_module import TrustModule

NUM_INTERVAL_BINS = 30
"""Bin count; the paper notes a different number trades space/accuracy."""


class RunIntervalHistogram:
    """Scheduler listener accumulating a run-interval histogram per VM.

    Attach to a hypervisor with ``hypervisor.add_monitor(...)``. When a
    :class:`TrustModule` is supplied, each observed interval also
    increments the corresponding Trust Evidence Register, so the
    registers mirror the histogram of the *watched* VM.
    """

    def __init__(
        self,
        watched_vid: Optional[VmId] = None,
        trust_module: Optional[TrustModule] = None,
        num_bins: int = NUM_INTERVAL_BINS,
    ):
        if num_bins < 2:
            raise ValueError("need at least two interval bins")
        self.num_bins = num_bins
        self.watched_vid = watched_vid
        self._trust_module = trust_module
        self._histograms: dict[VmId, list[int]] = {}

    def on_run_interval(self, vcpu, start: float, end: float) -> None:
        """Scheduler hook: bin one continuous run interval."""
        duration = end - start
        if duration <= 0:
            return
        bin_index = min(int(duration - 1e-9), self.num_bins - 1)
        vid = vcpu.domain.vid
        histogram = self._histograms.setdefault(vid, [0] * self.num_bins)
        histogram[bin_index] += 1
        if self._trust_module is not None and vid == self.watched_vid:
            self._trust_module.increment_register(bin_index)

    def histogram(self, vid: VmId) -> list[int]:
        """Raw bin counts for a VM (zeros if never observed)."""
        return list(self._histograms.get(vid, [0] * self.num_bins))

    def distribution(self, vid: VmId) -> list[float]:
        """Counts normalized to a probability distribution (paper Fig. 5)."""
        histogram = self.histogram(vid)
        total = sum(histogram)
        if total == 0:
            return [0.0] * self.num_bins
        return [count / total for count in histogram]

    def reset(self, vid: Optional[VmId] = None) -> None:
        """Clear accumulated counts for one VM or all VMs."""
        if vid is None:
            self._histograms.clear()
        else:
            self._histograms.pop(vid, None)
        if self._trust_module is not None:
            self._trust_module.clear_registers()
