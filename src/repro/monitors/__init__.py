"""The Monitor Module: the measurement side of the cloud server (Fig. 2).

Each monitor produces one family of raw measurements ``M``; the
:class:`~repro.monitors.monitor_module.MonitorModule` is the registry the
Attestation Client invokes with a list of requested measurement names
``rM``. Monitors write their results into the Trust Module (evidence
registers or trusted evidence storage) before they are signed and
shipped.

Monitors provided (matching the paper's Fig. 2 inventory):

- :class:`~repro.monitors.integrity_unit.IntegrityMeasurementUnit` — the
  measured-boot chain (platform and VM image hashes into TPM PCRs).
- :class:`~repro.monitors.vmi_tool.VmiTool` — VM introspection: the true
  process table read from guest memory.
- :class:`~repro.monitors.vmm_profile.VmmProfileTool` — per-VM CPU time
  accounting from scheduler transitions (availability measurements).
- :class:`~repro.monitors.perf_counters.RunIntervalHistogram` — the 30
  CPU-usage-interval counters behind covert-channel detection.
"""

from repro.monitors.audit_log import AuditLog, AuditRecord
from repro.monitors.bus_monitor import BusLatencyProbe, BusLockHistogram
from repro.monitors.integrity_unit import IntegrityMeasurementUnit, SoftwareInventory
from repro.monitors.monitor_module import MeasurementRequest, MonitorModule
from repro.monitors.perf_counters import NUM_INTERVAL_BINS, RunIntervalHistogram
from repro.monitors.vmi_tool import VmiTool
from repro.monitors.vmm_profile import VmmProfileTool

__all__ = [
    "AuditLog",
    "AuditRecord",
    "BusLatencyProbe",
    "BusLockHistogram",
    "IntegrityMeasurementUnit",
    "MeasurementRequest",
    "MonitorModule",
    "NUM_INTERVAL_BINS",
    "RunIntervalHistogram",
    "SoftwareInventory",
    "VmiTool",
    "VmmProfileTool",
]
