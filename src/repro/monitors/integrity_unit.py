"""Integrity Measurement Unit: measured boot for platform and VM images.

Paper §4.2.2: "the measurement is typically done in two phases: First,
the server's platform configuration (hypervisor, host OS, etc.) is
measured (i.e., hashed) during server bootup. Second, the VM image is
measured before VM launch."

The platform chain accumulates into the TPM's platform PCR. VM images
are measured into per-VM chains (the vTPM-style equivalent of a per-VM
register), because one server hosts many VMs concurrently.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.common.errors import StateError
from repro.common.identifiers import VmId
from repro.crypto.hashing import HashChain
from repro.tpm.pcr import PcrBank
from repro.tpm.tpm_emulator import TpmEmulator


@dataclass
class SoftwareInventory:
    """The software loaded on a platform: name -> content bytes.

    Order matters (components are measured in load order), so the
    component list is kept explicitly. Tampering a component's content
    (e.g. a corrupted hypervisor) changes its digest and hence every
    downstream chain value.
    """

    components: list[tuple[str, bytes]] = field(default_factory=list)

    @staticmethod
    def pristine_platform() -> "SoftwareInventory":
        """The reference platform stack (hypervisor + host OS + agents)."""
        return SoftwareInventory(
            components=[
                ("xen-hypervisor-4.2", b"xen hypervisor code v4.2 pristine"),
                ("dom0-linux-3.10", b"dom0 linux kernel 3.10 pristine"),
                ("openstack-nova-compute", b"nova compute agent pristine"),
                ("oat-client", b"openattestation client pristine"),
            ]
        )

    def tampered(self, component: str, new_content: bytes) -> "SoftwareInventory":
        """A copy with one component's content replaced (an attack)."""
        if component not in {name for name, _ in self.components}:
            raise StateError(f"no component {component!r} in inventory")
        return SoftwareInventory(
            components=[
                (name, new_content if name == component else content)
                for name, content in self.components
            ]
        )

    def digests(self) -> list[bytes]:
        """Per-component digests, in load order."""
        return [hashlib.sha256(content).digest() for _, content in self.components]


class IntegrityMeasurementUnit:
    """Measures software into integrity chains.

    - :meth:`measure_platform` runs once at server boot, extending the
      TPM platform PCR with each platform component digest.
    - :meth:`measure_vm_image` runs before each VM launch, opening a
      per-VM chain with the image digest.
    """

    def __init__(self, tpm: TpmEmulator):
        self._tpm = tpm
        self._platform_log: list[bytes] = []
        self._platform_components: list[str] = []
        self._vm_chains: dict[VmId, HashChain] = {}
        self._vm_logs: dict[VmId, list[bytes]] = {}

    def measure_platform(self, inventory: SoftwareInventory) -> bytes:
        """Measured boot of the platform stack; returns the final PCR value."""
        value = self._tpm.read(PcrBank.PLATFORM_PCR)
        for (name, _), digest in zip(inventory.components, inventory.digests()):
            value = self._tpm.extend(PcrBank.PLATFORM_PCR, digest)
            self._platform_log.append(digest)
            self._platform_components.append(name)
        return value

    def platform_measurement(self) -> dict:
        """The platform evidence: PCR value plus the IMA-style log.

        The log carries component names alongside digests (as IMA's
        measurement list does), enabling per-component appraisal that
        identifies *which* component diverged, not just that something
        did.
        """
        return {
            "pcr": self._tpm.read(PcrBank.PLATFORM_PCR),
            "log": list(self._platform_log),
            "components": list(self._platform_components),
        }

    def measure_vm_image(self, vid: VmId, image_content: bytes) -> bytes:
        """Measure a VM image before launch; returns the chain value."""
        chain = HashChain()
        digest = hashlib.sha256(image_content).digest()
        chain.extend(digest)
        self._vm_chains[vid] = chain
        self._vm_logs[vid] = [digest]
        return chain.value

    def vm_image_measurement(self, vid: VmId) -> dict:
        """The VM-image evidence for one VM."""
        if vid not in self._vm_chains:
            raise StateError(f"no image measurement recorded for {vid}")
        return {
            "pcr": self._vm_chains[vid].value,
            "log": list(self._vm_logs[vid]),
        }

    def forget_vm(self, vid: VmId) -> None:
        """Drop a VM's chain (terminated or migrated away)."""
        self._vm_chains.pop(vid, None)
        self._vm_logs.pop(vid, None)

    @staticmethod
    def expected_platform_value(inventory: SoftwareInventory) -> bytes:
        """What the platform PCR *should* read for a pristine inventory.

        The Attestation Server uses this ("full knowledge of the attested
        software, and the correct pre-calculated hash values", §4.2.2).
        """
        return HashChain.replay(inventory.digests())

    @staticmethod
    def expected_image_value(image_content: bytes) -> bytes:
        """What a VM image chain should read for pristine content."""
        return HashChain.replay([hashlib.sha256(image_content).digest()])
