"""Memory-bus monitoring: the second covert-channel source.

The paper's §4.4.3: "This is only one type of covert channel and other
types of covert channels can also be monitored (with more Trust
Evidence Registers and mechanisms)." The memory bus is the canonical
second source (locked vs unlocked bus transactions, Wu et al. [44]):
atomic operations lock the bus and stall every other core, so a sender
can signal *across cores* by modulating its rate of locked operations —
invisible to the CPU-interval monitor, since its CPU usage stays
uniform.

Two instruments:

- :class:`BusLockHistogram` — the defender's monitor: a histogram of
  the lock rates a watched VM exhibits across its run time, binned into
  Trust Evidence Registers. A bus covert channel alternates between
  silent and high-rate phases, giving a bimodal rate distribution; a
  benign memory-heavy service shows one steady-rate peak.
- :class:`BusLatencyProbe` — the attacker's receiver: samples the
  memory latency inflation its domain experiences from *other* cores'
  locked operations, recovering the sender's modulation cross-core.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import StateError
from repro.common.identifiers import VmId
from repro.tpm.trust_module import TrustModule
from repro.xen.hypervisor import Hypervisor
from repro.xen.scheduler import CreditScheduler
from repro.xen.vcpu import VCpu

NUM_RATE_BINS = 30
"""Rate bins: bin ``i`` counts milliseconds spent issuing ``i`` locked
ops/ms (the last bin clips higher rates), mirroring the 30 interval
registers of the CPU monitor."""

#: latency inflation per concurrent locked op/ms (model constant)
LATENCY_PER_LOCK = 0.05


class BusLockHistogram:
    """Scheduler listener: lock-rate distribution per VM.

    Each continuous run interval of duration ``D`` at lock rate ``r``
    contributes ``D`` milliseconds of weight to rate bin ``min(r, 29)``.
    """

    def __init__(
        self,
        watched_vid: Optional[VmId] = None,
        trust_module: Optional[TrustModule] = None,
        num_bins: int = NUM_RATE_BINS,
    ):
        if num_bins < 2:
            raise ValueError("need at least two rate bins")
        self.num_bins = num_bins
        self.watched_vid = watched_vid
        self._trust_module = trust_module
        self._histograms: dict[VmId, list[float]] = {}

    def on_run_interval(self, vcpu: VCpu, start: float, end: float) -> None:
        """Scheduler hook: weight the interval's lock rate by duration."""
        duration = end - start
        if duration <= 0:
            return
        burst = vcpu.current_burst
        rate = burst.bus_lock_rate if burst is not None else 0.0
        bin_index = min(int(rate), self.num_bins - 1)
        vid = vcpu.domain.vid
        histogram = self._histograms.setdefault(vid, [0.0] * self.num_bins)
        histogram[bin_index] += duration
        if self._trust_module is not None and vid == self.watched_vid:
            self._trust_module.increment_register(bin_index, duration)

    def histogram(self, vid: VmId) -> list[float]:
        """Milliseconds of run time per lock-rate bin."""
        return list(self._histograms.get(vid, [0.0] * self.num_bins))

    def distribution(self, vid: VmId) -> list[float]:
        """The histogram normalized to probabilities."""
        histogram = self.histogram(vid)
        total = sum(histogram)
        if total == 0:
            return [0.0] * self.num_bins
        return [weight / total for weight in histogram]

    def reset(self, vid: Optional[VmId] = None) -> None:
        """Clear accumulated weights for one VM or all VMs."""
        if vid is None:
            self._histograms.clear()
        else:
            self._histograms.pop(vid, None)


class BusActivityTrace:
    """Scheduler listener recording a VM's bus activity as a time series.

    Where :class:`BusLockHistogram` aggregates rates into a distribution
    (losing time structure), this trace keeps the (start, end, rate)
    segments, from which :func:`rate_series` reconstructs a regularly
    sampled signal — the input to CC-Hunter-style event-train analysis
    (paper §4.4.2 cites CC-Hunter [11] for exactly this idea: "Programs
    involved in covert channel communications give unique patterns of
    the events happening on such hardware").
    """

    def __init__(self, watched_vid: VmId):
        self.watched_vid = watched_vid
        #: (start_ms, end_ms, lock_rate) run segments
        self.segments: list[tuple[float, float, float]] = []

    def on_run_interval(self, vcpu: VCpu, start: float, end: float) -> None:
        """Scheduler hook: record the watched VM's run segments."""
        if vcpu.domain.vid != self.watched_vid:
            return
        burst = vcpu.current_burst
        rate = burst.bus_lock_rate if burst is not None else 0.0
        self.segments.append((start, end, rate))

    def rate_series(self, bin_ms: float = 1.0) -> list[float]:
        """The lock-rate signal sampled every ``bin_ms`` over the trace.

        Bins where the VM was not running read 0 (no bus activity).
        """
        if not self.segments:
            return []
        first = self.segments[0][0]
        last = max(end for _, end, _ in self.segments)
        bins = int((last - first) / bin_ms) + 1
        series = [0.0] * bins
        for start, end, rate in self.segments:
            begin_bin = int((start - first) / bin_ms)
            end_bin = int((end - first) / bin_ms)
            for index in range(begin_bin, min(end_bin + 1, bins)):
                series[index] = rate
        return series

    def reset(self) -> None:
        """Clear the recorded segments."""
        self.segments.clear()


def concurrent_lock_rate(scheduler: CreditScheduler, excluding: VmId) -> float:
    """Total lock rate currently on the bus from other domains' vCPUs."""
    total = 0.0
    for pcpu in scheduler.pcpus:
        running = pcpu.running
        if running is None or running.domain.vid == excluding:
            continue
        burst = running.current_burst
        if burst is not None:
            total += burst.bus_lock_rate
    return total


class BusLatencyProbe:
    """The receiver's instrument: a time series of memory-latency factors.

    While armed, samples every ``sample_ms`` the latency inflation the
    probed domain would experience from other cores' locked operations:
    ``1 + LATENCY_PER_LOCK * concurrent_rate``. This is how the paper's
    cited bus channels are received in practice — by timing one's own
    memory accesses.
    """

    def __init__(self, hypervisor: Hypervisor, vid: VmId, sample_ms: float = 1.0):
        if sample_ms <= 0:
            raise StateError("sample period must be positive")
        self._hypervisor = hypervisor
        self.vid = vid
        self.sample_ms = sample_ms
        #: (time_ms, latency_factor) samples
        self.samples: list[tuple[float, float]] = []
        self._armed = False

    def arm(self, duration_ms: float) -> None:
        """Start sampling for ``duration_ms`` of simulation time."""
        self._armed = True
        self._deadline = self._hypervisor.now + duration_ms
        self._hypervisor.engine.schedule(self.sample_ms, self._sample)

    def _sample(self) -> None:
        if not self._armed or self._hypervisor.now > self._deadline:
            self._armed = False
            return
        rate = concurrent_lock_rate(self._hypervisor.scheduler, self.vid)
        factor = 1.0 + LATENCY_PER_LOCK * rate
        self.samples.append((self._hypervisor.now, factor))
        self._hypervisor.engine.schedule(self.sample_ms, self._sample)

    def decode(self, threshold_factor: float, symbol_ms: float) -> list[int]:
        """Decode one bit per symbol period by mean latency thresholding."""
        if not self.samples:
            return []
        bits: list[int] = []
        window: list[float] = []
        window_start = self.samples[0][0]
        for time_ms, factor in self.samples:
            if time_ms - window_start >= symbol_ms:
                if window:
                    mean = sum(window) / len(window)
                    bits.append(1 if mean > threshold_factor else 0)
                window = []
                window_start = time_ms
            window.append(factor)
        if window:
            mean = sum(window) / len(window)
            bits.append(1 if mean > threshold_factor else 0)
        return bits
