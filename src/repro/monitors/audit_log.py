"""Tamper-evident audit logging.

Paper §4: "The CloudMonatt architecture is flexible and allows the
integration of an arbitrary number of security properties and
monitoring mechanisms, including logging, auditing and provenance
mechanisms." §7.2.1 additionally calls for "data hashing" protection of
the central servers' databases.

This module provides the audit substrate: an append-only log whose
entries are hash-chained (entry *n* commits to entry *n-1*), so any
after-the-fact modification, deletion or reordering of records is
detectable by replaying the chain. The Attestation Server threads its
attestation outcomes through one of these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.crypto.hashing import DIGEST_SIZE, sha256


@dataclass(frozen=True)
class AuditRecord:
    """One immutable audit entry."""

    index: int
    time_ms: float
    event: str
    payload: dict
    #: hash of the previous record's commitment (zeros for the first)
    prev_digest: bytes
    #: this record's commitment: H(index, time, event, payload, prev)
    digest: bytes


def _commit(index: int, time_ms: float, event: str, payload: dict,
            prev_digest: bytes) -> bytes:
    return sha256([index, time_ms, event, payload, prev_digest])


@dataclass(frozen=True)
class TamperFinding:
    """Where and how the chain verification failed."""

    index: int
    reason: str


class AuditLog:
    """A hash-chained, append-only audit log."""

    GENESIS = b"\x00" * DIGEST_SIZE

    def __init__(self):
        self._records: list[AuditRecord] = []

    def append(self, time_ms: float, event: str, payload: dict) -> AuditRecord:
        """Append one event; returns the committed record."""
        index = len(self._records)
        prev_digest = self._records[-1].digest if self._records else self.GENESIS
        record = AuditRecord(
            index=index,
            time_ms=time_ms,
            event=event,
            payload=dict(payload),
            prev_digest=prev_digest,
            digest=_commit(index, time_ms, event, dict(payload), prev_digest),
        )
        self._records.append(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self._records)

    def record(self, index: int) -> AuditRecord:
        """The record at ``index``."""
        return self._records[index]

    @property
    def head_digest(self) -> bytes:
        """The latest commitment — publish/replicate this to anchor the
        whole history (a verifier holding it detects any rewrite)."""
        return self._records[-1].digest if self._records else self.GENESIS

    def verify(self) -> list[TamperFinding]:
        """Replay the chain; returns every inconsistency found.

        An empty list means the log content matches its commitments and
        the chain is unbroken.
        """
        findings: list[TamperFinding] = []
        prev_digest = self.GENESIS
        for position, record in enumerate(self._records):
            if record.index != position:
                findings.append(
                    TamperFinding(position, "record index out of sequence")
                )
            if record.prev_digest != prev_digest:
                findings.append(
                    TamperFinding(position, "chain link does not match predecessor")
                )
            expected = _commit(
                record.index, record.time_ms, record.event, record.payload,
                record.prev_digest,
            )
            if record.digest != expected:
                findings.append(
                    TamperFinding(position, "record content does not match digest")
                )
            prev_digest = record.digest
        return findings

    def events(self, event: str | None = None) -> list[AuditRecord]:
        """Records, optionally filtered by event name."""
        if event is None:
            return list(self._records)
        return [r for r in self._records if r.event == event]

    # -- attack surface for tests: simulate an intruder editing the log --

    def _tamper_replace(self, index: int, payload: dict) -> None:
        """(test hook) Overwrite a record's payload, recomputing only its
        own digest — the follow-on chain link then fails verification."""
        old = self._records[index]
        self._records[index] = AuditRecord(
            index=old.index,
            time_ms=old.time_ms,
            event=old.event,
            payload=dict(payload),
            prev_digest=old.prev_digest,
            digest=_commit(old.index, old.time_ms, old.event, dict(payload),
                           old.prev_digest),
        )

    def _tamper_delete(self, index: int) -> None:
        """(test hook) Delete a record outright."""
        del self._records[index]
