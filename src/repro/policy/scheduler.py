"""The continuous attestation scheduler: policies → periodic rounds.

The :class:`PolicyScheduler` compiles every registered
:class:`~repro.policy.model.MonitoringPolicy` into per-(policy, check,
VM) schedule entries and runs them against the discrete-event engine:

- **Deterministic phase jitter.** Each entry's first firing is offset
  by a pseudo-random phase in ``[0, period)`` derived *content-
  addressed* from a scheduler-level seed and the entry's identity, so
  a fleet of same-period checks spreads across the period instead of
  stampeding, and the same policy document yields the same phases
  regardless of registration order.
- **Batch-friendly draining.** All checks due on one tick are
  submitted to the :class:`~repro.controller.pipeline.
  AttestationPipeline` in the same simulated instant, so co-due checks
  on one attestation server share a batched, Merkle-aggregated
  appraisal exactly like an explicit fleet call.
- **Load shedding.** A configurable rounds budget caps both how much
  attestation work one tick may inject and how many policy rounds may
  be in flight at once; over-budget entries are shed
  *newest-coverage-first* (the check that has gone longest without a
  real verdict always wins a slot) and retried next tick. The
  concurrency half of the cap matters when the attestation path
  saturates — rounds slower than their periods throttle the scheduler
  to the path's real capacity instead of piling up.
- **Staleness accounting.** Only real verdicts (healthy/unhealthy)
  refresh an entry's coverage clock. Degraded ``UNREACHABLE`` results
  from an open circuit breaker age coverage until the staleness budget
  blows and the observatory's coverage alert fires — an unreachable
  attestation server must never silently extend a VM's clean bill of
  health.
- **In-place version migration.** Applying a higher-version document
  for the same policy retunes thresholds and budgets on surviving
  entries while keeping their alarm state, streaks and next-due times,
  so an upgrade drops no coverage and misses no firings.

Everything is driven by the engine clock and the controller's DRBG:
same seed + same policy sequence ⇒ byte-identical alarm-transition
timelines and round outcomes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.errors import CloudMonattError, PolicyError
from repro.common.identifiers import VmId
from repro.controller.pipeline import AttestationPipeline
from repro.crypto.drbg import HmacDrbg
from repro.policy.alarms import (
    ALARM_CRITICAL,
    AlarmStateMachine,
    AlarmTransition,
    VERDICT_HEALTHY,
    VERDICT_UNHEALTHY,
    VERDICT_UNREACHABLE,
)
from repro.policy.model import CheckSpec, MonitoringPolicy, NotificationRouting
from repro.properties.catalog import PropertyCatalog
from repro.sim.engine import Engine
from repro.telemetry import NULL_TELEMETRY, Telemetry

#: observatory event kinds this module publishes
EVENT_POLICY_ALARM = "policy_alarm"
EVENT_POLICY_COVERAGE = "policy_coverage"
EVENT_POLICY_SHED = "policy_shed"

_EntryKey = tuple[str, str, str]  # (policy, check, vid)


class _ScheduleEntry:
    """One (policy, check, VM) triple's live scheduling state."""

    __slots__ = ("key", "policy", "check", "vid", "owner", "routing",
                 "alarm", "next_due", "last_observed", "registered_ms",
                 "fired", "shed", "stale", "inflight")

    def __init__(self, key: _EntryKey, check: CheckSpec, owner: str,
                 routing: NotificationRouting, now: float, phase: float):
        self.key = key
        self.policy = key[0]
        self.check = check
        self.vid = key[2]
        self.owner = owner
        self.routing = routing
        self.alarm = AlarmStateMachine(
            check.warning_after, check.critical_after, check.clear_after)
        self.next_due = now + phase
        #: sim time of the last *real* verdict (coverage clock); starts
        #: at registration so a brand-new check is not born stale
        self.last_observed = now
        self.registered_ms = now
        self.fired = 0
        self.shed = 0
        self.stale = False
        self.inflight = False

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "check": self.check.name,
            "vid": self.vid,
            "property": self.check.prop.value,
            "period_ms": self.check.period_ms,
            "staleness_budget_ms": self.check.staleness_budget_ms,
            "state": self.alarm.state,
            "failure_streak": self.alarm.failure_streak,
            "healthy_streak": self.alarm.healthy_streak,
            "fired": self.fired,
            "shed": self.shed,
            "stale": self.stale,
            "last_observed_ms": self.last_observed,
            "next_due_ms": self.next_due,
        }


class PolicyScheduler:
    """Compiles monitoring policies onto the engine's event queue."""

    def __init__(
        self,
        engine: Engine,
        pipeline: AttestationPipeline,
        drbg: HmacDrbg,
        telemetry: Optional[Telemetry] = None,
        catalog: Optional[PropertyCatalog] = None,
        responder=None,
        audit: Optional[Callable[..., None]] = None,
        eligible: Optional[Callable[[str], bool]] = None,
        tick_ms: float = 250.0,
        rounds_per_tick: int = 32,
        shard: str = "",
    ):
        if tick_ms <= 0:
            raise PolicyError("tick_ms must be positive")
        if rounds_per_tick < 1:
            raise PolicyError("rounds_per_tick must be >= 1")
        self.engine = engine
        self.pipeline = pipeline
        self.telemetry = telemetry or NULL_TELEMETRY
        self.catalog = catalog
        self.responder = responder
        #: ``audit(vid, event, **payload)`` — the controller wires its
        #: provenance log here; ``None`` disables audit routing
        self.audit = audit
        #: ``eligible(vid) -> bool`` — is this VM still attestable? A
        #: terminated VM would otherwise poison every batch it shares,
        #: so its entries are retired at fire time instead
        self.eligible = eligible
        #: which control-plane shard this scheduler serves; empty for a
        #: single-controller deployment. The shard plane keys its merged
        #: policy status by this label, and :meth:`status` tags every
        #: entry with it so cross-shard snapshots stay attributable.
        self.shard = shard
        self.tick_ms = tick_ms
        #: per-tick attestation budget; excess due checks are shed
        self.rounds_per_tick = rounds_per_tick
        #: content-addressed root for phase jitter: consumed from the
        #: controller's DRBG exactly once, so phases depend only on the
        #: scheduler's seed and each entry's identity
        self._phase_seed = drbg.generate(32)
        self._policies: dict[str, MonitoringPolicy] = {}
        self._owners: dict[str, str] = {}
        self._entries: dict[_EntryKey, _ScheduleEntry] = {}
        #: policy rounds submitted but not yet resolved, across ticks —
        #: ``rounds_per_tick`` caps this, so a saturated attestation
        #: path (rounds slower than their periods) throttles the
        #: scheduler to its real capacity instead of cascading
        self._inflight_total = 0
        #: every alarm transition, in emission order — the timeline the
        #: determinism tests compare byte-for-byte
        self.transitions: list[AlarmTransition] = []
        self._tick_scheduled = False

    # ------------------------------------------------------------------
    # registration / versioned migration
    # ------------------------------------------------------------------

    def apply(self, policy: MonitoringPolicy, owner: str = "") -> dict:
        """Register a policy, or migrate to a higher version in place.

        Surviving (check, VM) entries keep their alarm state, streaks,
        coverage clock and next-due time (clamped to the new period so
        a tightened cadence takes effect immediately); removed entries
        are retired; new entries get content-addressed phase jitter.
        """
        policy.validate(self.catalog)
        existing = self._policies.get(policy.name)
        if existing is not None:
            if policy.version <= existing.version:
                raise PolicyError(
                    f"policy {policy.name!r} version {policy.version} does "
                    f"not supersede registered version {existing.version}"
                )
            if owner != self._owners.get(policy.name, ""):
                raise PolicyError(
                    f"policy {policy.name!r} is owned by another customer")
        now = self.engine.now
        desired: dict[_EntryKey, CheckSpec] = {
            (policy.name, check.name, vid): check
            for check in policy.checks
            for vid in policy.entities
        }
        migrated = created = 0
        for key in sorted(k for k in self._entries if k[0] == policy.name):
            if key not in desired:
                self._retire(self._entries.pop(key), reason="policy_update")
        for key in sorted(desired):
            check = desired[key]
            entry = self._entries.get(key)
            if entry is not None:
                entry.check = check
                entry.routing = policy.notifications
                entry.alarm.retune(check.warning_after, check.critical_after,
                                   check.clear_after)
                # never push a scheduled firing out; pull it in if the
                # new period is tighter than the remaining wait
                entry.next_due = min(entry.next_due, now + check.period_ms)
                migrated += 1
            else:
                self._entries[key] = _ScheduleEntry(
                    key, check, owner, policy.notifications, now,
                    phase=self._phase(key, check.period_ms),
                )
                created += 1
        self._policies[policy.name] = policy
        self._owners[policy.name] = owner
        # publish baseline coverage so the scoreboard shows fresh/total
        # checks from registration time, not only after a budget blows
        if policy.notifications.observatory:
            for vid in sorted(policy.entities):
                entry = self._entries[(policy.name, policy.checks[0].name, vid)]
                self._emit_coverage(entry, stale=entry.stale)
        if self.audit is not None:
            self.audit(
                VmId(policy.entities[0]), "policy_applied",
                policy=policy.name, version=policy.version,
                checks=len(policy.checks), entities=len(policy.entities),
                created=created, migrated=migrated,
            )
        self._ensure_tick()
        return {"policy": policy.name, "version": policy.version,
                "created": created, "migrated": migrated}

    def _phase(self, key: _EntryKey, period_ms: float) -> float:
        label = "/".join(key)
        rng = HmacDrbg(self._phase_seed, personalization=label)
        return float(rng.randint_below(max(1, int(period_ms))))

    def _retire(self, entry: _ScheduleEntry, reason: str) -> None:
        if entry.stale:
            # leaving coverage cleanly: clear the stale condition so the
            # coverage alert scope re-arms
            self._emit_coverage(entry, stale=False)
        if self.audit is not None and entry.routing.audit:
            self.audit(VmId(entry.vid), "policy_check_retired",
                       policy=entry.policy, check=entry.check.name,
                       reason=reason)

    # ------------------------------------------------------------------
    # the tick loop
    # ------------------------------------------------------------------

    def _ensure_tick(self) -> None:
        if not self._tick_scheduled and self._entries:
            self._tick_scheduled = True
            self.engine.schedule(self.tick_ms, self._tick)

    def _tick(self) -> None:
        self._tick_scheduled = False
        if not self._entries:
            return
        now = self.engine.now
        if self.eligible is not None:
            for key in sorted(self._entries):
                entry = self._entries[key]
                if entry.next_due <= now and not entry.inflight \
                        and not self.eligible(entry.vid):
                    self._retire(self._entries.pop(key), reason="vm_not_live")
        self._refresh_staleness(now)
        due = [entry for entry in self._entries.values()
               if entry.next_due <= now and not entry.inflight]
        # oldest coverage first: the check that has gone longest without
        # a real verdict always wins a budget slot; ties break on the
        # stable entry key
        due.sort(key=lambda e: (e.last_observed, e.next_due, e.key))
        budget = max(0, self.rounds_per_tick - self._inflight_total)
        for entry in due[budget:]:
            entry.shed += 1
            self.telemetry.counter("policy.checks.shed").inc(
                policy=entry.policy, property=entry.check.prop.value)
            # shed checks never start a round, so there is no round id —
            # the event is still flight-visible per VM (`repro explain`
            # surfaces sheds as fleet-pressure context)
            if entry.routing.observatory:
                self.telemetry.observe_event(
                    EVENT_POLICY_SHED,
                    policy=entry.policy, check=entry.check.name,
                    vid=entry.vid, property=entry.check.prop.value,
                    shed_count=entry.shed,
                )
        for entry in due[:budget]:
            self._fire(entry, now)
        self._ensure_tick()

    def _fire(self, entry: _ScheduleEntry, now: float) -> None:
        entry.fired += 1
        # drift-free cadence: advance from the scheduled time, catching
        # up in whole periods if shedding left the entry behind
        entry.next_due += entry.check.period_ms
        while entry.next_due <= now:
            entry.next_due += entry.check.period_ms
        entry.inflight = True
        self._inflight_total += 1
        self.telemetry.counter("policy.checks.fired").inc(
            policy=entry.policy, property=entry.check.prop.value)
        future = self.pipeline.submit(
            VmId(entry.vid), entry.check.prop,
            window_ms=entry.check.window_ms, source="policy",
        )
        key = entry.key
        future.add_done_callback(lambda f: self._on_round(key, f))

    def _on_round(self, key: _EntryKey, future) -> None:
        self._inflight_total -= 1
        entry = self._entries.get(key)
        if entry is None:
            return  # retired while the round was in flight
        entry.inflight = False
        now = self.engine.now
        exc = future.exception()
        if exc is not None:
            # a round that could not run proves nothing about the VM;
            # coverage keeps aging toward the staleness alert
            verdict = VERDICT_UNREACHABLE
            self.telemetry.counter("policy.rounds.failed").inc(
                policy=entry.policy, error=type(exc).__name__)
        else:
            outcome = future.result()
            if outcome.degraded:
                verdict = VERDICT_UNREACHABLE
            elif outcome.report.healthy:
                verdict = VERDICT_HEALTHY
                entry.last_observed = now
            else:
                verdict = VERDICT_UNHEALTHY
                entry.last_observed = now
        change = entry.alarm.observe(verdict)
        if change is not None:
            self._transition(entry, change, verdict, now,
                             round_id=getattr(future, "round_id", None))

    def _transition(self, entry: _ScheduleEntry, change: tuple[str, str],
                    verdict: str, now: float,
                    round_id: Optional[str] = None) -> None:
        old, new = change
        transition = AlarmTransition(
            time_ms=now, policy=entry.policy, check=entry.check.name,
            vid=entry.vid, old_state=old, new_state=new, verdict=verdict,
        )
        self.transitions.append(transition)
        self.telemetry.counter("policy.alarms.transitions").inc(
            policy=entry.policy)
        # the round that produced the deciding verdict joins the alarm
        # transition to the flight recorder's causal chain
        round_fields = {"round_id": round_id} if round_id is not None else {}
        if entry.routing.observatory:
            self.telemetry.observe_event(
                EVENT_POLICY_ALARM,
                policy=entry.policy, check=entry.check.name, vid=entry.vid,
                property=entry.check.prop.value, old_state=old,
                new_state=new, verdict=verdict, **round_fields,
            )
        if self.audit is not None and entry.routing.audit:
            self.audit(VmId(entry.vid), "policy_alarm",
                       policy=entry.policy, check=entry.check.name,
                       old_state=old, new_state=new, verdict=verdict,
                       **round_fields)
        if (new == ALARM_CRITICAL and entry.routing.auto_respond
                and self.responder is not None):
            try:
                self.responder.respond(VmId(entry.vid), entry.check.prop)
            except CloudMonattError:
                # remediation failure is already audited by the response
                # module; the alarm stays CRITICAL and will re-trigger
                pass

    # ------------------------------------------------------------------
    # staleness / coverage accounting
    # ------------------------------------------------------------------

    def _refresh_staleness(self, now: float) -> None:
        for key in sorted(self._entries):
            entry = self._entries[key]
            stale = (now - entry.last_observed) > entry.check.staleness_budget_ms
            if stale == entry.stale:
                continue
            entry.stale = stale
            if stale:
                self.telemetry.counter("policy.checks.stale").inc(
                    policy=entry.policy, property=entry.check.prop.value)
            self._emit_coverage(entry, stale=stale)
            if self.audit is not None and entry.routing.audit:
                self.audit(
                    VmId(entry.vid),
                    "policy_coverage_blown" if stale else "policy_coverage_restored",
                    policy=entry.policy, check=entry.check.name,
                    age_ms=now - entry.last_observed,
                    budget_ms=entry.check.staleness_budget_ms,
                )

    def _emit_coverage(self, entry: _ScheduleEntry, stale: bool) -> None:
        if not entry.routing.observatory:
            return
        vid_entries = [e for e in self._entries.values() if e.vid == entry.vid]
        self.telemetry.observe_event(
            EVENT_POLICY_COVERAGE,
            policy=entry.policy, check=entry.check.name, vid=entry.vid,
            property=entry.check.prop.value, stale=stale,
            age_ms=self.engine.now - entry.last_observed,
            budget_ms=entry.check.staleness_budget_ms,
            stale_checks=sum(1 for e in vid_entries if e.stale),
            total_checks=len(vid_entries),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def policy(self, name: str) -> MonitoringPolicy:
        """The registered policy by name, or :class:`PolicyError`."""
        try:
            return self._policies[name]
        except KeyError:
            raise PolicyError(f"no registered policy named {name!r}") from None

    def timeline(self) -> list[dict]:
        """Every alarm transition, in order, as plain dicts."""
        return [t.to_dict() for t in self.transitions]

    def status(self, owner: Optional[str] = None) -> dict:
        """Deterministic snapshot of policies, entries and timelines."""
        names = sorted(
            name for name in self._policies
            if owner is None or self._owners.get(name, "") == owner
        )
        entries = [
            self._entries[key].to_dict()
            for key in sorted(self._entries)
            if key[0] in names
        ]
        if self.shard:
            # sharded deployments key every entry by its owning shard so
            # merged cross-shard snapshots stay attributable; the
            # unsharded path keeps its exact historical bytes
            for entry in entries:
                entry["shard"] = self.shard
        status = {
            "policies": {
                name: {
                    "version": self._policies[name].version,
                    "entities": list(self._policies[name].entities),
                    "checks": [c.name for c in self._policies[name].checks],
                }
                for name in names
            },
            "entries": entries,
            "transitions": [
                t.to_dict() for t in self.transitions if t.policy in names
            ],
        }
        if self.shard:
            status["shard"] = self.shard
        return status
