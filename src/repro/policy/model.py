"""Declarative monitoring-policy documents.

A :class:`MonitoringPolicy` is a plain-data, versioned document the
customer registers with the controller: it names the **entities** (VM
identifiers) to keep under continuous attestation, the **checks** to
run against each of them (which security property, how often, how
stale a verdict may grow before coverage counts as blown, and the
consecutive-failure thresholds feeding the alarm state machine), and
the **notification routing** (observatory alerts, audit-log records,
optional controller auto-response).

Everything here is inert data: no clocks, no engine, no I/O. The
document round-trips through plain dicts (:meth:`MonitoringPolicy.
from_dict` / :meth:`~MonitoringPolicy.to_dict`) so policies can live
in JSON files, travel over the protocol endpoint, and diff cleanly.
Validation failures raise :class:`~repro.common.errors.PolicyError`
with a message naming the offending field — a bad policy must die at
registration time, never mid-run inside the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.common.errors import PolicyError
from repro.properties.catalog import PropertyCatalog, SecurityProperty

#: Current schema revision for serialized policy documents.
POLICY_SCHEMA = 1


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise PolicyError(message)


@dataclass(frozen=True)
class CheckSpec:
    """One periodic attestation check within a policy.

    ``staleness_budget_ms`` is the coverage contract: if no *real*
    verdict (healthy or unhealthy — not UNREACHABLE) has landed within
    the budget, the check is stale and the coverage alert fires.
    """

    name: str
    prop: SecurityProperty
    period_ms: float
    staleness_budget_ms: float
    #: consecutive failures before the alarm enters WARNING
    warning_after: int = 2
    #: consecutive failures before the alarm enters CRITICAL
    critical_after: int = 4
    #: consecutive healthy verdicts before a raised alarm returns to OK
    clear_after: int = 2
    #: optional monitor accumulation window passed through to attestation
    window_ms: Optional[float] = None

    def validate(self, catalog: Optional[PropertyCatalog] = None) -> None:
        """Raise :class:`PolicyError` unless the check is well-formed."""
        _require(bool(self.name), "check name must be non-empty")
        _require(self.period_ms > 0,
                 f"check {self.name!r}: period_ms must be positive, "
                 f"got {self.period_ms!r}")
        _require(self.staleness_budget_ms >= self.period_ms,
                 f"check {self.name!r}: staleness_budget_ms "
                 f"({self.staleness_budget_ms!r}) must be >= period_ms "
                 f"({self.period_ms!r})")
        _require(self.warning_after >= 1,
                 f"check {self.name!r}: warning_after must be >= 1")
        _require(self.critical_after >= self.warning_after,
                 f"check {self.name!r}: critical_after must be >= "
                 "warning_after")
        _require(self.clear_after >= 1,
                 f"check {self.name!r}: clear_after must be >= 1")
        if self.window_ms is not None:
            _require(self.window_ms > 0,
                     f"check {self.name!r}: window_ms must be positive")
        if catalog is not None:
            _require(catalog.supports(self.prop),
                     f"check {self.name!r}: property {self.prop.value!r} "
                     "is not served by the attestation catalog")

    def to_dict(self) -> dict:
        """The check as a policy-document dict (round-trips from_dict)."""
        doc = {
            "name": self.name,
            "property": self.prop.value,
            "period_ms": self.period_ms,
            "staleness_budget_ms": self.staleness_budget_ms,
            "warning_after": self.warning_after,
            "critical_after": self.critical_after,
            "clear_after": self.clear_after,
        }
        if self.window_ms is not None:
            doc["window_ms"] = self.window_ms
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "CheckSpec":
        """Parse one check from a policy document, validating fields."""
        _require(isinstance(doc, dict), "check must be a mapping")
        for key in ("name", "property", "period_ms", "staleness_budget_ms"):
            _require(key in doc, f"check is missing required field {key!r}")
        raw_prop = doc["property"]
        try:
            prop = SecurityProperty(raw_prop)
        except ValueError:
            known = ", ".join(p.value for p in SecurityProperty)
            raise PolicyError(
                f"check {doc.get('name')!r}: unknown property {raw_prop!r} "
                f"(known: {known})"
            ) from None
        try:
            spec = cls(
                name=str(doc["name"]),
                prop=prop,
                period_ms=float(doc["period_ms"]),
                staleness_budget_ms=float(doc["staleness_budget_ms"]),
                warning_after=int(doc.get("warning_after", 2)),
                critical_after=int(doc.get("critical_after", 4)),
                clear_after=int(doc.get("clear_after", 2)),
                window_ms=(float(doc["window_ms"])
                           if doc.get("window_ms") is not None else None),
            )
        except (TypeError, ValueError) as exc:
            raise PolicyError(
                f"check {doc.get('name')!r}: malformed field: {exc}"
            ) from None
        spec.validate()
        return spec


@dataclass(frozen=True)
class NotificationRouting:
    """Where alarm transitions and coverage breaches are delivered."""

    #: emit observatory events (alert rules, scoreboard coverage)
    observatory: bool = True
    #: append hash-chained audit-log records for every transition
    audit: bool = True
    #: invoke the controller's response module when an alarm goes CRITICAL
    auto_respond: bool = False

    def to_dict(self) -> dict:
        """The routing as a policy-document dict."""
        return {
            "observatory": self.observatory,
            "audit": self.audit,
            "auto_respond": self.auto_respond,
        }

    @classmethod
    def from_dict(cls, doc: Optional[dict]) -> "NotificationRouting":
        """Parse routing from a policy document (``None`` -> defaults)."""
        if doc is None:
            return cls()
        _require(isinstance(doc, dict), "notifications must be a mapping")
        unknown = set(doc) - {"observatory", "audit", "auto_respond"}
        _require(not unknown,
                 f"notifications has unknown fields: {sorted(unknown)}")
        return cls(
            observatory=bool(doc.get("observatory", True)),
            audit=bool(doc.get("audit", True)),
            auto_respond=bool(doc.get("auto_respond", False)),
        )


@dataclass(frozen=True)
class MonitoringPolicy:
    """A versioned monitoring-policy document: entities × checks."""

    name: str
    version: int
    entities: tuple[str, ...]
    checks: tuple[CheckSpec, ...] = field(default_factory=tuple)
    notifications: NotificationRouting = field(
        default_factory=NotificationRouting)

    def validate(self, catalog: Optional[PropertyCatalog] = None) -> None:
        """Reject malformed documents with a :class:`PolicyError`."""
        _require(bool(self.name), "policy name must be non-empty")
        _require(self.version >= 1,
                 f"policy {self.name!r}: version must be >= 1, "
                 f"got {self.version!r}")
        _require(len(self.entities) > 0,
                 f"policy {self.name!r}: entities must be non-empty")
        _require(len(set(self.entities)) == len(self.entities),
                 f"policy {self.name!r}: duplicate entities")
        _require(len(self.checks) > 0,
                 f"policy {self.name!r}: checks must be non-empty")
        names = [check.name for check in self.checks]
        _require(len(set(names)) == len(names),
                 f"policy {self.name!r}: duplicate check names")
        for check in self.checks:
            check.validate(catalog)

    def check(self, name: str) -> CheckSpec:
        """The named check, or :class:`PolicyError` if undefined."""
        for spec in self.checks:
            if spec.name == name:
                return spec
        raise PolicyError(f"policy {self.name!r} has no check {name!r}")

    def keys(self) -> Iterable[tuple[str, str]]:
        """Every (check name, vid) pair the policy compiles to."""
        for check in self.checks:
            for vid in self.entities:
                yield (check.name, vid)

    def to_dict(self) -> dict:
        """The policy as its canonical document (round-trips from_dict)."""
        return {
            "schema": POLICY_SCHEMA,
            "name": self.name,
            "version": self.version,
            "entities": list(self.entities),
            "checks": [check.to_dict() for check in self.checks],
            "notifications": self.notifications.to_dict(),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "MonitoringPolicy":
        """Parse and structurally validate a full policy document."""
        _require(isinstance(doc, dict), "policy must be a mapping")
        schema = doc.get("schema", POLICY_SCHEMA)
        _require(schema == POLICY_SCHEMA,
                 f"unsupported policy schema {schema!r} "
                 f"(this build reads schema {POLICY_SCHEMA})")
        for key in ("name", "version", "entities", "checks"):
            _require(key in doc, f"policy is missing required field {key!r}")
        _require(isinstance(doc["entities"], (list, tuple)),
                 "policy entities must be a list")
        _require(isinstance(doc["checks"], (list, tuple)),
                 "policy checks must be a list")
        try:
            version = int(doc["version"])
        except (TypeError, ValueError):
            raise PolicyError(
                f"policy {doc.get('name')!r}: version must be an integer"
            ) from None
        policy = cls(
            name=str(doc["name"]),
            version=version,
            entities=tuple(str(vid) for vid in doc["entities"]),
            checks=tuple(CheckSpec.from_dict(c) for c in doc["checks"]),
            notifications=NotificationRouting.from_dict(
                doc.get("notifications")),
        )
        policy.validate()
        return policy
