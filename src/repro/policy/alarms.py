"""Alarm state machines: OK / WARNING / CRITICAL with hysteresis.

Each (policy, check, VM) triple owns one :class:`AlarmStateMachine`.
Verdicts from attestation rounds feed :meth:`AlarmStateMachine.observe`
and the machine decides whether anything page-worthy happened:

- ``unhealthy`` extends the consecutive-failure streak; the state
  escalates to WARNING at ``warning_after`` failures and CRITICAL at
  ``critical_after``. Escalation is monotone — a failure never lowers
  a raised state.
- ``healthy`` extends the consecutive-healthy streak; only once
  ``clear_after`` healthy verdicts arrive in a row does a raised alarm
  return to OK. One good round after a bad stretch never clears — that
  is the hysteresis that stops a flapping VM from paging on every
  oscillation.
- ``unreachable`` (the PR-4 circuit breaker speaking, not the VM) is
  evidence of *nothing*: the state holds, the failure streak holds,
  and the healthy streak resets, because an unobserved VM cannot be
  accumulating proof of health.

The transition relation is pure and total — no clocks, no randomness —
so the test suite can exhaustively enumerate every verdict sequence
against an independent reference model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import PolicyError

ALARM_OK = "OK"
ALARM_WARNING = "WARNING"
ALARM_CRITICAL = "CRITICAL"

#: Severity order used for the monotone-escalation rule.
_SEVERITY = {ALARM_OK: 0, ALARM_WARNING: 1, ALARM_CRITICAL: 2}

VERDICT_HEALTHY = "healthy"
VERDICT_UNHEALTHY = "unhealthy"
VERDICT_UNREACHABLE = "unreachable"

VERDICTS = (VERDICT_HEALTHY, VERDICT_UNHEALTHY, VERDICT_UNREACHABLE)


@dataclass(frozen=True)
class AlarmTransition:
    """One observed state change, suitable for timelines and audits."""

    time_ms: float
    policy: str
    check: str
    vid: str
    old_state: str
    new_state: str
    verdict: str

    def to_dict(self) -> dict:
        """The transition as a plain dict (audit/export form)."""
        return {
            "time_ms": self.time_ms,
            "policy": self.policy,
            "check": self.check,
            "vid": self.vid,
            "old_state": self.old_state,
            "new_state": self.new_state,
            "verdict": self.verdict,
        }


class AlarmStateMachine:
    """Threshold-with-hysteresis alarm over a verdict stream."""

    __slots__ = ("warning_after", "critical_after", "clear_after",
                 "state", "failure_streak", "healthy_streak")

    def __init__(self, warning_after: int, critical_after: int,
                 clear_after: int):
        if warning_after < 1 or clear_after < 1:
            raise PolicyError("alarm thresholds must be >= 1")
        if critical_after < warning_after:
            raise PolicyError("critical_after must be >= warning_after")
        self.warning_after = warning_after
        self.critical_after = critical_after
        self.clear_after = clear_after
        self.state = ALARM_OK
        self.failure_streak = 0
        self.healthy_streak = 0

    def observe(self, verdict: str) -> tuple[str, str] | None:
        """Feed one verdict; return ``(old, new)`` if the state changed."""
        old = self.state
        if verdict == VERDICT_HEALTHY:
            self.failure_streak = 0
            self.healthy_streak += 1
            if self.state != ALARM_OK and self.healthy_streak >= self.clear_after:
                self.state = ALARM_OK
        elif verdict == VERDICT_UNHEALTHY:
            self.healthy_streak = 0
            self.failure_streak += 1
            if self.failure_streak >= self.critical_after:
                target = ALARM_CRITICAL
            elif self.failure_streak >= self.warning_after:
                target = ALARM_WARNING
            else:
                target = ALARM_OK
            # monotone escalation: a failure never lowers a raised state
            if _SEVERITY[target] > _SEVERITY[self.state]:
                self.state = target
        elif verdict == VERDICT_UNREACHABLE:
            # no evidence either way; health cannot accumulate unobserved
            self.healthy_streak = 0
        else:
            raise PolicyError(f"unknown verdict {verdict!r}")
        if self.state != old:
            return (old, self.state)
        return None

    def retune(self, warning_after: int, critical_after: int,
               clear_after: int) -> None:
        """Adopt new thresholds in place, keeping state and streaks.

        Used by policy-version migration: a v2 document may tighten or
        loosen thresholds without resetting the alarm's memory of the
        VM's recent behaviour.
        """
        if critical_after < warning_after or warning_after < 1 or clear_after < 1:
            raise PolicyError("invalid alarm thresholds")
        self.warning_after = warning_after
        self.critical_after = critical_after
        self.clear_after = clear_after

    def to_dict(self) -> dict:
        """Current alarm state and streaks as a plain dict."""
        return {
            "state": self.state,
            "failure_streak": self.failure_streak,
            "healthy_streak": self.healthy_streak,
        }
