"""Declarative monitoring policies and the continuous scheduler.

The paper's thesis is *continuous* security health monitoring; this
package turns the repo's request-scoped attestation into standing
coverage. :mod:`repro.policy.model` defines the plain-data policy
documents (entities × checks × notification routing),
:mod:`repro.policy.alarms` the OK/WARNING/CRITICAL state machines with
hysteresis, and :mod:`repro.policy.scheduler` the deterministic
periodic scheduler that drains due checks into the fleet attestation
pipeline.
"""

from repro.policy.alarms import (
    ALARM_CRITICAL,
    ALARM_OK,
    ALARM_WARNING,
    AlarmStateMachine,
    AlarmTransition,
    VERDICT_HEALTHY,
    VERDICT_UNHEALTHY,
    VERDICT_UNREACHABLE,
)
from repro.policy.model import (
    CheckSpec,
    MonitoringPolicy,
    NotificationRouting,
    POLICY_SCHEMA,
)
from repro.policy.scheduler import (
    EVENT_POLICY_ALARM,
    EVENT_POLICY_COVERAGE,
    PolicyScheduler,
)

__all__ = [
    "ALARM_CRITICAL",
    "ALARM_OK",
    "ALARM_WARNING",
    "AlarmStateMachine",
    "AlarmTransition",
    "CheckSpec",
    "EVENT_POLICY_ALARM",
    "EVENT_POLICY_COVERAGE",
    "MonitoringPolicy",
    "NotificationRouting",
    "POLICY_SCHEMA",
    "PolicyScheduler",
    "VERDICT_HEALTHY",
    "VERDICT_UNHEALTHY",
    "VERDICT_UNREACHABLE",
]
