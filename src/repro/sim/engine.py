"""The event engine.

Design notes:

- Time is a ``float`` in **milliseconds** (see :mod:`repro.common.units`).
- Events at the same timestamp fire in scheduling order (a monotonically
  increasing sequence number breaks ties), so runs are deterministic.
- Cancellation is lazy: a cancelled event stays in the heap but is skipped
  when popped. This keeps :meth:`Engine.cancel` O(1). To stop cancelled
  entries accumulating forever under cancel-heavy workloads (periodic
  attestation re-arming, scheduler timeslice churn), the heap is
  compacted whenever cancelled entries outnumber live ones — an O(n)
  rebuild amortised against the ≥ n/2 dead entries it removes.
- Heap entries are plain ``(time, seq, event)`` tuples: every sift in
  push/pop compares entries, and tuple comparison (resolved on the
  float, then the unique int) is several times cheaper than a generated
  dataclass ``__lt__``. The event payload rides along uncompared
  (``_Event`` is ``__slots__``-based, so its mutable flags are plain
  slot loads).
- The ``run``/``run_until`` loops are deliberately flat: the heap pop,
  the queue, and the error class are bound to locals outside the loop,
  ``run`` inlines :meth:`step` instead of paying a method call per
  event, and the sequence counter is a plain int. At 10k-VM fleet scale
  the engine pushes through hundreds of thousands of events per
  simulated run, so per-event interpreter overhead is the ceiling
  (``benchmarks/bench_crypto_floor.py`` tracks it).
- Compaction rebuilds the queue **in place** (slice assignment), never
  rebinding ``self._queue`` — the run loops hold a local alias to the
  list, and a callback-triggered cancel may compact mid-run.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from repro.common.errors import StateError


class _Event:
    """Mutable per-event state carried inside a heap tuple."""

    __slots__ = ("time", "callback", "args", "cancelled", "popped")

    def __init__(self, time: float, callback: Callable[..., None], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: set once the event leaves the heap (fired or skipped), so a late
        #: cancel of an already-popped event cannot skew the cancelled count
        self.popped = False


class EventHandle:
    """Opaque handle returned by :meth:`Engine.schedule`; allows cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulation time at which the event will fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled


class Engine:
    """A deterministic discrete-event simulator.

    Typical use::

        engine = Engine()
        engine.schedule(10.0, lambda: print("at t=10ms"))
        engine.run_until(100.0)
    """

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, _Event]] = []
        self._seq = 0
        self._running = False
        self._cancelled = 0
        #: total events executed over the engine's lifetime (telemetry)
        self.events_fired = 0
        #: mirror-replay override for :attr:`pending_count` (see
        #: :meth:`sync_stats`); ``None`` = report the live queue
        self._pending_override: Optional[int] = None

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Live (non-cancelled) events still queued — O(1)."""
        if self._pending_override is not None:
            return self._pending_override
        return len(self._queue) - self._cancelled

    def sync_stats(
        self, events_fired: int, pending: Optional[int]
    ) -> None:
        """Pin the telemetry-visible queue stats to observed values.

        Companion to :meth:`sync_clock` for mirror engines: the worker
        process that really ran the events reports its lifetime count
        and queue depth, so the mirror's sampled ``sim.*`` gauges match
        the serial run's bytes. ``pending=None`` clears the override
        (the live queue becomes authoritative again — used when a
        mirror is promoted after a worker crash).
        """
        self.events_fired = events_fired
        self._pending_override = pending

    def sync_clock(self, now_ms: float) -> None:
        """Pin the clock to an externally observed time.

        Used by the parallel shard executor (:mod:`repro.shard.
        parallel`) to keep a coordinator-side mirror engine's clock in
        lock-step with the worker process that actually ran the events,
        so clock-stamped replays (observatory events, alert records)
        land on the same timeline bytes. Never call this on an engine
        that is executing its own queue.
        """
        self._now = now_ms

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now.

        ``delay`` must be non-negative; a zero delay fires after all
        events already scheduled for the current instant.
        """
        if delay < 0:
            raise StateError(f"cannot schedule into the past (delay={delay})")
        event = _Event(self._now + delay, callback, args)
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (event.time, seq, event))
        return EventHandle(event)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule at an absolute simulation time (must not be in the past)."""
        return self.schedule(time - self._now, callback, *args)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event. Cancelling twice is a no-op."""
        event = handle._event
        if event.cancelled or event.popped:
            event.cancelled = True
            return
        event.cancelled = True
        self._cancelled += 1
        if self._cancelled > len(self._queue) // 2 and len(self._queue) >= 64:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place (module notes)."""
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        heapify(queue)
        self._cancelled = 0

    def step(self) -> bool:
        """Run the next pending event. Returns False if the queue is empty."""
        queue = self._queue
        while queue:
            event = heappop(queue)[2]
            event.popped = True
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = event.time
            self.events_fired += 1
            event.callback(*event.args)
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run all events with timestamps ``<= end_time``.

        Leaves ``now`` at least ``end_time`` even if the queue drains
        early, so follow-on scheduling is relative to the horizon.

        Re-entrancy: an event callback may itself call ``run_until``
        (e.g. a periodic attestation firing network calls, each of which
        advances the clock). Inner calls may push ``now`` past the outer
        horizon; the monotonic-time guards keep time consistent in that
        case.
        """
        if end_time < self._now:
            raise StateError("run_until target is in the past")
        queue = self._queue
        pop = heappop
        while queue and queue[0][0] <= end_time:
            time_, _, event = pop(queue)
            event.popped = True
            if event.cancelled:
                self._cancelled -= 1
                continue
            if time_ > self._now:
                self._now = time_
            self.events_fired += 1
            event.callback(*event.args)
        if end_time > self._now:
            self._now = end_time

    def run(self, max_events: int = 1_000_000) -> int:
        """Run until the queue is empty; returns the event count executed.

        ``max_events`` guards against runaway self-rescheduling loops.
        """
        queue = self._queue
        pop = heappop
        executed = 0
        while queue:
            time_, _, event = pop(queue)
            event.popped = True
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = time_
            self.events_fired += 1
            event.callback(*event.args)
            executed += 1
            if executed >= max_events:
                raise StateError(f"exceeded {max_events} events; runaway loop?")
        return executed

    def pending(self) -> int:
        """Number of live events still queued (see :attr:`pending_count`)."""
        return self.pending_count
