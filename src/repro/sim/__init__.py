"""Discrete-event simulation kernel.

A minimal, deterministic event engine: a priority queue of timestamped
callbacks with stable FIFO ordering for simultaneous events. The Xen
scheduler simulation, the network latency model and the VM lifecycle
timing all run on one shared engine so their clocks agree.

:mod:`repro.sim.rounds` adds the deterministic future abstraction the
fleet attestation pipeline uses to keep many logical rounds in flight
at once without threads or an asyncio loop.
"""

from repro.sim.engine import Engine, EventHandle
from repro.sim.rounds import RoundFuture, gather_results, resolve_each

__all__ = [
    "Engine",
    "EventHandle",
    "RoundFuture",
    "gather_results",
    "resolve_each",
]
