"""Discrete-event simulation kernel.

A minimal, deterministic event engine: a priority queue of timestamped
callbacks with stable FIFO ordering for simultaneous events. The Xen
scheduler simulation, the network latency model and the VM lifecycle
timing all run on one shared engine so their clocks agree.
"""

from repro.sim.engine import Engine, EventHandle

__all__ = ["Engine", "EventHandle"]
