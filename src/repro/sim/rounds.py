"""Deterministic round futures for overlapped protocol rounds.

The fleet attestation pipeline lets many logical Fig. 3 rounds be *in
flight* at once: callers submit requests and receive a
:class:`RoundFuture` that resolves when the pipeline drains its queue.
Unlike ``asyncio`` futures there is no event loop and no thread — every
state transition happens synchronously inside an engine callback, so
resolution order is a pure function of the seed and the submission
order, and two same-seed runs resolve every future at identical
simulated times with identical values.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Optional, TypeVar

from repro.common.errors import StateError

T = TypeVar("T")

_PENDING = "pending"
_DONE = "done"


class RoundFuture(Generic[T]):
    """The eventual outcome of one logical attestation round.

    A future resolves exactly once, with either a result or an
    exception. Done-callbacks added before resolution run in addition
    order at resolution time (inside the resolving engine event);
    callbacks added after resolution run immediately.
    """

    __slots__ = ("_state", "_result", "_exception", "_callbacks", "round_id")

    def __init__(self) -> None:
        self._state = _PENDING
        self._result: Optional[T] = None
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[["RoundFuture[T]"], None]] = []
        #: flight-recorder round id stamped by the submitting pipeline
        #: (``None`` when round tracking is off)
        self.round_id: Optional[str] = None

    @property
    def done(self) -> bool:
        """Whether the round has resolved (result or exception)."""
        return self._state == _DONE

    def result(self) -> T:
        """The round's result; raises its exception if it failed."""
        if self._state != _DONE:
            raise StateError("round has not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._result  # type: ignore[return-value]

    def exception(self) -> Optional[BaseException]:
        """The round's exception, or ``None`` if it succeeded."""
        if self._state != _DONE:
            raise StateError("round has not resolved yet")
        return self._exception

    def set_result(self, value: T) -> None:
        """Resolve the round successfully."""
        self._resolve(result=value)

    def set_exception(self, exc: BaseException) -> None:
        """Resolve the round with a failure."""
        self._resolve(exception=exc)

    def add_done_callback(
        self, callback: Callable[["RoundFuture[T]"], None]
    ) -> None:
        """Run ``callback(future)`` once the round resolves."""
        if self._state == _DONE:
            callback(self)
            return
        self._callbacks.append(callback)

    def _resolve(
        self,
        result: Optional[T] = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        if self._state == _DONE:
            raise StateError("round already resolved")
        self._state = _DONE
        self._result = result
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


def gather_results(futures: list[RoundFuture[T]]) -> list[T]:
    """Results of resolved futures, in order; raises the first failure."""
    return [future.result() for future in futures]


def resolve_each(
    futures: list[RoundFuture[T]], outcomes: list[Any]
) -> None:
    """Resolve ``futures[i]`` with ``outcomes[i]``.

    An outcome that is a ``BaseException`` instance resolves its future
    as a failure (the :func:`asyncio.gather` ``return_exceptions``
    idiom); anything else resolves it as a result.
    """
    if len(futures) != len(outcomes):
        raise StateError("futures and outcomes must align")
    for future, outcome in zip(futures, outcomes):
        if isinstance(outcome, BaseException):
            future.set_exception(outcome)
        else:
            future.set_result(outcome)
