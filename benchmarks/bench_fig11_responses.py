"""Fig. 11 — Attestation reaction times during VM runtime.

For each remediation strategy (Termination, Suspension, Migration) and
each VM flavor, the bench launches a victim, co-locates the CPU
availability attack, triggers a runtime attestation that fails, and
measures the attestation time and the response's reaction time.

Paper shape: Termination is the fastest response and Migration the
slowest; migration time grows with VM size (memory copy dominates);
attestation time is roughly constant across strategies.
"""

from _tables import print_table

from repro import CloudMonatt, SecurityProperty
from repro.controller.response import ResponseAction

FLAVORS = ["small", "medium", "large"]
STRATEGIES = [ResponseAction.TERMINATE, ResponseAction.SUSPEND,
              ResponseAction.MIGRATE]


def run_cell(strategy: ResponseAction, flavor: str, seed: int) -> dict:
    cloud = CloudMonatt(num_servers=2, num_pcpus=4, seed=seed)
    cloud.controller.response.set_policy(
        SecurityProperty.CPU_AVAILABILITY, strategy
    )
    customer = cloud.register_customer("alice")
    victim = customer.launch_vm(
        flavor,
        "ubuntu",
        properties=[SecurityProperty.CPU_AVAILABILITY],
        workload={"name": "cpu_bound"},
        pins=[0] * cloud.flavors[flavor].vcpus,
    )
    victim_server = cloud.controller.database.vm(victim.vid).server
    customer.launch_vm(
        "medium",
        "ubuntu",
        workload={"name": "cpu_availability_attack"},
        pins=[0, 0],
        force_server=str(victim_server),
    )
    result = customer.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
    assert not result.report.healthy, "the attack must be detected"
    assert result.response is not None
    return {
        "attest_ms": result.attest_ms,
        "reaction_ms": result.response["reaction_ms"],
    }


def run_matrix() -> dict[tuple[str, str], dict]:
    results = {}
    for index, strategy in enumerate(STRATEGIES):
        for jndex, flavor in enumerate(FLAVORS):
            results[(strategy.value, flavor)] = run_cell(
                strategy, flavor, seed=500 + 10 * index + jndex
            )
    return results


def test_fig11_response_reaction_times(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    rows = [
        [strategy, flavor, f"{cell['attest_ms'] / 1000.0:.2f}",
         f"{cell['reaction_ms'] / 1000.0:.2f}",
         f"{(cell['attest_ms'] + cell['reaction_ms']) / 1000.0:.2f}"]
        for (strategy, flavor), cell in results.items()
    ]
    print_table(
        "Fig. 11: attestation + response times (seconds)",
        ["strategy", "flavor", "attestation", "response", "total"],
        rows,
    )

    for flavor in FLAVORS:
        termination = results[("terminate", flavor)]["reaction_ms"]
        suspension = results[("suspend", flavor)]["reaction_ms"]
        migration = results[("migrate", flavor)]["reaction_ms"]
        # ordering: Termination < Suspension < Migration
        assert termination < suspension < migration, flavor
    # migration grows with VM memory size
    assert (
        results[("migrate", "small")]["reaction_ms"]
        < results[("migrate", "medium")]["reaction_ms"]
        < results[("migrate", "large")]["reaction_ms"]
    )
    # suspension grows with VM memory size too (state save)
    assert (
        results[("suspend", "small")]["reaction_ms"]
        < results[("suspend", "large")]["reaction_ms"]
    )
