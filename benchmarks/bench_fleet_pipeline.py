"""Wall-clock benchmark for the fleet-scale attestation pipeline.

Launches a fleet of VMs (untimed), then measures real wall-clock time
for attesting every VM once:

- **serial**: one ``customer.attest()`` round per VM — the
  pre-pipeline baseline, each round paying its own session keygen,
  quote signatures and report signatures;
- **fleet**: one ``customer.attest_fleet()`` call — overlapped rounds,
  coalesced host-side measurement, one Merkle multi-quote per
  (server, property) batch and one batch signature per protocol hop.

Both paths run on fresh same-seed clouds with the key pool prewarmed
(``prewarm_for_fleet``), and the benchmark asserts the fleet reports
are byte-identical to the serial ones before it reports any speedup —
a fast batch that changes appraisal results would be a bug, not a win.

Outputs ``BENCH_fleet_pipeline.json`` and appends a table to
``bench_tables.txt``. Exits non-zero if the fleet/serial speedup falls
below ``--min-speedup`` (default 5x at the full 32-VM fleet; the CI
smoke job runs ``--quick --min-speedup 3``).

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet_pipeline.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _tables import print_table  # noqa: E402

from repro import CloudMonatt, SecurityProperty  # noqa: E402
from repro.crypto.signatures import clear_verify_memo  # noqa: E402

SEED = 7
PROPERTY = SecurityProperty.RUNTIME_INTEGRITY


def _build_fleet(num_vms: int, key_bits: int):
    """A fresh cloud hosting ``num_vms`` attestable VMs (untimed setup)."""
    num_servers = max(2, num_vms // 8)
    cloud = CloudMonatt(
        num_servers=num_servers,
        num_pcpus=(num_vms // num_servers) + 2,
        seed=SEED,
        key_bits=key_bits,
    )
    customer = cloud.register_customer("alice")
    vids = [
        customer.launch_vm(
            "small", "ubuntu",
            properties=[PROPERTY],
            workload={"name": "idle"},
        ).vid
        for _ in range(num_vms)
    ]
    # size the key pool for the whole burst (serial worst case: one
    # session per round, plus the warm-up round)
    cloud.prewarm_for_fleet(num_vms + 1)
    return cloud, customer, vids


def bench_serial(num_vms: int, key_bits: int) -> tuple[dict, list]:
    clear_verify_memo()
    cloud, customer, vids = _build_fleet(num_vms, key_bits)
    customer.attest(vids[0], PROPERTY)  # warm up channels/caches
    start = time.perf_counter()
    results = [customer.attest(vid, PROPERTY) for vid in vids]
    seconds = time.perf_counter() - start
    reports = [r.report.to_dict() for r in results]
    return {
        "n": num_vms,
        "seconds": round(seconds, 6),
        "rounds_per_sec": round(num_vms / seconds, 3),
    }, reports


def bench_fleet(num_vms: int, key_bits: int) -> tuple[dict, list]:
    clear_verify_memo()
    cloud, customer, vids = _build_fleet(num_vms, key_bits)
    customer.attest(vids[0], PROPERTY)  # warm up channels/caches
    requests = [(vid, PROPERTY) for vid in vids]
    start = time.perf_counter()
    results = customer.attest_fleet(requests)
    seconds = time.perf_counter() - start
    reports = [r.report.to_dict() for r in results]
    return {
        "n": num_vms,
        "seconds": round(seconds, 6),
        "rounds_per_sec": round(num_vms / seconds, 3),
    }, reports


def run(args: argparse.Namespace) -> dict:
    num_vms = 8 if args.quick else args.vms
    serial, serial_reports = bench_serial(num_vms, args.key_bits)
    fleet, fleet_reports = bench_fleet(num_vms, args.key_bits)
    if fleet_reports != serial_reports:
        raise AssertionError(
            "fleet reports diverge from serial reports — the pipeline "
            "changed appraisal results, refusing to report a speedup"
        )
    return {
        "num_vms": num_vms,
        "serial": serial,
        "fleet": fleet,
        "speedup": round(serial["seconds"] / fleet["seconds"], 2),
        "reports_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="8-VM fleet (CI smoke)")
    parser.add_argument("--vms", type=int, default=32,
                        help="fleet size for the full run (default 32)")
    parser.add_argument("--key-bits", type=int, default=1024,
                        help="RSA modulus size (default 1024, the paper's "
                             "key size; the sim default is 512)")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_fleet_pipeline.json"),
                        help="machine-readable output path")
    parser.add_argument("--tables", default=str(REPO_ROOT / "bench_tables.txt"),
                        help="append the human table here ('' to skip)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="fail if fleet/serial wall-clock speedup drops "
                             "below this (0 disables)")
    args = parser.parse_args(argv)

    results = run(args)
    title = (
        f"Fleet attestation pipeline ({results['num_vms']} VMs, "
        f"{args.key_bits}-bit keys{', quick' if args.quick else ''})"
    )
    headers = ["path", "rounds/sec", "n", "seconds"]
    rows = [
        ["serial attest() per VM", f"{results['serial']['rounds_per_sec']:,.1f}",
         results["serial"]["n"], f"{results['serial']['seconds']:.3f}"],
        ["attest_fleet() pipeline", f"{results['fleet']['rounds_per_sec']:,.1f}",
         results["fleet"]["n"], f"{results['fleet']['seconds']:.3f}"],
        ["fleet / serial speedup", f"{results['speedup']:.2f}x", "", ""],
    ]
    print_table(title, headers, rows)
    print(f"reports byte-identical to serial: {results['reports_identical']}")

    payload = {
        "benchmark": "fleet_pipeline",
        "seed": SEED,
        "key_bits": args.key_bits,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if args.tables:
        with open(args.tables, "a") as fh:
            fh.write(f"\n=== {title} ===\n")
            widths = [max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
                      for i in range(len(headers))]
            fh.write("  ".join(str(h).ljust(w)
                               for h, w in zip(headers, widths)) + "\n")
            for row in rows:
                fh.write("  ".join(str(c).ljust(w)
                                   for c, w in zip(row, widths)) + "\n")
        print(f"appended table to {args.tables}")

    if args.min_speedup and results["speedup"] < args.min_speedup:
        print(
            f"FAIL: fleet pipeline speedup {results['speedup']:.2f}x "
            f"< required {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
