"""Raw-speed floor of the crypto and event-engine hot paths.

Sweeps the modular-exponentiation ladder (built-in ``pow`` baseline,
fixed-window, Montgomery-form, accelerated GMP backend), key generation
(serial pure, serial accelerated, multiprocess keygen farm at several
worker counts), and the flattened discrete-event engine — the three
floors every attestation round bottoms out on.

All variants are transcript-transparent (identical integers, identical
bytes; ``tests/test_fastpath_determinism.py`` pins the full on/off
matrix), so this harness measures *only* wall-clock.

Outputs ``BENCH_crypto_floor.json`` (repo root by default) and appends
a table to ``bench_tables.txt``. The ``--min-speedup`` gate fails the
run (exit 1) unless, versus the same-run pure baselines:

- best sign throughput is ≥ 3x the ``pow``-CRT baseline, and
- farm-enabled pool prefill is ≥ 4x the serial pure-python prefill

(the PR's acceptance bar; ``--min-speedup`` scales both targets, 0
disables the gate). ``--quick`` shrinks the sign/engine iteration
counts but keeps the keygen profile, because keys/sec over too few
keys is dominated by candidate-count luck rather than throughput.

Usage::

    PYTHONPATH=src python benchmarks/bench_crypto_floor.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _tables import print_table  # noqa: E402

from repro.crypto import accel, fastpath, keygen_farm  # noqa: E402
from repro.crypto.drbg import HmacDrbg  # noqa: E402
from repro.crypto.keypool import KeyPool  # noqa: E402
from repro.crypto.rsa import generate_keypair  # noqa: E402
from repro.crypto.signatures import clear_verify_memo, sign, verify  # noqa: E402
from repro.sim.engine import Engine  # noqa: E402

SEED = 13

SIGN_TARGET = 3.0
"""Acceptance bar: best sign ops/sec over the ``pow``-CRT baseline."""

PREFILL_TARGET = 4.0
"""Acceptance bar: farm prefill keys/sec over serial pure prefill."""


def _timed(fn, n: int) -> dict:
    start = time.perf_counter()
    for _ in range(n):
        fn()
    seconds = time.perf_counter() - start
    return {
        "n": n,
        "seconds": round(seconds, 6),
        "ops_per_sec": round(n / seconds, 3) if seconds > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# modexp ladder: sign / verify
# ----------------------------------------------------------------------

#: variant name -> fastpath overrides (ordered slowest-first for the table)
SIGN_VARIANTS = {
    "pow": {},
    "montgomery": {"modexp_montgomery": True},
    "fixed_window": {"modexp_fixed_window": True},
    "accel": {"accel_backend": True},
}


def bench_sign_variants(key_bits: int, n: int) -> dict:
    keypair = generate_keypair(HmacDrbg(SEED, "floor-sig").fork("k"), key_bits)
    message = {"vid": "vm-1", "measurements": {"m": 1.0}, "nonce": b"x" * 16}
    reference = sign(keypair.private, message)
    results: dict = {}
    # the pure-python walks are reference implementations and slower
    # than C pow; give them fewer iterations so the sweep stays cheap
    iterations = {"pow": n, "montgomery": max(20, n // 4),
                  "fixed_window": max(20, n // 2), "accel": n * 2}
    for name, overrides in SIGN_VARIANTS.items():
        with fastpath.overridden(**overrides):
            assert sign(keypair.private, message) == reference
            results[name] = _timed(
                lambda: sign(keypair.private, message), iterations[name]
            )
    with fastpath.overridden(verify_memo=False):
        results["verify_pow"] = _timed(
            lambda: verify(keypair.public, message, reference), n
        )
    with fastpath.overridden(verify_memo=False, accel_backend=True):
        results["verify_accel"] = _timed(
            lambda: verify(keypair.public, message, reference), n
        )
    return results


# ----------------------------------------------------------------------
# keygen: serial vs accelerated vs farm
# ----------------------------------------------------------------------


def _prefill_rate(count: int, key_bits: int, **overrides) -> dict:
    """Wall-clock a cold KeyPool prefill under one configuration."""
    with fastpath.overridden(key_pool=True, **overrides):
        pool = KeyPool(HmacDrbg(SEED, "floor-pool"), key_bits)
        start = time.perf_counter()
        pool.prefill(count)
        seconds = time.perf_counter() - start
    return {
        "n": count,
        "seconds": round(seconds, 6),
        "keys_per_sec": round(count / seconds, 3) if seconds > 0 else 0.0,
    }


def bench_keygen(key_bits: int, n_keys: int) -> dict:
    results = {
        "serial_pure": _prefill_rate(n_keys, key_bits),
        "serial_accel": _prefill_rate(n_keys, key_bits, accel_backend=True),
    }
    cpus = os.cpu_count() or 1
    sweep = sorted({w for w in (1, 2, 4, cpus) if w <= max(2, cpus)})
    for workers in sweep:
        results[f"farm_w{workers}"] = _prefill_rate(
            n_keys, key_bits,
            accel_backend=True, keygen_farm=True, keygen_farm_workers=workers,
        )
    # the headline configuration: farm on, one worker per CPU
    results["farm_auto"] = _prefill_rate(
        n_keys, key_bits, accel_backend=True, keygen_farm=True,
    )
    return results


# ----------------------------------------------------------------------
# event engine
# ----------------------------------------------------------------------


def bench_engine(total_events: int) -> dict:
    engine = Engine()
    sink = []

    def burst() -> None:
        schedule = engine.schedule
        for i in range(1000):
            schedule(float(i % 97), sink.append, i)
        engine.run()
        sink.clear()

    plain = _timed(burst, max(1, total_events // 1000))
    fired = engine.events_fired
    plain["n"] = fired
    plain["ops_per_sec"] = round(fired / plain["seconds"], 3)

    cancel_engine = Engine()

    def cancel_heavy() -> None:
        # 60% cancels: drives the in-place compaction path
        handles = [
            cancel_engine.schedule(float(i % 89), sink.append, i)
            for i in range(1000)
        ]
        for handle in handles[: 600]:
            cancel_engine.cancel(handle)
        cancel_engine.run()
        sink.clear()

    cancels = _timed(cancel_heavy, max(1, total_events // 2000))
    cancels["n"] = cancel_engine.events_fired
    cancels["ops_per_sec"] = round(cancels["n"] / cancels["seconds"], 3)
    return {"events": plain, "events_cancel_heavy": cancels}


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------


def run(args: argparse.Namespace) -> dict:
    n_sign = 300 if args.quick else 1500
    n_keys = args.keys
    engine_events = 100_000 if args.quick else 500_000

    fastpath.reset_stats()
    clear_verify_memo()
    results: dict = {}
    results["sign"] = bench_sign_variants(args.key_bits, n_sign)
    results["keygen"] = bench_keygen(args.key_bits, n_keys)
    results["engine"] = bench_engine(engine_events)

    best_sign = max(
        results["sign"][name]["ops_per_sec"] for name in SIGN_VARIANTS
    )
    results["sign_speedup"] = round(
        best_sign / results["sign"]["pow"]["ops_per_sec"], 2
    )
    results["prefill_speedup"] = round(
        results["keygen"]["farm_auto"]["keys_per_sec"]
        / results["keygen"]["serial_pure"]["keys_per_sec"],
        2,
    )
    return results


def render_rows(results: dict) -> list[list]:
    rows = []
    for name in SIGN_VARIANTS:
        entry = results["sign"][name]
        rows.append([f"RSA sign ({name})", f"{entry['ops_per_sec']:,.1f}",
                     entry["n"], f"{entry['seconds']:.3f}"])
    for name in ("verify_pow", "verify_accel"):
        entry = results["sign"][name]
        rows.append([f"RSA {name.replace('_', ' ')}",
                     f"{entry['ops_per_sec']:,.1f}",
                     entry["n"], f"{entry['seconds']:.3f}"])
    for name, entry in results["keygen"].items():
        rows.append([f"keypool prefill ({name})",
                     f"{entry['keys_per_sec']:,.1f}",
                     entry["n"], f"{entry['seconds']:.3f}"])
    for name, entry in results["engine"].items():
        rows.append([f"engine {name.replace('_', ' ')}",
                     f"{entry['ops_per_sec']:,.1f}",
                     entry["n"], f"{entry['seconds']:.3f}"])
    rows.append(["best sign / pow-CRT sign speedup",
                 f"{results['sign_speedup']:.2f}x", "", ""])
    rows.append(["farm prefill / serial pure prefill speedup",
                 f"{results['prefill_speedup']:.2f}x", "", ""])
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sign/engine iteration counts (CI smoke); "
                             "the keygen profile is kept at full size")
    parser.add_argument("--key-bits", type=int, default=1024,
                        help="RSA modulus size (default 1024, matching the "
                             "paper's key size and BENCH_wallclock.json)")
    parser.add_argument("--keys", type=int, default=16,
                        help="keys per prefill measurement (default 16)")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_crypto_floor.json"),
                        help="machine-readable output path")
    parser.add_argument("--tables", default=str(REPO_ROOT / "bench_tables.txt"),
                        help="append the human table here ('' to skip)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="scales the acceptance targets (3x sign, 4x "
                             "farm prefill); 0 disables the gate")
    args = parser.parse_args(argv)

    results = run(args)
    title = (
        f"Crypto floor (ops/sec, {args.key_bits}-bit keys, "
        f"backend={accel.backend_name()}"
        f"{', quick' if args.quick else ''})"
    )
    headers = ["hot path", "ops/sec", "n", "seconds"]
    rows = render_rows(results)
    print_table(title, headers, rows)

    payload = {
        "benchmark": "crypto_floor",
        "seed": SEED,
        "key_bits": args.key_bits,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "accel": {"available": accel.AVAILABLE,
                  "backend": accel.backend_name()},
        "farm": keygen_farm.farm_config(),
        "fastpath_stats": fastpath.stats(),
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if args.tables:
        with open(args.tables, "a") as fh:
            fh.write(f"\n=== {title} ===\n")
            widths = [max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
                      for i in range(len(headers))]
            fh.write("  ".join(str(h).ljust(w)
                               for h, w in zip(headers, widths)) + "\n")
            for row in rows:
                fh.write("  ".join(str(c).ljust(w)
                                   for c, w in zip(row, widths)) + "\n")
        print(f"appended table to {args.tables}")

    if args.min_speedup:
        failures = []
        if results["sign_speedup"] < SIGN_TARGET * args.min_speedup:
            failures.append(
                f"sign speedup {results['sign_speedup']:.2f}x < required "
                f"{SIGN_TARGET * args.min_speedup:.1f}x"
            )
        if results["prefill_speedup"] < PREFILL_TARGET * args.min_speedup:
            failures.append(
                f"farm prefill speedup {results['prefill_speedup']:.2f}x < "
                f"required {PREFILL_TARGET * args.min_speedup:.1f}x"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
