"""Wall-clock overhead of the continuous attestation scheduler.

The policy scheduler is a cadence layer on top of the attestation
pipeline: ticks, due-entry sorting, alarm state machines, staleness
accounting. None of that should cost measurable wall-clock time next to
the crypto the rounds themselves pay. This benchmark pins that claim:

- **policy**: register a monitoring policy over the fleet and
  ``run_for`` a fixed window of simulated time, recording exactly when
  the scheduler submits each round;
- **bare**: on a fresh same-seed cloud, replay those *same* rounds at
  the *same* simulated instants straight into the pipeline — identical
  attestation work, no scheduler.

Both paths are timed in *process CPU time* (the whole simulation is
CPU-bound and single-threaded, so CPU time is the same quantity as
wall-clock minus other-process scheduling noise). Each of ``--repeat``
(default 5) iterations times the two paths back-to-back. The *median*
pairwise ``policy/bare - 1`` is reported; the gate tests the *best*
(lowest) pair. The two paths do byte-aligned crypto work, so any
single pair's ratio moves only with host interference — but a *real*
scheduler cost shifts every pair up, so requiring the best of five
pairs to clear the bound keeps the gate robust on noisy hosts while
still catching a genuine regression. The benchmark exits non-zero if
the best pair exceeds ``--max-overhead`` (default 2%).

Outputs ``BENCH_policy_overhead.json`` and appends a table to
``bench_tables.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_policy_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _tables import print_table  # noqa: E402

from repro import CloudMonatt, SecurityProperty  # noqa: E402
from repro.common.identifiers import VmId  # noqa: E402
from repro.crypto.signatures import clear_verify_memo  # noqa: E402
from repro.policy import MonitoringPolicy  # noqa: E402

SEED = 7
PROPERTY = SecurityProperty.RUNTIME_INTEGRITY


def _period_ms(num_vms: int) -> float:
    """Check period that keeps the attestation path comfortably under
    capacity: one singleton round costs ~700 ms of *simulated* protocol
    time, so a period of 1 s per VM holds utilisation near 70%. A
    saturated path would make the comparison meaningless — the two
    runs would complete different amounts of work."""
    return 1_000.0 * num_vms


def _build_fleet(num_vms: int, key_bits: int):
    num_servers = max(2, num_vms // 8)
    cloud = CloudMonatt(
        num_servers=num_servers,
        num_pcpus=(num_vms // num_servers) + 2,
        seed=SEED,
        key_bits=key_bits,
    )
    customer = cloud.register_customer("alice")
    vids = [
        customer.launch_vm(
            "small", "ubuntu",
            properties=[PROPERTY],
            workload={"name": "idle"},
        ).vid
        for _ in range(num_vms)
    ]
    # prewarm one session key per expected round (plus slack): keypair
    # generation has stochastic cost (random prime search), and a
    # single extra on-demand keygen would swamp the sub-2% bookkeeping
    # signal this benchmark measures
    cloud.prewarm_for_fleet(5 * num_vms + 10)
    return cloud, customer, vids


def _policy_for(vids) -> MonitoringPolicy:
    period = _period_ms(len(vids))
    return MonitoringPolicy.from_dict({
        "name": "bench",
        "version": 1,
        "entities": [str(vid) for vid in vids],
        "checks": [{
            "name": "runtime",
            "property": PROPERTY.value,
            "period_ms": period,
            "staleness_budget_ms": 4 * period,
        }],
        # keep the comparison about the scheduler itself, not the
        # observatory fan-out the bare path has no equivalent for
        "notifications": {"observatory": False, "audit": False},
    })


def _drain_remaining(cloud, pending, limit_ms: float = 60_000.0) -> None:
    """Run the engine until every captured round future resolved."""
    waited = 0.0
    while any(not f.done for f in pending) and waited < limit_ms:
        cloud.run_for(500.0)
        waited += 500.0
    unresolved = sum(1 for f in pending if not f.done)
    if unresolved:
        raise AssertionError(
            f"{unresolved} round(s) never resolved — the configured load "
            "saturates the attestation path; the comparison would be "
            "between different amounts of completed work"
        )


def bench_policy(num_vms: int, key_bits: int,
                 duration_ms: float) -> tuple[float, list]:
    """Time a monitored run; return (seconds, submission schedule)."""
    clear_verify_memo()
    cloud, customer, vids = _build_fleet(num_vms, key_bits)
    customer.attest(vids[0], PROPERTY)  # warm up channels/caches
    schedule: list[tuple[float, str]] = []
    pending: list = []
    original = cloud.controller.pipeline.submit

    def spy(vid, prop, window_ms=None, source="api"):
        schedule.append((cloud.engine.now - start_ms, str(vid)))
        future = original(vid, prop, window_ms=window_ms, source=source)
        pending.append(future)
        return future

    cloud.controller.pipeline.submit = spy
    # registration is a signed protocol exchange — one-time setup cost,
    # not steady-state scheduler overhead, so it stays outside the timed
    # region (the bare path performs the same exchange untimed); the
    # schedule epoch starts after it so replay instants line up exactly
    customer.register_policy(_policy_for(vids))
    start_ms = cloud.now
    start = time.process_time()
    cloud.run_for(duration_ms)
    # freeze the injection budget so the drain phase below completes
    # the in-flight rounds without the scheduler starting new ones
    cloud.controller.policy_scheduler.rounds_per_tick = 0
    _drain_remaining(cloud, pending)
    seconds = time.process_time() - start
    return seconds, schedule


def bench_bare(num_vms: int, key_bits: int, duration_ms: float,
               schedule: list) -> float:
    """Replay the policy run's rounds with no scheduler in the loop."""
    clear_verify_memo()
    cloud, customer, vids = _build_fleet(num_vms, key_bits)
    customer.attest(vids[0], PROPERTY)  # warm up channels/caches
    # perform the same registration exchange as the policy run, then
    # empty the scheduler: registration consumes DRBG/keypool material,
    # and skipping it here would hand every replayed round a *different*
    # RSA key than the policy run used — per-key modexp cost varies by a
    # few percent, which would drown the bookkeeping signal
    customer.register_policy(_policy_for(vids))
    cloud.controller.policy_scheduler._entries.clear()
    pipeline = cloud.controller.pipeline
    pending: list = []
    start = time.process_time()
    for delay_ms, vid in schedule:
        cloud.engine.schedule(
            delay_ms,
            lambda v=vid: pending.append(pipeline.submit(VmId(v), PROPERTY)),
        )
    # the policy run's drain phase can fire past the window proper, so
    # run to the last replayed round before draining
    cloud.run_for(max(duration_ms, max(d for d, _ in schedule) + 1.0))
    _drain_remaining(cloud, pending)
    seconds = time.process_time() - start
    if len(pending) != len(schedule):
        raise AssertionError("bare replay lost rounds")
    return seconds


def run(args: argparse.Namespace) -> dict:
    num_vms = 4 if args.quick else args.vms
    duration_ms = args.duration_ms or 8 * _period_ms(num_vms)
    policy_times, bare_times = [], []
    schedule: list = []
    # each repeat times the two paths back-to-back, so slow machine
    # drift (frequency scaling, cache pressure) cancels within a pair;
    # the median pairwise ratio then discards interference outliers
    for _ in range(args.repeat):
        seconds, schedule = bench_policy(num_vms, args.key_bits, duration_ms)
        policy_times.append(seconds)
        bare_times.append(
            bench_bare(num_vms, args.key_bits, duration_ms, schedule))
    ratios = sorted(p / b for p, b in zip(policy_times, bare_times))
    overhead = ratios[len(ratios) // 2] - 1.0
    # a real scheduler cost shifts every pair's ratio up, while host
    # interference scatters individual pairs both ways — gating on the
    # best pair tolerates the scatter without missing a true regression
    overhead_best = ratios[0] - 1.0
    policy_s, bare_s = min(policy_times), min(bare_times)
    rounds = len(schedule)
    return {
        "num_vms": num_vms,
        "duration_ms": duration_ms,
        "rounds": rounds,
        "policy": {"seconds": round(policy_s, 6),
                   "rounds_per_sec": round(rounds / policy_s, 3)},
        "bare": {"seconds": round(bare_s, 6),
                 "rounds_per_sec": round(rounds / bare_s, 3)},
        "overhead": round(overhead, 4),
        "overhead_best": round(overhead_best, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="4-VM fleet (CI smoke)")
    parser.add_argument("--vms", type=int, default=8,
                        help="fleet size for the full run (default 8)")
    parser.add_argument("--duration-ms", type=float, default=0.0,
                        help="simulated monitoring window (default: eight "
                             "check periods)")
    parser.add_argument("--key-bits", type=int, default=1024,
                        help="RSA modulus size (default 1024)")
    parser.add_argument("--repeat", type=int, default=5,
                        help="back-to-back timing pairs; the median "
                             "pairwise ratio is reported (default 5)")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_policy_overhead.json"),
                        help="machine-readable output path")
    parser.add_argument("--tables", default=str(REPO_ROOT / "bench_tables.txt"),
                        help="append the human table here ('' to skip)")
    parser.add_argument("--max-overhead", type=float, default=0.02,
                        help="fail if scheduler overhead exceeds this "
                             "fraction (default 0.02; 0 disables)")
    args = parser.parse_args(argv)

    results = run(args)
    title = (
        f"Policy scheduler overhead ({results['num_vms']} VMs, "
        f"{results['rounds']} rounds over {results['duration_ms']:.0f} ms, "
        f"{args.key_bits}-bit keys{', quick' if args.quick else ''})"
    )
    headers = ["path", "seconds", "rounds/sec"]
    rows = [
        ["policy scheduler", f"{results['policy']['seconds']:.3f}",
         f"{results['policy']['rounds_per_sec']:,.1f}"],
        ["bare pipeline replay", f"{results['bare']['seconds']:.3f}",
         f"{results['bare']['rounds_per_sec']:,.1f}"],
        ["scheduler overhead (median pair)", f"{results['overhead']:+.2%}", ""],
        ["scheduler overhead (best pair)",
         f"{results['overhead_best']:+.2%}", ""],
    ]
    print_table(title, headers, rows)

    payload = {
        "benchmark": "policy_overhead",
        "seed": SEED,
        "key_bits": args.key_bits,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if args.tables:
        with open(args.tables, "a") as fh:
            fh.write(f"\n=== {title} ===\n")
            widths = [max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
                      for i in range(len(headers))]
            fh.write("  ".join(str(h).ljust(w)
                               for h, w in zip(headers, widths)) + "\n")
            for row in rows:
                fh.write("  ".join(str(c).ljust(w)
                                   for c, w in zip(row, widths)) + "\n")
        print(f"appended table to {args.tables}")

    if args.max_overhead and results["overhead_best"] > args.max_overhead:
        print(
            f"FAIL: scheduler overhead {results['overhead_best']:+.2%} "
            f"(best of {args.repeat} pairs) exceeds {args.max_overhead:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
