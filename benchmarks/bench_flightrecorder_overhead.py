"""Wall-clock overhead of flight-recorder round tracking.

The flight recorder (``src/repro/telemetry/observatory/
flightrecorder.py``) correlates every telemetry signal of an
attestation round under one ``round_id``. Assembly is lazy — the join
happens at export time — so the only cost the hot path pays is the
tagging itself: minting an id per round, pushing/popping the tracer's
round scope, and stamping the id into span attrs and event fields.
This benchmark pins that cost under 2%:

- **recorded**: a telemetry-enabled cloud with round tracking on (the
  default); drive a mix of on-demand and fleet-batched attestation
  rounds;
- **untracked**: a fresh same-seed cloud built with
  ``flight_recorder_enabled=False`` — identical crypto, identical
  simulated schedule, no round ids anywhere.

Both paths are timed in *process CPU time* (the simulation is
CPU-bound and single-threaded). Each of ``--repeat`` (default 5)
iterations times the two paths back-to-back; the *median* pairwise
``recorded/untracked - 1`` is reported and the gate tests the *best*
(lowest) pair — a real tagging cost shifts every pair up, while host
interference scatters individual pairs both ways. The benchmark exits
non-zero if the best pair exceeds ``--max-overhead`` (default 2%).

Outputs ``BENCH_flightrecorder_overhead.json`` and appends a table to
``bench_tables.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_flightrecorder_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _tables import print_table  # noqa: E402

from repro import CloudMonatt, SecurityProperty  # noqa: E402
from repro.crypto.signatures import clear_verify_memo  # noqa: E402

SEED = 7
PROPERTY = SecurityProperty.RUNTIME_INTEGRITY


def _build_fleet(num_vms: int, key_bits: int, rounds: int,
                 flight_recorder: bool):
    cloud = CloudMonatt(
        num_servers=2,
        num_pcpus=(num_vms // 2) + 2,
        seed=SEED,
        key_bits=key_bits,
        telemetry_enabled=True,
        flight_recorder_enabled=flight_recorder,
    )
    customer = cloud.register_customer("alice")
    vids = [
        customer.launch_vm(
            "small", "ubuntu",
            properties=[PROPERTY],
            workload={"name": "idle"},
        ).vid
        for _ in range(num_vms)
    ]
    # prewarm session keys: keypair generation has stochastic cost
    # (random prime search), and one on-demand keygen would swamp the
    # sub-2% tagging signal this benchmark measures
    cloud.prewarm_for_fleet(rounds + 10)
    return cloud, customer, vids


def bench_path(num_vms: int, key_bits: int, waves: int,
               flight_recorder: bool) -> tuple[float, int]:
    """Time one path; return (seconds, completed rounds)."""
    clear_verify_memo()
    rounds = waves * num_vms + num_vms
    cloud, customer, vids = _build_fleet(
        num_vms, key_bits, rounds, flight_recorder
    )
    customer.attest(vids[0], PROPERTY)  # warm up channels/caches
    completed = 0
    start = time.process_time()
    # fleet waves exercise the batched legs (shared spans, adopted
    # round ids), singleton rounds the plain Q1->Q2->Q3 chain
    for _ in range(waves):
        results = customer.attest_fleet([(vid, PROPERTY) for vid in vids])
        completed += len(results)
    for vid in vids:
        customer.attest(vid, PROPERTY)
        completed += 1
    seconds = time.process_time() - start
    if completed != rounds:
        raise AssertionError("benchmark lost rounds")
    return seconds, completed


def run(args: argparse.Namespace) -> dict:
    num_vms = 4 if args.quick else args.vms
    waves = 2 if args.quick else args.waves
    recorded_times, untracked_times = [], []
    rounds = 0
    # each repeat times the two paths back-to-back, so slow machine
    # drift (frequency scaling, cache pressure) cancels within a pair;
    # the median pairwise ratio then discards interference outliers
    for _ in range(args.repeat):
        seconds, rounds = bench_path(num_vms, args.key_bits, waves, True)
        recorded_times.append(seconds)
        seconds, _ = bench_path(num_vms, args.key_bits, waves, False)
        untracked_times.append(seconds)
    ratios = sorted(r / u for r, u in zip(recorded_times, untracked_times))
    overhead = ratios[len(ratios) // 2] - 1.0
    overhead_best = ratios[0] - 1.0
    recorded_s, untracked_s = min(recorded_times), min(untracked_times)
    return {
        "num_vms": num_vms,
        "waves": waves,
        "rounds": rounds,
        "recorded": {"seconds": round(recorded_s, 6),
                     "rounds_per_sec": round(rounds / recorded_s, 3)},
        "untracked": {"seconds": round(untracked_s, 6),
                      "rounds_per_sec": round(rounds / untracked_s, 3)},
        "overhead": round(overhead, 4),
        "overhead_best": round(overhead_best, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="4-VM fleet, 2 waves (CI smoke)")
    parser.add_argument("--vms", type=int, default=8,
                        help="fleet size for the full run (default 8)")
    parser.add_argument("--waves", type=int, default=4,
                        help="fleet-batched waves per run (default 4)")
    parser.add_argument("--key-bits", type=int, default=1024,
                        help="RSA modulus size (default 1024)")
    parser.add_argument("--repeat", type=int, default=5,
                        help="back-to-back timing pairs; the median "
                             "pairwise ratio is reported (default 5)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help=argparse.SUPPRESS)  # regression-guard driver
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_flightrecorder_overhead.json"),
        help="machine-readable output path")
    parser.add_argument("--tables", default=str(REPO_ROOT / "bench_tables.txt"),
                        help="append the human table here ('' to skip)")
    parser.add_argument("--max-overhead", type=float, default=0.02,
                        help="fail if round-tracking overhead exceeds this "
                             "fraction (default 0.02; 0 disables)")
    args = parser.parse_args(argv)

    results = run(args)
    title = (
        f"Flight-recorder overhead ({results['num_vms']} VMs, "
        f"{results['rounds']} rounds, {args.key_bits}-bit keys"
        f"{', quick' if args.quick else ''})"
    )
    headers = ["path", "seconds", "rounds/sec"]
    rows = [
        ["round tracking on", f"{results['recorded']['seconds']:.3f}",
         f"{results['recorded']['rounds_per_sec']:,.1f}"],
        ["round tracking off", f"{results['untracked']['seconds']:.3f}",
         f"{results['untracked']['rounds_per_sec']:,.1f}"],
        ["tagging overhead (median pair)", f"{results['overhead']:+.2%}", ""],
        ["tagging overhead (best pair)",
         f"{results['overhead_best']:+.2%}", ""],
    ]
    print_table(title, headers, rows)

    payload = {
        "benchmark": "flightrecorder_overhead",
        "seed": SEED,
        "key_bits": args.key_bits,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if args.tables:
        with open(args.tables, "a") as fh:
            fh.write(f"\n=== {title} ===\n")
            widths = [max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
                      for i in range(len(headers))]
            fh.write("  ".join(str(h).ljust(w)
                               for h, w in zip(headers, widths)) + "\n")
            for row in rows:
                fh.write("  ".join(str(c).ljust(w)
                                   for c, w in zip(row, widths)) + "\n")
        print(f"appended table to {args.tables}")

    if args.max_overhead and results["overhead_best"] > args.max_overhead:
        print(
            f"FAIL: round-tracking overhead {results['overhead_best']:+.2%} "
            f"(best of {args.repeat} pairs) exceeds {args.max_overhead:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
