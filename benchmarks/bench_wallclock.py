"""Wall-clock throughput harness for the crypto/wire/engine fast paths.

Unlike the figure benchmarks (which measure *simulated* milliseconds),
this harness measures real wall-clock throughput of the hot paths the
fast-path PR optimises, in ops/sec:

- attestation rounds/sec, pooled (key pool prefilled, caches on) vs
  unpooled (every fast path disabled — the pre-optimisation baseline);
- secure-channel handshakes/sec;
- sign and verify ops/sec (verify with the memo cold and hot);
- RSA keypair generation/sec, direct vs served from a prefilled pool;
- record seal/open ops/sec;
- discrete-event engine events/sec.

Outputs ``BENCH_wallclock.json`` (machine-readable, at the repo root by
default) and appends a human-readable table to ``bench_tables.txt``.
Exits non-zero if pooled attestation throughput fails to beat the
unpooled baseline by ``--min-speedup`` (default 5x, the PR's acceptance
bar) — the CI smoke job relies on that.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _tables import print_table  # noqa: E402

from repro import CloudMonatt, SecurityProperty  # noqa: E402
from repro.common.rng import DeterministicRng  # noqa: E402
from repro.crypto import fastpath  # noqa: E402
from repro.crypto.certificates import CertificateAuthority  # noqa: E402
from repro.crypto.drbg import HmacDrbg  # noqa: E402
from repro.crypto.keypool import KeyPool  # noqa: E402
from repro.crypto.rsa import generate_keypair  # noqa: E402
from repro.crypto.signatures import clear_verify_memo, sign, verify  # noqa: E402
from repro.crypto.symmetric import SymmetricKey, open_sealed, seal  # noqa: E402
from repro.network.network import Network  # noqa: E402
from repro.network.secure_channel import SecureEndpoint  # noqa: E402
from repro.sim.engine import Engine  # noqa: E402

SEED = 7


def _timed(fn, n: int) -> dict:
    """Run ``fn()`` ``n`` times; return ops/sec and totals."""
    start = time.perf_counter()
    for _ in range(n):
        fn()
    seconds = time.perf_counter() - start
    return {
        "n": n,
        "seconds": round(seconds, 6),
        "ops_per_sec": round(n / seconds, 3) if seconds > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# primitive layers
# ----------------------------------------------------------------------


def bench_keygen(key_bits: int, n: int) -> dict:
    drbg = HmacDrbg(SEED, "bench-keygen")
    counter = iter(range(10 ** 9))
    return _timed(
        lambda: generate_keypair(drbg.fork(f"k-{next(counter)}"), key_bits), n
    )


def bench_keypool_take(key_bits: int, n: int) -> dict:
    """take() throughput from a prefilled pool, with the prefill cost
    reported alongside (that is the amortised work, not hidden)."""
    pool = KeyPool(HmacDrbg(SEED, "bench-pool"), key_bits)
    start = time.perf_counter()
    pool.prefill(n)
    prefill_seconds = time.perf_counter() - start
    result = _timed(pool.take, n)
    result["prefill_seconds"] = round(prefill_seconds, 6)
    return result


def bench_sign_verify(key_bits: int, n: int) -> dict:
    keypair = generate_keypair(HmacDrbg(SEED, "bench-sig").fork("k"), key_bits)
    message = {"vid": "vm-1", "measurements": {"m": 1.0}, "nonce": b"x" * 16}
    signature = sign(keypair.private, message)
    results = {"sign": _timed(lambda: sign(keypair.private, message), n)}
    with fastpath.overridden(verify_memo=False):
        results["verify"] = _timed(
            lambda: verify(keypair.public, message, signature), n
        )
    clear_verify_memo()
    verify(keypair.public, message, signature)  # warm the memo
    results["verify_memo_hit"] = _timed(
        lambda: verify(keypair.public, message, signature), n
    )
    return results


def bench_seal_open(n: int) -> dict:
    key = SymmetricKey(b"k" * 32)
    nonce = b"n" * 16
    plaintext = b"p" * 512
    sealed = seal(key, plaintext, nonce)
    return {
        "seal": _timed(lambda: seal(key, plaintext, nonce), n),
        "open": _timed(lambda: open_sealed(key, sealed), n),
    }


def bench_engine_events(n: int) -> dict:
    engine = Engine()
    sink = []

    def burst() -> None:
        for i in range(1000):
            engine.schedule(float(i % 97), sink.append, i)
        engine.run()
        sink.clear()

    result = _timed(burst, max(1, n // 1000))
    fired = engine.events_fired
    result["n"] = fired
    result["ops_per_sec"] = round(fired / result["seconds"], 3)
    return result


def bench_handshakes(key_bits: int, n: int) -> dict:
    engine = Engine()
    network = Network(engine, DeterministicRng(SEED).child("net"), latency_ms=0.0)
    drbg = HmacDrbg(SEED, "bench-hs")
    ca = CertificateAuthority("pCA", drbg.fork("ca"), key_bits=key_bits)
    initiator = SecureEndpoint("alice", network, drbg.fork("a"), ca, key_bits)
    responder = SecureEndpoint("bob", network, drbg.fork("b"), ca, key_bits)
    responder.handler = lambda peer, body: {"ok": True}

    def handshake_and_call() -> None:
        initiator._channels.clear()  # force a fresh handshake
        initiator.call("bob", {"ping": 1})

    return _timed(handshake_and_call, n)


# ----------------------------------------------------------------------
# full attestation rounds
# ----------------------------------------------------------------------


def bench_attestation(key_bits: int, rounds: int, pooled: bool) -> dict:
    if pooled:
        context = fastpath.overridden(key_pool=True, verify_memo=True,
                                      cache_symmetric_subkeys=True,
                                      cache_wire_encodings=True)
    else:
        context = fastpath.all_disabled()
    with context:
        clear_verify_memo()
        cloud = CloudMonatt(num_servers=1, seed=SEED, key_bits=key_bits)
        prefill_seconds = 0.0
        if pooled:
            server = next(iter(cloud.servers.values()))
            start = time.perf_counter()
            # launch + warm-up + timed rounds, one session key each
            server.trust_module.key_pool.prefill(rounds + 4)
            prefill_seconds = time.perf_counter() - start
        customer = cloud.register_customer("alice")
        vm = customer.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.RUNTIME_INTEGRITY],
        )
        customer.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)  # warm up
        result = _timed(
            lambda: customer.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY),
            rounds,
        )
        if pooled:
            result["prefill_seconds"] = round(prefill_seconds, 6)
        return result


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------


def run(args: argparse.Namespace) -> dict:
    n_fast = 200 if args.quick else 2000
    n_keys = 4 if args.quick else 16
    rounds = 5 if args.quick else 20

    fastpath.reset_stats()
    results: dict = {}
    results["attest_rounds_unpooled"] = bench_attestation(
        args.key_bits, rounds, pooled=False
    )
    results["attest_rounds_pooled"] = bench_attestation(
        args.key_bits, rounds, pooled=True
    )
    results["attest_speedup"] = round(
        results["attest_rounds_pooled"]["ops_per_sec"]
        / results["attest_rounds_unpooled"]["ops_per_sec"],
        2,
    )
    results["handshakes"] = bench_handshakes(args.key_bits, max(4, rounds))
    results["keypair_gen"] = bench_keygen(args.key_bits, n_keys)
    results["keypool_take_prefilled"] = bench_keypool_take(args.key_bits, n_keys)
    results.update(bench_sign_verify(args.key_bits, n_fast))
    results.update(bench_seal_open(n_fast))
    results["engine_events"] = bench_engine_events(50_000 if args.quick else 500_000)
    return results


ROW_ORDER = [
    ("attest_rounds_unpooled", "attestation rounds (unpooled, uncached)"),
    ("attest_rounds_pooled", "attestation rounds (pooled + caches)"),
    ("handshakes", "channel handshakes"),
    ("keypair_gen", "RSA keypair generation"),
    ("keypool_take_prefilled", "key pool take (prefilled)"),
    ("sign", "RSA sign"),
    ("verify", "RSA verify (memo off)"),
    ("verify_memo_hit", "RSA verify (memo hit)"),
    ("seal", "record seal (512 B)"),
    ("open", "record open (512 B)"),
    ("engine_events", "engine events"),
]


def render_rows(results: dict) -> list[list]:
    rows = []
    for key, label in ROW_ORDER:
        entry = results[key]
        rows.append([label, f"{entry['ops_per_sec']:,.1f}", entry["n"],
                     f"{entry['seconds']:.3f}"])
    rows.append(["pooled / unpooled attestation speedup",
                 f"{results['attest_speedup']:.2f}x", "", ""])
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small iteration counts (CI smoke)")
    parser.add_argument("--key-bits", type=int, default=1024,
                        help="RSA modulus size (default 1024, the paper's "
                             "key size, where Fig. 9's keygen-dominates "
                             "observation holds; the sim default is 512)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_wallclock.json"),
                        help="machine-readable output path")
    parser.add_argument("--tables", default=str(REPO_ROOT / "bench_tables.txt"),
                        help="append the human table here ('' to skip)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="fail if pooled/unpooled attestation speedup "
                             "drops below this (0 disables)")
    args = parser.parse_args(argv)

    results = run(args)
    title = (
        f"Wall-clock throughput (ops/sec, {args.key_bits}-bit keys"
        f"{', quick' if args.quick else ''})"
    )
    headers = ["hot path", "ops/sec", "n", "seconds"]
    rows = render_rows(results)
    print_table(title, headers, rows)

    payload = {
        "benchmark": "wallclock",
        "seed": SEED,
        "key_bits": args.key_bits,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "fastpath_stats": fastpath.stats(),
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if args.tables:
        with open(args.tables, "a") as fh:
            fh.write(f"\n=== {title} ===\n")
            widths = [max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
                      for i in range(len(headers))]
            fh.write("  ".join(str(h).ljust(w)
                               for h, w in zip(headers, widths)) + "\n")
            for row in rows:
                fh.write("  ".join(str(c).ljust(w)
                                   for c, w in zip(row, widths)) + "\n")
        print(f"appended table to {args.tables}")

    if args.min_speedup and results["attest_speedup"] < args.min_speedup:
        print(
            f"FAIL: pooled attestation speedup {results['attest_speedup']:.2f}x "
            f"< required {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
