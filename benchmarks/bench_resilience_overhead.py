"""Resilience-layer overhead on the fault-free attestation path.

The fault-tolerance layer (``repro.resilience`` + the per-leg hooks in
``repro.network``) is always armed: every protocol round runs inside a
``RetryExecutor``, every wire crossing is classified into a Fig. 3 leg
and checked against a timeout budget, and the controller consults a
circuit breaker per attestation round. This bench bounds what that
costs when nothing fails.

Claims checked:
  * the happy-path overhead is <2% of an attestation round (the layer
    adds closure calls and dict lookups against a signing-dominated
    protocol);
  * the layer is outcome-transparent when no faults fire: a same-seed
    run with retries disabled (``NO_RETRY``) produces an identical
    report and final clock.

Overhead method (same discipline as
``bench_telemetry_overhead.py``): an end-to-end A/B is noise-bound on
a shared host, so the bound is built bottom-up — tight-loop
microbenchmarks give per-operation costs (a ``RetryExecutor.run`` wrap
around a no-op, one breaker allow/record cycle, one leg
classification); the instrumented round gives exact operation counts;
cost × count × 2 (safety factor) against the best measured round wall
time bounds the overhead. The resulting table is appended to
``bench_tables.txt``.
"""

import gc
import time
from pathlib import Path

from _tables import print_table

from repro import CloudMonatt, SecurityProperty
from repro.crypto.drbg import HmacDrbg
from repro.resilience import (
    NO_RETRY,
    LEG_CONTROLLER_AS,
    RetryExecutor,
    CircuitBreaker,
    leg_of,
)
from repro.sim.engine import Engine

REPO_ROOT = Path(__file__).resolve().parents[1]
ROUNDS = 30
MICRO_OPS = 20_000
SAFETY_FACTOR = 2.0
OVERHEAD_BUDGET = 0.02

#: RetryExecutor.run wraps per attestation round: customer Q1 round,
#: controller attest service, AS appraiser (the periodic push loop is
#: not on the one-shot path)
RETRY_RUNS_PER_ROUND = 3
#: breaker consultations per round: one allow() + one record_success()
BREAKER_CYCLES_PER_ROUND = 1


def _build_cloud(retry_policy=None):
    cloud = CloudMonatt(num_servers=2, seed=77, retry_policy=retry_policy)
    alice = cloud.register_customer("alice")
    vm = alice.launch_vm(
        "small", "ubuntu", properties=[SecurityProperty.STARTUP_INTEGRITY]
    )
    assert vm.accepted
    return cloud, alice, vm


def _crossings_per_round(cloud, alice, vm) -> int:
    """Count wire crossings in one attestation round (leg_of call sites)."""
    crossings = 0
    original = cloud.network._cross_wire

    def counting(envelope):
        nonlocal crossings
        crossings += 1
        return original(envelope)

    cloud.network._cross_wire = counting
    try:
        alice.attest(vm.vid, SecurityProperty.STARTUP_INTEGRITY)
    finally:
        cloud.network._cross_wire = original
    return crossings


def _per_op_costs() -> dict[str, float]:
    """Best-of-3 per-operation happy-path costs in seconds."""
    costs = {"retry_run": float("inf"), "breaker": float("inf"),
             "leg": float("inf")}
    for _ in range(3):
        executor = RetryExecutor(
            engine=Engine(), drbg=HmacDrbg(1, "bench-retry")
        )
        operation = lambda: None  # noqa: E731 - the no-op under test
        start = time.perf_counter()
        for _ in range(MICRO_OPS):
            executor.run(operation)
        costs["retry_run"] = min(
            costs["retry_run"], (time.perf_counter() - start) / MICRO_OPS
        )
        breaker = CircuitBreaker(clock=lambda: 0.0)
        start = time.perf_counter()
        for _ in range(MICRO_OPS):
            breaker.allow()
            breaker.record_success()
        costs["breaker"] = min(
            costs["breaker"], (time.perf_counter() - start) / MICRO_OPS
        )
        start = time.perf_counter()
        for _ in range(MICRO_OPS):
            leg_of("controller", "attestation-server")
        costs["leg"] = min(
            costs["leg"], (time.perf_counter() - start) / MICRO_OPS
        )
    return costs


def _timed_rounds(alice, vm) -> float:
    """Best single-round wall time over ROUNDS attestations."""
    best = float("inf")
    for _ in range(ROUNDS):
        gc.collect()
        start = time.perf_counter()
        result = alice.attest(vm.vid, SecurityProperty.STARTUP_INTEGRITY)
        best = min(best, time.perf_counter() - start)
        assert result.report.healthy
    return best


def _append_table(lines: list[str]) -> None:
    with open(REPO_ROOT / "bench_tables.txt", "a") as handle:
        handle.write("\n" + "\n".join(lines) + "\n")


def test_resilience_overhead_on_attestation_path(benchmark):
    # outcome transparency: with no faults, disabling retries changes
    # nothing — same report bytes, same final clock
    default_cloud, default_alice, default_vm = _build_cloud()
    noretry_cloud, noretry_alice, noretry_vm = _build_cloud(NO_RETRY)
    default_result = default_alice.attest(
        default_vm.vid, SecurityProperty.STARTUP_INTEGRITY
    )
    noretry_result = noretry_alice.attest(
        noretry_vm.vid, SecurityProperty.STARTUP_INTEGRITY
    )
    assert default_result.report == noretry_result.report
    assert default_cloud.now == noretry_cloud.now

    crossings = _crossings_per_round(default_cloud, default_alice, default_vm)
    assert crossings > 0
    assert leg_of("controller", "attestation-server") == LEG_CONTROLLER_AS

    best_round = benchmark.pedantic(
        _timed_rounds, args=(default_alice, default_vm), rounds=1, iterations=1
    )

    costs = _per_op_costs()
    per_round_s = (
        costs["retry_run"] * RETRY_RUNS_PER_ROUND
        + costs["breaker"] * BREAKER_CYCLES_PER_ROUND
        + costs["leg"] * crossings
    )
    bound = SAFETY_FACTOR * per_round_s / best_round

    rows = [
        ["best attest round wall (ms)", f"{best_round * 1e3:.3f}"],
        ["retry wrap cost (µs) × count",
         f"{costs['retry_run'] * 1e6:.2f} × {RETRY_RUNS_PER_ROUND}"],
        ["breaker cycle cost (µs) × count",
         f"{costs['breaker'] * 1e6:.2f} × {BREAKER_CYCLES_PER_ROUND}"],
        ["leg classification cost (µs) × crossings",
         f"{costs['leg'] * 1e6:.2f} × {crossings}"],
        [f"bounded overhead ({SAFETY_FACTOR:.0f}x safety)", f"{bound:.3%}"],
        ["budget", f"{OVERHEAD_BUDGET:.0%}"],
    ]
    title = (
        f"Resilience overhead: fault-free attestation round"
        f" (best of {ROUNDS})"
    )
    print_table(title, ["estimate", "value"], rows)
    width = max(len(row[0]) for row in rows)
    _append_table(
        [f"=== {title} ==="]
        + [f"{row[0]:<{width}}  {row[1]}" for row in rows]
    )

    assert bound < OVERHEAD_BUDGET, (
        f"resilience overhead bound {bound:.3%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget"
    )
