"""Baseline comparison — the §2.2 argument as a measured matrix.

Runs the same four attack scenarios (the paper's case studies I-IV)
against three attestation schemes:

- **binary** — TCG-style boot-time hash comparison;
- **vTPM** — per-VM virtual TPM with an in-guest agent;
- **CloudMonatt** — property-based attestation with out-of-VM monitors.

Shape: binary attestation catches only the boot-time tampering; the
vTPM baseline additionally *appears* to cover runtime integrity but is
fooled by the rootkit; CloudMonatt detects all four.
"""

from _tables import print_table

from repro import CloudMonatt, SecurityProperty
from repro.baselines import BinaryAttestationVerifier, VTpmAttestor
from repro.baselines.vtpm_attestation import verify_vtpm_quote
from repro.common.errors import StateError
from repro.crypto.drbg import HmacDrbg
from repro.guest import Rootkit
from repro.monitors.integrity_unit import IntegrityMeasurementUnit, SoftwareInventory
from repro.tpm import TpmEmulator
from repro.tpm.pcr import PcrBank

NONCE = b"\x09" * 16
SCENARIOS = ["tampered platform", "in-VM rootkit", "covert channel",
             "availability attack"]


def binary_attestation_results() -> dict[str, bool]:
    """What the binary baseline detects (True = attack detected)."""
    results = {}
    # tampered platform: detectable (that is the scheme's whole scope)
    tpm = TpmEmulator(HmacDrbg(1), key_bits=512)
    unit = IntegrityMeasurementUnit(tpm)
    unit.measure_platform(
        SoftwareInventory.pristine_platform().tampered(
            "xen-hypervisor-4.2", b"backdoor"
        )
    )
    verifier = BinaryAttestationVerifier()
    verifier.add_reference(
        IntegrityMeasurementUnit.expected_platform_value(
            SoftwareInventory.pristine_platform()
        )
    )
    quote = verifier.challenge(tpm, PcrBank.PLATFORM_PCR, NONCE)
    verdict = verifier.appraise(quote, tpm.aik_public, PcrBank.PLATFORM_PCR, NONCE)
    results["tampered platform"] = not verdict.matches_reference
    # runtime scenarios: structurally out of scope
    for scenario in ("in-VM rootkit", "covert channel", "availability attack"):
        try:
            verifier.appraise_runtime_property("runtime_integrity")
            results[scenario] = True
        except StateError:
            results[scenario] = False
    return results


def vtpm_results() -> dict[str, bool]:
    """What the vTPM baseline detects."""
    results = {"tampered platform": False}  # no platform visibility
    # in-VM rootkit: the in-guest agent reports the filtered view
    cloud = CloudMonatt(num_servers=1, seed=61)
    alice = cloud.register_customer("alice")
    vm = alice.launch_vm("small", "ubuntu",
                         properties=[SecurityProperty.STARTUP_INTEGRITY])
    guest = cloud.server_of(vm.vid).hosted[vm.vid].guest
    attestor = VTpmAttestor(HmacDrbg(2))
    attestor.provision(vm.vid, guest)
    Rootkit().infect(guest)
    quote = attestor.attest(vm.vid, NONCE)
    view = verify_vtpm_quote(attestor.aik_for(vm.vid), quote, NONCE)
    results["in-VM rootkit"] = any(
        t["name"] == "cryptominer" for t in view["task_list"]
    )
    # environment scenarios: structurally out of scope
    for scenario in ("covert channel", "availability attack"):
        try:
            attestor.attest_environment(vm.vid)
            results[scenario] = True
        except StateError:
            results[scenario] = False
    return results


def cloudmonatt_results() -> dict[str, bool]:
    """What CloudMonatt detects, via the full stack."""
    results = {}
    # tampered platform
    cloud = CloudMonatt(num_servers=1, seed=62)
    cloud.servers.clear()
    cloud.controller.database._servers.clear()
    cloud.add_server(
        platform_inventory=SoftwareInventory.pristine_platform().tampered(
            "xen-hypervisor-4.2", b"backdoor"
        ),
        trust_platform=False,
    )
    alice = cloud.register_customer("alice")
    try:
        launch = alice.launch_vm(
            "small", "cirros", properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        detected = not launch.accepted
    except StateError:
        detected = True
    except Exception:
        # §5.1: the bad platform is refused and (with no alternative
        # server) the retry exhausts placement — detection succeeded
        detected = True
    results["tampered platform"] = detected

    # in-VM rootkit
    cloud = CloudMonatt(num_servers=1, seed=63)
    alice = cloud.register_customer("alice")
    vm = alice.launch_vm("small", "ubuntu",
                         properties=[SecurityProperty.RUNTIME_INTEGRITY,
                                     SecurityProperty.STARTUP_INTEGRITY])
    Rootkit().infect(cloud.server_of(vm.vid).hosted[vm.vid].guest)
    results["in-VM rootkit"] = not alice.attest(
        vm.vid, SecurityProperty.RUNTIME_INTEGRITY
    ).report.healthy

    # covert channel
    cloud = CloudMonatt(num_servers=1, num_pcpus=1, seed=64)
    alice = cloud.register_customer("alice")
    sender = alice.launch_vm(
        "small", "ubuntu",
        properties=[SecurityProperty.COVERT_CHANNEL_FREEDOM,
                    SecurityProperty.STARTUP_INTEGRITY],
        workload={"name": "covert_channel_sender"}, pins=[0],
    )
    alice.launch_vm("small", "ubuntu", workload={"name": "cpu_bound"}, pins=[0])
    results["covert channel"] = not alice.attest(
        sender.vid, SecurityProperty.COVERT_CHANNEL_FREEDOM
    ).report.healthy

    # availability attack
    cloud = CloudMonatt(num_servers=1, num_pcpus=1, seed=65)
    alice = cloud.register_customer("alice")
    victim = alice.launch_vm(
        "small", "ubuntu",
        properties=[SecurityProperty.CPU_AVAILABILITY,
                    SecurityProperty.STARTUP_INTEGRITY],
        workload={"name": "cpu_bound"}, pins=[0],
    )
    alice.launch_vm(
        "medium", "ubuntu", workload={"name": "cpu_availability_attack"},
        pins=[0, 0],
    )
    results["availability attack"] = not alice.attest(
        victim.vid, SecurityProperty.CPU_AVAILABILITY
    ).report.healthy
    return results


def run_matrix() -> dict[str, dict[str, bool]]:
    return {
        "binary attestation": binary_attestation_results(),
        "vTPM attestation": vtpm_results(),
        "CloudMonatt": cloudmonatt_results(),
    }


def test_baseline_comparison(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    rows = [
        [scheme] + [
            "detected" if results[scheme][scenario] else "missed"
            for scenario in SCENARIOS
        ]
        for scheme in results
    ]
    print_table(
        "Detection capability: baselines vs CloudMonatt (§2.2)",
        ["scheme"] + SCENARIOS,
        rows,
    )

    binary = results["binary attestation"]
    vtpm = results["vTPM attestation"]
    cloudmonatt = results["CloudMonatt"]
    # binary: boot-time only
    assert binary["tampered platform"]
    assert not any(binary[s] for s in SCENARIOS[1:])
    # vTPM: fooled by the rootkit, blind to the environment
    assert not any(vtpm[s] for s in SCENARIOS)
    # CloudMonatt: all four
    assert all(cloudmonatt[s] for s in SCENARIOS)
