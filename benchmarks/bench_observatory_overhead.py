"""Observatory overhead on the instrumented Fig. 9 launch path.

PR 1 bounded the telemetry *producer* cost against an uninstrumented
baseline; this benchmark bounds the *consumer* layer — the alert
engine, fleet scoreboard, and trace store the Observatory hangs off
the hub — against the telemetry-enabled baseline (observatory off).

Claims checked:
  * the observatory costs <2% on top of the instrumented launch path
    (one ``observe_event`` dispatch per producer event plus one
    finished-span listener call per span);
  * consuming the stream never perturbs the simulation: both arms
    produce identical launch outcomes, stage breakdowns, and final
    clocks.

Same method as bench_telemetry_overhead: the asserted bound is built
bottom-up from tight-loop per-operation costs × the enabled arm's own
operation counts × a 2x safety factor against the baseline arm's best
wall time, because an end-to-end A/B on a shared host is noise-bound.
"""

import gc
import statistics
import time

from _tables import print_table

from repro import CloudMonatt, SecurityProperty
from repro.telemetry import Observatory, Telemetry

IMAGES = ["cirros", "fedora", "ubuntu"]
FLAVORS = ["small", "medium", "large"]
TIMED_CELLS = list(zip(IMAGES, FLAVORS))
ROUNDS = 5
MICRO_OPS = 5000
SAFETY_FACTOR = 2.0
OVERHEAD_BUDGET = 0.02


def run_matrix(observatory_enabled: bool, cells=TIMED_CELLS):
    """Launch + runtime-attest each cell with telemetry always on.

    Returns the simulated outcomes and each cell's cloud (the enabled
    arm's observatories feed the op counts).
    """
    outcomes = []
    clouds = []
    for image, flavor in cells:
        cloud = CloudMonatt(
            num_servers=3,
            seed=hash((image, flavor)) % 1000,
            telemetry_enabled=True,
            observatory_enabled=observatory_enabled,
        )
        customer = cloud.register_customer("alice")
        launch = customer.launch_vm(
            flavor, image, properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        assert launch.accepted
        attested = customer.attest(
            launch.vid, SecurityProperty.RUNTIME_INTEGRITY
        )
        outcomes.append(
            (
                image,
                flavor,
                launch.accepted,
                tuple(sorted(launch.stage_times_ms.items())),
                attested.report.healthy,
                attested.attest_ms,
                cloud.now,
            )
        )
        clouds.append(cloud)
    return outcomes, clouds


def _timed_round(observatory_enabled: bool) -> tuple[float, float]:
    """One timed round: (wall seconds, cpu seconds)."""
    gc.collect()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    run_matrix(observatory_enabled)
    return time.perf_counter() - wall0, time.process_time() - cpu0


def _per_op_costs() -> dict[str, float]:
    """Best-of-3 per-operation observatory cost in seconds."""
    costs = {"event": float("inf"), "span": float("inf")}
    event_fields = {
        "vid": "vm-0001", "server": "server-0001",
        "property": "runtime_integrity", "healthy": True,
        "attest_ms": 1000.0, "explanation": "ok",
    }
    for _ in range(3):
        hub = Telemetry(clock=lambda: 0.0, enabled=True)
        observatory = Observatory(clock=lambda: 0.0)
        hub.attach_observatory(observatory)
        start = time.perf_counter()
        for _ in range(MICRO_OPS):
            hub.observe_event("attestation", **event_fields)
        costs["event"] = min(
            costs["event"], (time.perf_counter() - start) / MICRO_OPS
        )
        # one finished span per iteration exercises the trace-store
        # append plus the SLO rule's span hook (the tracer listener)
        with hub.span("protocol.q2.controller_as", vid="vm-0001"):
            pass
        span = hub.tracer.finished[-1]
        start = time.perf_counter()
        for _ in range(MICRO_OPS):
            observatory.ingest_span(span)
        costs["span"] = min(
            costs["span"], (time.perf_counter() - start) / MICRO_OPS
        )
    return costs


def _op_counts(clouds) -> dict[str, float]:
    """Observatory operations actually executed on the launch path."""
    counts = {"event": 0.0, "span": 0.0}
    for cloud in clouds:
        counts["event"] += len(cloud.observatory.events)
        counts["span"] += len(cloud.telemetry.tracer.finished)
    return counts


def test_observatory_overhead_on_instrumented_path(benchmark):
    # warmup both arms and pin down that consuming the stream cannot
    # change any simulated result
    plain_outcomes, _ = run_matrix(False)
    observed_outcomes, observed_clouds = benchmark.pedantic(
        run_matrix, args=(True,), rounds=1, iterations=1
    )
    assert plain_outcomes == observed_outcomes

    # paired A/B rounds, back to back — informational on a shared host
    wall_ratios, cpu_ratios = [], []
    best_off_wall = float("inf")
    for _ in range(ROUNDS):
        off_wall, off_cpu = _timed_round(False)
        on_wall, on_cpu = _timed_round(True)
        wall_ratios.append((on_wall - off_wall) / off_wall)
        cpu_ratios.append((on_cpu - off_cpu) / off_cpu)
        best_off_wall = min(best_off_wall, off_wall)

    costs = _per_op_costs()
    counts = _op_counts(observed_clouds)
    observatory_s = sum(costs[op] * counts[op] for op in costs)
    bound = SAFETY_FACTOR * observatory_s / best_off_wall

    print_table(
        f"Observatory overhead: instrumented launch diagonal"
        f" ({ROUNDS} paired rounds)",
        ["estimate", "value"],
        [
            ["baseline best wall (s)", f"{best_off_wall:.3f}"],
            ["event dispatch cost (µs) × count",
             f"{costs['event'] * 1e6:.1f} × {counts['event']:.0f}"],
            ["span listener cost (µs) × count",
             f"{costs['span'] * 1e6:.1f} × {counts['span']:.0f}"],
            ["bounded overhead (2x safety)", f"{bound:.3%}"],
            ["paired A/B wall median (noisy)",
             f"{statistics.median(wall_ratios):+.2%}"],
            ["paired A/B cpu median (noisy)",
             f"{statistics.median(cpu_ratios):+.2%}"],
        ],
    )

    # the enabled arm really consumed the stream
    last = observed_clouds[-1].observatory
    assert last.events and len(last.traces) > 0
    assert counts["event"] > 0 and counts["span"] > 0
    assert bound < OVERHEAD_BUDGET, (
        f"observatory overhead bound {bound:.3%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget"
    )
