"""Ablation — per-session attestation keys vs identity-key reuse.

The paper's design mints a fresh {AVKs, ASKs} pair per attestation and
has the privacy CA certify it (§3.4.2), paying key generation plus a
pCA round per request, to keep attestations unlinkable to servers.

This bench quantifies the trade: attestation latency with fresh keys
vs with a cached session, alongside the anonymity verdicts from the
symbolic verifier for the corresponding protocol variants.

Shape: reuse is measurably faster per attestation, but the verifier
finds the linkability attack — the latency is what anonymity costs.
"""

from _tables import print_table

from repro import CloudMonatt, SecurityProperty
from repro.verification import ProtocolVariant, ProtocolVerifier

ATTESTATIONS = 6


def measure_latency(reuse: bool) -> float:
    cloud = CloudMonatt(num_servers=1, seed=77)
    for server in cloud.servers.values():
        server.reuse_attestation_session = reuse
    customer = cloud.register_customer("alice")
    vm = customer.launch_vm(
        "small", "ubuntu",
        properties=[SecurityProperty.CPU_AVAILABILITY],
        workload={"name": "cpu_bound"},
    )
    times = [
        customer.attest(vm.vid, SecurityProperty.CPU_AVAILABILITY).attest_ms
        for _ in range(ATTESTATIONS)
    ]
    return sum(times) / len(times)


def run_ablation() -> dict:
    return {
        "fresh_ms": measure_latency(reuse=False),
        "reused_ms": measure_latency(reuse=True),
        "fresh_anonymous": ProtocolVerifier(ProtocolVariant.STANDARD)
        .check_server_anonymity().holds,
        "reused_anonymous": ProtocolVerifier(ProtocolVariant.IDENTITY_KEY_REUSE)
        .check_server_anonymity().holds,
    }


def test_ablation_session_keys(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print_table(
        "Ablation: per-session attestation keys",
        ["configuration", "mean attest latency (ms)", "server anonymity"],
        [
            ["fresh key per attestation (paper)",
             f"{result['fresh_ms']:.0f}",
             "holds" if result["fresh_anonymous"] else "broken"],
            ["identity-key/session reuse",
             f"{result['reused_ms']:.0f}",
             "holds" if result["reused_anonymous"] else "broken"],
        ],
    )

    assert result["reused_ms"] < result["fresh_ms"]  # reuse is cheaper...
    assert result["fresh_anonymous"]                 # ...but the paper's
    assert not result["reused_anonymous"]            # design buys anonymity
