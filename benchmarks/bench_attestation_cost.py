"""Attestation cost breakdown and scalability.

Two analyses supporting the paper's §7.1.1 observation ("the main
overhead of an attestation is from the message transmitting in the
network") and its §3.2.3 scalability argument (attestation servers can
be added per cluster; the controller only brokers):

1. **Breakdown** — attestation latency under the standard cost model,
   with crypto costs zeroed, and with network latency zeroed. Shape:
   removing the network saves more than removing the crypto.
2. **Scalability** — mean attestation latency as the fleet and the
   number of monitored VMs grow. Shape: per-attestation latency stays
   roughly flat (no bottleneck at the controller).
"""

from _tables import print_table

from repro import CloudMonatt, SecurityProperty


def _mean_attest_ms(cloud, customer, vid, rounds: int = 4) -> float:
    times = [
        customer.attest(vid, SecurityProperty.RUNTIME_INTEGRITY).attest_ms
        for _ in range(rounds)
    ]
    return sum(times) / len(times)


def measure_breakdown() -> dict[str, float]:
    results = {}
    for label, zero_network, zero_crypto in (
        ("full protocol", False, False),
        ("no crypto costs", False, True),
        ("no network latency", True, False),
    ):
        cloud = CloudMonatt(
            num_servers=1, seed=55,
            network_latency_ms=0.0 if zero_network else 55.0,
        )
        if zero_crypto:
            for operation in ("session_keygen", "tpm_quote_sign", "pca_certify",
                              "verify_signature", "report_sign"):
                cloud.cost.set_cost(operation, 0.0)
        customer = cloud.register_customer("alice")
        vm = customer.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.RUNTIME_INTEGRITY,
                        SecurityProperty.STARTUP_INTEGRITY],
        )
        results[label] = _mean_attest_ms(cloud, customer, vm.vid)
    return results


def measure_scalability() -> dict[int, float]:
    results = {}
    for fleet in (1, 4, 8):
        cloud = CloudMonatt(num_servers=fleet, seed=60 + fleet)
        customer = cloud.register_customer("alice")
        vms = [
            customer.launch_vm(
                "small", "cirros",
                properties=[SecurityProperty.RUNTIME_INTEGRITY,
                            SecurityProperty.STARTUP_INTEGRITY],
            )
            for _ in range(fleet)
        ]
        times = [
            customer.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY).attest_ms
            for vm in vms
        ]
        results[fleet] = sum(times) / len(times)
    return results


def run_both() -> dict:
    return {"breakdown": measure_breakdown(), "scalability": measure_scalability()}


def test_attestation_cost(benchmark):
    result = benchmark.pedantic(run_both, rounds=1, iterations=1)

    breakdown = result["breakdown"]
    print_table(
        "Attestation latency breakdown",
        ["configuration", "mean latency (ms)"],
        [[label, f"{value:.0f}"] for label, value in breakdown.items()],
    )
    scalability = result["scalability"]
    print_table(
        "Attestation latency vs fleet size (one VM per server)",
        ["servers", "mean latency (ms)"],
        [[fleet, f"{value:.0f}"] for fleet, value in scalability.items()],
    )

    full = breakdown["full protocol"]
    network_saving = full - breakdown["no network latency"]
    crypto_saving = full - breakdown["no crypto costs"]
    # §7.1.1: network transmission dominates the attestation overhead
    assert network_saving > crypto_saving
    assert network_saving > 0.4 * full
    # scalability: latency roughly flat as the fleet grows
    values = list(scalability.values())
    assert max(values) < 1.3 * min(values)
