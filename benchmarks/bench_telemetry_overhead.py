"""Telemetry overhead on the Fig. 9 VM-launch path.

Runs the Fig. 9 (image × flavor) launch matrix — plus one runtime
attestation per VM so every protocol leg (Q1/Q2/Q3, appraisal,
interpretation) appears in the trace — once with telemetry disabled and
once with the full tracer + metrics pipeline enabled.

Claims checked:
  * instrumentation costs <2% of the launch path when enabled (the hub
    short-circuits on ``enabled`` before touching any state, and the
    per-operation cost is microseconds against a signing-dominated
    protocol);
  * telemetry never perturbs the simulation: both arms produce
    identical launch outcomes, stage breakdowns and final clocks.

Overhead method: an end-to-end A/B on a shared host is noise-bound —
paired rounds of the ~1 s launch workload swing ±5% run to run, far
above the effect size — so the asserted bound is built bottom-up
instead. Tight-loop microbenchmarks give stable per-operation costs
(span open/close, counter inc, histogram observe); the enabled arm's
own trace and metric snapshots give the exact operation counts on the
launch path; cost × count × 2 (safety factor) against the disabled
arm's best wall time bounds the overhead. The paired A/B medians are
still printed for reference.

Also prints the per-leg simulated-latency breakdown harvested from the
enabled arm's trace, which lands in bench_tables.txt next to the
wall-clock numbers.
"""

import gc
import statistics
import time

from _tables import print_table, print_telemetry_table

from repro import CloudMonatt, SecurityProperty
from repro.telemetry import Telemetry

IMAGES = ["cirros", "fedora", "ubuntu"]
FLAVORS = ["small", "medium", "large"]
ALL_CELLS = [(image, flavor) for image in IMAGES for flavor in FLAVORS]
# the timed rounds use the matrix diagonal: same code path, ~1/3 the
# round time, so we can afford more paired rounds
TIMED_CELLS = list(zip(IMAGES, FLAVORS))
ROUNDS = 5
MICRO_OPS = 5000
SAFETY_FACTOR = 2.0
OVERHEAD_BUDGET = 0.02


def run_matrix(telemetry_enabled: bool, cells=ALL_CELLS):
    """Launch + runtime-attest each cell; fully deterministic outcomes.

    Returns the simulated outcomes and every cell's telemetry hub (the
    last one feeds the per-leg breakdown table, all of them feed the
    instrumentation op counts).
    """
    outcomes = []
    hubs = []
    for image, flavor in cells:
        cloud = CloudMonatt(
            num_servers=3,
            seed=hash((image, flavor)) % 1000,
            telemetry_enabled=telemetry_enabled,
        )
        customer = cloud.register_customer("alice")
        launch = customer.launch_vm(
            flavor, image, properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        assert launch.accepted
        attested = customer.attest(
            launch.vid, SecurityProperty.RUNTIME_INTEGRITY
        )
        outcomes.append(
            (
                image,
                flavor,
                launch.accepted,
                tuple(sorted(launch.stage_times_ms.items())),
                attested.report.healthy,
                attested.attest_ms,
                cloud.now,
            )
        )
        hubs.append(cloud.telemetry)
    return outcomes, hubs


def _timed_round(telemetry_enabled: bool) -> tuple[float, float]:
    """One timed round over the diagonal: (wall seconds, cpu seconds)."""
    gc.collect()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    run_matrix(telemetry_enabled, cells=TIMED_CELLS)
    return time.perf_counter() - wall0, time.process_time() - cpu0


def _per_op_costs() -> dict[str, float]:
    """Best-of-3 per-operation instrumentation cost in seconds."""
    costs = {"span": float("inf"), "inc": float("inf"), "observe": float("inf")}
    for _ in range(3):
        hub = Telemetry(clock=lambda: 0.0, enabled=True)
        start = time.perf_counter()
        for _ in range(MICRO_OPS):
            with hub.span("bench.span", vid="vm-0", property="p"):
                pass
        costs["span"] = min(
            costs["span"], (time.perf_counter() - start) / MICRO_OPS
        )
        counter = hub.counter("bench.counter")
        start = time.perf_counter()
        for _ in range(MICRO_OPS):
            counter.inc(kind="q1")
        costs["inc"] = min(
            costs["inc"], (time.perf_counter() - start) / MICRO_OPS
        )
        histogram = hub.histogram("bench.hist")
        start = time.perf_counter()
        for i in range(MICRO_OPS):
            histogram.observe(float(i % 97), stage="s")
        costs["observe"] = min(
            costs["observe"], (time.perf_counter() - start) / MICRO_OPS
        )
    return costs


def _op_counts(hubs) -> dict[str, float]:
    """Instrumentation operations actually executed on the launch path."""
    counts = {"span": 0.0, "inc": 0.0, "observe": 0.0}
    for hub in hubs:
        counts["span"] += len(hub.tracer.finished)
        for metric in hub.snapshot().values():
            if metric["type"] == "counter":
                # every inc on the path adds exactly 1
                counts["inc"] += sum(metric["series"].values())
            elif metric["type"] == "histogram":
                counts["observe"] += sum(
                    series["count"] for series in metric["series"].values()
                )
    return counts


def test_telemetry_overhead_on_launch_path(benchmark):
    # warmup both arms (imports, allocator, branch caches) and pin down
    # that instrumentation cannot change any simulated result
    plain_outcomes, _ = run_matrix(False)
    traced_outcomes, traced_hubs = benchmark.pedantic(
        run_matrix, args=(True,), rounds=1, iterations=1
    )
    assert plain_outcomes == traced_outcomes

    # paired A/B rounds, back to back — informational on a shared host
    wall_ratios, cpu_ratios = [], []
    best_off_wall = float("inf")
    for _ in range(ROUNDS):
        off_wall, off_cpu = _timed_round(False)
        on_wall, on_cpu = _timed_round(True)
        wall_ratios.append((on_wall - off_wall) / off_wall)
        cpu_ratios.append((on_cpu - off_cpu) / off_cpu)
        best_off_wall = min(best_off_wall, off_wall)

    # the asserted bound: per-op microbench cost × op count × safety
    costs = _per_op_costs()
    _, timed_hubs = run_matrix(True, cells=TIMED_CELLS)
    counts = _op_counts(timed_hubs)
    instrumentation_s = sum(costs[op] * counts[op] for op in costs)
    bound = SAFETY_FACTOR * instrumentation_s / best_off_wall

    print_table(
        f"Telemetry overhead: Fig. 9 launch diagonal + runtime attest"
        f" ({ROUNDS} paired rounds)",
        ["estimate", "value"],
        [
            ["baseline best wall (s)", f"{best_off_wall:.3f}"],
            ["span cost (µs) × count",
             f"{costs['span'] * 1e6:.1f} × {counts['span']:.0f}"],
            ["counter inc cost (µs) × count",
             f"{costs['inc'] * 1e6:.1f} × {counts['inc']:.0f}"],
            ["histogram observe cost (µs) × count",
             f"{costs['observe'] * 1e6:.1f} × {counts['observe']:.0f}"],
            ["bounded overhead (2x safety)", f"{bound:.3%}"],
            ["paired A/B wall median (noisy)",
             f"{statistics.median(wall_ratios):+.2%}"],
            ["paired A/B cpu median (noisy)",
             f"{statistics.median(cpu_ratios):+.2%}"],
        ],
    )
    print_telemetry_table(
        "Per-leg latency breakdown, ubuntu/large cell (simulated ms)",
        traced_hubs[-1],
    )

    assert traced_hubs and traced_hubs[-1].tracer.finished
    assert counts["span"] > 0 and counts["inc"] > 0 and counts["observe"] > 0
    assert bound < OVERHEAD_BUDGET, (
        f"telemetry overhead bound {bound:.3%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget"
    )
