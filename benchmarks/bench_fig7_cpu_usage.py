"""Fig. 7 — Measurements of CPU availability vulnerability.

The VMM Profile Tool measures relative CPU usage (virtual running time
over wall time) for both the attacker VM and an always-runnable victim
VM, under each co-runner workload. This is exactly the measurement the
CPU_AVAILABILITY property interprets.

Paper shape: under I/O-bound co-runners the victim keeps ~100%;
under CPU-bound co-runners both get ~50%; under the availability
attack the attacker approaches 100% while the victim collapses below
its SLA floor, and the interpreter flags it.
"""

from _tables import print_table

from repro.attacks import AvailabilityAttackWorkload
from repro.common.identifiers import VmId
from repro.common.rng import DeterministicRng
from repro.monitors import VmmProfileTool
from repro.monitors.monitor_module import MEAS_CPU_USAGE
from repro.properties import AvailabilityInterpreter
from repro.workloads import make_workload
from repro.xen import CpuBoundWorkload, Hypervisor

ATTACKERS = ["idle", "database", "file", "web", "app", "stream", "mail",
             "cpu_availability_attack"]
WINDOW_MS = 5_000.0


def run_cell(attacker: str, seed: int) -> dict:
    hv = Hypervisor(num_pcpus=1)
    rng = DeterministicRng(seed)
    hv.create_domain(VmId("victim"), CpuBoundWorkload())
    workload = make_workload(attacker, rng)
    num_vcpus = 2 if isinstance(workload, AvailabilityAttackWorkload) else 1
    hv.create_domain(
        VmId("attacker"), workload, num_vcpus=num_vcpus, pcpus=[0] * num_vcpus
    )
    tool = VmmProfileTool(hv)
    hv.run_for(500.0)  # settle
    tool.start_window(VmId("victim"))
    tool.start_window(VmId("attacker"))
    hv.run_for(WINDOW_MS)
    victim = tool.stop_window(VmId("victim"))
    attacker_window = tool.stop_window(VmId("attacker"))
    interpreter = AvailabilityInterpreter(default_entitled_share=0.5)
    report = interpreter.interpret(
        VmId("victim"),
        {MEAS_CPU_USAGE: {"cpu_ms": victim.cpu_ms, "wall_ms": victim.wall_ms,
                          "wait_ms": victim.wait_ms}},
    )
    return {
        "victim": victim.relative_usage,
        "victim_steal": victim.steal_ratio,
        "attacker": attacker_window.relative_usage,
        "healthy": report.healthy,
    }


def run_series() -> dict[str, dict]:
    return {
        attacker: run_cell(attacker, seed=200 + i)
        for i, attacker in enumerate(ATTACKERS)
    }


def test_fig7_relative_cpu_usage(benchmark):
    results = benchmark.pedantic(run_series, rounds=1, iterations=1)

    rows = [
        [attacker, f"{cell['attacker']:.1%}", f"{cell['victim']:.1%}",
         f"{cell['victim_steal']:.1%}",
         "healthy" if cell["healthy"] else "COMPROMISED"]
        for attacker, cell in results.items()
    ]
    print_table(
        "Fig. 7: relative CPU usage (attacker vs victim)",
        ["attacker workload", "attacker usage", "victim usage",
         "victim steal", "availability"],
        rows,
    )

    # idle / I/O-bound: victim keeps nearly the whole CPU, healthy
    for light in ("idle", "file", "stream", "mail"):
        assert results[light]["victim"] > 0.75, light
        assert results[light]["healthy"], light
    # CPU-bound co-runners: fair halves, still healthy per SLA
    for heavy in ("database", "web", "app"):
        assert 0.40 <= results[heavy]["victim"] <= 0.62, heavy
        assert results[heavy]["healthy"], heavy
    # the attack: attacker monopolizes, victim below the SLA floor
    attack = results["cpu_availability_attack"]
    assert attack["attacker"] > 0.80
    assert attack["victim"] < 0.15
    assert not attack["healthy"]
