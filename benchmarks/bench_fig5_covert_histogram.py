"""Fig. 5 — Measurements of covert-channel vulnerabilities.

Regenerates both panels: the probability distribution of CPU usage
intervals for (top) a covert-channel sender and (bottom) a benign
CPU-bound VM, as accumulated in the 30 Trust Evidence Registers.

Paper shape: the covert run shows two peaks (one per symbol); the
benign run shows a single peak at the default 30 ms execution interval.
The Attestation Server's interpreter must classify both correctly.
"""

from _tables import print_table

from repro.attacks import CovertChannelSender
from repro.common.identifiers import VmId
from repro.crypto.drbg import HmacDrbg
from repro.monitors import RunIntervalHistogram
from repro.monitors.monitor_module import MEAS_CPU_INTERVAL_HISTOGRAM
from repro.properties import CovertChannelInterpreter
from repro.tpm import TrustModule
from repro.xen import CpuBoundWorkload, Hypervisor

DETECTION_WINDOW_MS = 10_000.0


def measure_distribution(covert: bool) -> dict:
    """One detection window over a sender (or benign) VM sharing a CPU."""
    hv = Hypervisor()
    trust = TrustModule(HmacDrbg(5), key_bits=512)
    watched = VmId("watched")
    monitor = RunIntervalHistogram(watched_vid=watched, trust_module=trust)
    hv.add_monitor(monitor)
    workload = (
        CovertChannelSender([1, 0, 1, 1, 0, 0, 1, 0])
        if covert
        else CpuBoundWorkload()
    )
    hv.create_domain(watched, workload)
    hv.create_domain(VmId("corunner"), CpuBoundWorkload())
    hv.run_for(DETECTION_WINDOW_MS)
    counts = [int(v) for v in trust.read_registers(monitor.num_bins)]
    report = CovertChannelInterpreter().interpret(
        watched, {MEAS_CPU_INTERVAL_HISTOGRAM: counts}
    )
    return {"counts": counts, "report": report}


def run_both() -> dict:
    return {"covert": measure_distribution(True),
            "benign": measure_distribution(False)}


def test_fig5_interval_distributions(benchmark):
    result = benchmark.pedantic(run_both, rounds=1, iterations=1)

    for label in ("covert", "benign"):
        counts = result[label]["counts"]
        total = sum(counts) or 1
        rows = [
            [f"({i},{i + 1}]", counts[i], f"{counts[i] / total:.3f}",
             "#" * int(40 * counts[i] / max(counts))]
            for i in range(len(counts))
            if counts[i] > 0
        ]
        print_table(
            f"Fig. 5 ({label} pattern): CPU usage interval distribution",
            ["interval (ms)", "count", "probability", ""],
            rows,
        )
        report = result[label]["report"]
        print(f"interpretation: {report.explanation}")

    covert_report = result["covert"]["report"]
    benign_report = result["benign"]["report"]
    # shape: bimodal flagged, unimodal-at-30ms clean
    assert not covert_report.healthy
    assert len(covert_report.details["peaks"]) >= 2
    assert benign_report.healthy
    benign_counts = result["benign"]["counts"]
    assert benign_counts[-1] == max(benign_counts), "benign peak at 30 ms bin"
