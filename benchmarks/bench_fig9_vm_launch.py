"""Fig. 9 — Performance for VM launching.

Launches each (image × flavor) combination of the paper's matrix
through the full CloudMonatt stack and reports the per-stage breakdown:
Scheduling, Networking, Block_device_mapping, Spawning, and the new
fifth Attestation stage.

Paper shape: the attestation stage adds roughly 20% overhead, dominated
by network message transmission; totals land in the seconds range and
grow with image size and flavor.
"""

from _tables import print_table

from repro import CloudMonatt, SecurityProperty

IMAGES = ["cirros", "fedora", "ubuntu"]
FLAVORS = ["small", "medium", "large"]
STAGES = ["scheduling", "networking", "block_device_mapping", "spawning",
          "attestation"]


def run_matrix() -> dict[tuple[str, str], dict[str, float]]:
    results: dict[tuple[str, str], dict[str, float]] = {}
    for image in IMAGES:
        for flavor in FLAVORS:
            cloud = CloudMonatt(num_servers=3, seed=hash((image, flavor)) % 1000)
            customer = cloud.register_customer("alice")
            launch = customer.launch_vm(
                flavor, image, properties=[SecurityProperty.STARTUP_INTEGRITY]
            )
            assert launch.accepted
            results[(image, flavor)] = launch.stage_times_ms
    return results


def test_fig9_vm_launch_breakdown(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    rows = []
    for (image, flavor), stages in results.items():
        total = sum(stages.values())
        rows.append(
            [image, flavor]
            + [f"{stages[s] / 1000.0:.2f}" for s in STAGES]
            + [f"{total / 1000.0:.2f}", f"{stages['attestation'] / total:.0%}"]
        )
    print_table(
        "Fig. 9: VM launch time by stage (seconds)",
        ["image", "flavor"] + STAGES + ["total", "attest %"],
        rows,
    )

    for (image, flavor), stages in results.items():
        total = sum(stages.values())
        # totals in the seconds band, as in the paper
        assert 2_000.0 <= total <= 7_000.0, (image, flavor, total)
        # attestation overhead ≈ 20% (10-35% band)
        fraction = stages["attestation"] / total
        assert 0.10 <= fraction <= 0.35, (image, flavor, fraction)
    # spawning grows with image size: ubuntu > cirros at equal flavor
    for flavor in FLAVORS:
        assert (
            results[("ubuntu", flavor)]["spawning"]
            > results[("cirros", flavor)]["spawning"]
        )
    # spawning grows with flavor: large > small at equal image
    for image in IMAGES:
        assert (
            results[(image, "large")]["spawning"]
            > results[(image, "small")]["spawning"]
        )
