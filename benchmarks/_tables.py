"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark prints the rows/series of the paper artifact it
regenerates, and asserts the paper's qualitative *shape* (who wins, by
roughly what factor, where crossovers fall). Absolute numbers differ
from the paper's physical testbed by design — see DESIGN.md §2.
"""

from __future__ import annotations


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render one paper-style results table to stdout."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(header_line)
    print("-" * len(header_line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


def print_telemetry_table(title: str, telemetry) -> None:
    """Render a traced run's per-leg latency breakdown (simulated ms).

    Consumes any :class:`repro.telemetry.Telemetry` hub and prints one
    row per span name from the tracer's aggregate summary — the
    protocol-leg view (Q1/Q2/Q3, appraisal, interpretation) that
    complements the wall-clock numbers of the overhead bench.
    """
    from repro.telemetry import SUMMARY_HEADERS, summary_rows

    rows = summary_rows(telemetry)
    if not rows:
        print(f"\n=== {title} ===\n(no spans recorded)")
        return
    print_table(title, SUMMARY_HEADERS, rows)
