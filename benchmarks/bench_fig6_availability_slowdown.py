"""Fig. 6 — Performance for CPU availability attacks.

The victim VM runs three CPU-bound SPEC-like programs (bzip2, hmmer,
astar); a co-resident VM on the same CPU runs each cloud service, or
the paper's CPU availability attack. The regenerated series is the
victim's relative execution time (completion wall time / solo time).

Paper shape: I/O-bound co-runners (File/Stream/Mail) ≈ 1x; CPU-bound
co-runners (Database/Web/App) ≈ 2x (fair share); the availability
attack > 10x.
"""

from _tables import print_table

from repro.attacks import AvailabilityAttackWorkload
from repro.common.identifiers import VmId
from repro.common.rng import DeterministicRng
from repro.workloads import make_workload
from repro.xen import FiniteCpuBoundWorkload, Hypervisor

VICTIM_PROGRAMS = {"bzip2": 600.0, "hmmer": 750.0, "astar": 500.0}
ATTACKERS = ["idle", "database", "file", "web", "app", "stream", "mail",
             "cpu_availability_attack"]


def run_cell(program_ms: float, attacker: str, seed: int) -> float:
    """One (victim program, co-runner) cell; returns relative exec time."""
    hv = Hypervisor(num_pcpus=1)
    rng = DeterministicRng(seed)
    hv.create_domain(VmId("victim"), FiniteCpuBoundWorkload(program_ms))
    workload = make_workload(attacker, rng)
    num_vcpus = 2 if isinstance(workload, AvailabilityAttackWorkload) else 1
    hv.create_domain(
        VmId("attacker"), workload, num_vcpus=num_vcpus, pcpus=[0] * num_vcpus
    )
    finish = hv.run_until_domain_finishes(VmId("victim"), max_ms=60_000.0)
    return finish / program_ms


def run_matrix() -> dict[str, dict[str, float]]:
    results: dict[str, dict[str, float]] = {}
    for program, demand in VICTIM_PROGRAMS.items():
        results[program] = {}
        for index, attacker in enumerate(ATTACKERS):
            results[program][attacker] = run_cell(demand, attacker, seed=100 + index)
    return results


def test_fig6_availability_slowdown(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    rows = [
        [program] + [f"{results[program][a]:.2f}x" for a in ATTACKERS]
        for program in VICTIM_PROGRAMS
    ]
    print_table(
        "Fig. 6: victim relative execution time vs co-resident workload",
        ["victim \\ attacker"] + ATTACKERS,
        rows,
    )

    for program in VICTIM_PROGRAMS:
        cells = results[program]
        # idle and I/O-bound co-runners: no meaningful slowdown
        assert cells["idle"] < 1.15
        for io_attacker in ("file", "stream", "mail"):
            assert cells[io_attacker] < 1.45, (program, io_attacker)
        # CPU-bound co-runners: fair-share doubling
        for cpu_attacker in ("database", "web", "app"):
            assert 1.5 <= cells[cpu_attacker] <= 2.6, (program, cpu_attacker)
        # the availability attack: order-of-magnitude starvation
        assert cells["cpu_availability_attack"] > 10.0, program
